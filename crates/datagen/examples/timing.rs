//! Dev probe: wall-clock of single `learn` calls at several label
//! fractions (sanity check for Figure 12's magnitudes).
//!
//! `cargo run -p pathlearn-datagen --release --example timing`
use std::time::Instant;
fn main() {
    let dataset_graph = pathlearn_datagen::alibaba_like(42);
    let wl = pathlearn_datagen::bio_workload(&dataset_graph);
    for q in [&wl.queries[3], &wl.queries[5]] {
        let sel = q.query.eval(&dataset_graph);
        for frac in [0.02, 0.10, 0.30] {
            let sample = pathlearn_datagen::sampling::random_sample(&dataset_graph, &sel, frac, 7);
            let t = Instant::now();
            let out = pathlearn_core::Learner::default().learn(&dataset_graph, &sample);
            println!(
                "{} frac={frac}: {:?} k={} pta={} gen={} pos={} learned={}",
                q.name,
                t.elapsed(),
                out.stats.k_used,
                out.stats.pta_states,
                out.stats.generalized_states,
                sample.pos().len(),
                out.query.is_some()
            );
        }
    }
}
