//! Dev probe: does a fully labeled sample identify syn3 exactly on a
//! small synthetic graph? (Checks the interactive halt condition is
//! reachable at all.)
//!
//! `cargo run -p pathlearn-datagen --release --example probe_interactive`
use pathlearn_datagen::scale_free::{scale_free_graph, ScaleFreeConfig};
use pathlearn_datagen::workloads::syn_workload;
fn main() {
    let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(600, 42));
    let workload = syn_workload(&graph);
    let goal = &workload.queries[2];
    println!(
        "goal {} sel {:.2}% size {}",
        goal.name,
        goal.achieved_selectivity * 100.0,
        goal.query.size()
    );
    let goal_sel = goal.query.eval(&graph);
    let mut sample = pathlearn_core::Sample::new();
    // label everything
    for node in graph.nodes() {
        sample.add(node, goal_sel.contains(node as usize));
    }
    let out = pathlearn_core::Learner::default().learn(&graph, &sample);
    match out.query {
        Some(q) => {
            let sel = q.eval(&graph);
            println!(
                "full-label learn: k={} equal={} |learned|={} |goal|={}",
                out.stats.k_used,
                sel == goal_sel,
                sel.len(),
                goal_sel.len()
            );
        }
        None => println!(
            "full-label learn: ABSTAIN k={} no_scp={}",
            out.stats.k_used,
            out.stats.nodes_without_scp.len()
        ),
    }
}
