//! Dev probe: prints the calibrated Table 1 selectivities on the
//! simulated AliBaba graph (quick check during workload tuning).
//!
//! `cargo run -p pathlearn-datagen --release --example selcheck`
fn main() {
    let graph = pathlearn_datagen::alibaba_like(42);
    let wl = pathlearn_datagen::bio_workload(&graph);
    for q in &wl.queries {
        println!(
            "{}: target {:.4}% achieved {:.4}% ({} nodes)",
            q.name,
            q.target_selectivity * 100.0,
            q.achieved_selectivity * 100.0,
            (q.achieved_selectivity * graph.num_nodes() as f64).round()
        );
    }
}
