//! Zipfian sampling.
//!
//! The synthetic graphs of §5.1 use *"a Zipfian edge label distribution"*
//! (following \[27\]). `rand_distr` is outside this session's dependency
//! budget, so the sampler is hand-rolled: cumulative weights
//! `w_i ∝ 1/(i+1)^s` with inverse-CDF sampling by binary search.

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf distribution over ranks `0..n` (rank 0 most likely).
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution with `n` ranks and exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        Self::from_weights((0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)))
    }

    /// Creates a categorical distribution from explicit positive weights
    /// (rank `i` gets `weights[i]`). Used when a dataset's label frequency
    /// profile is not a pure power law (e.g. the AliBaba simulation's
    /// long rare tail).
    ///
    /// # Panics
    /// Panics on an empty or non-positive weight sequence.
    pub fn from_weights(weights: impl IntoIterator<Item = f64>) -> Self {
        let mut cumulative = Vec::new();
        let mut total = 0.0;
        for w in weights {
            assert!(w > 0.0, "weights must be positive");
            total += w;
            cumulative.push(total);
        }
        assert!(!cumulative.is_empty(), "need at least one rank");
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is empty (never: `new` panics on 0).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }

    /// Probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        (self.cumulative[rank] - lo) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranks_are_in_range_and_skewed() {
        let zipf = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 strictly dominates rank 9; monotone-ish decay.
        assert!(counts[0] > counts[9] * 5);
        assert!(counts[0] > counts[4]);
    }

    #[test]
    fn pmf_sums_to_one() {
        let zipf = Zipf::new(7, 1.3);
        let total: f64 = (0..7).map(|r| zipf.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(zipf.pmf(0) > zipf.pmf(6));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((zipf.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let zipf = Zipf::new(20, 1.0);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
