//! Random example sampling for the static experiments (§5.2).
//!
//! *"Given a graph and a goal query, we take as positive examples some
//! random nodes of the graph that are selected by the query and as
//! negative examples some random nodes that are not selected by it."* —
//! realized by drawing a seeded random subset of nodes of a requested
//! size and labeling each according to the goal's selection. When the
//! goal selects at least one node, the draw is adjusted to contain at
//! least one positive (the paper retained only queries with ≥1 positive
//! example to learn from).

use pathlearn_automata::BitSet;
use pathlearn_core::Sample;
use pathlearn_graph::{GraphDb, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Draws a random sample of `⌈fraction·|V|⌉` labeled nodes.
///
/// `goal_selection` must be the goal query's selected node set
/// (`goal.eval(graph)`); labels follow it. Deterministic given `seed`.
pub fn random_sample(graph: &GraphDb, goal_selection: &BitSet, fraction: f64, seed: u64) -> Sample {
    let total = graph.num_nodes();
    let want = ((fraction * total as f64).ceil() as usize).min(total);
    let mut nodes: Vec<NodeId> = graph.nodes().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    nodes.shuffle(&mut rng);

    let mut drawn: Vec<NodeId> = nodes[..want].to_vec();
    // Ensure at least one positive when the goal selects anything.
    let has_positive = drawn.iter().any(|&n| goal_selection.contains(n as usize));
    if !has_positive && !goal_selection.is_empty() && want > 0 {
        if let Some(&replacement) = nodes[want..]
            .iter()
            .find(|&&n| goal_selection.contains(n as usize))
        {
            drawn[0] = replacement;
        }
    }

    let mut sample = Sample::new();
    for node in drawn {
        sample.add(node, goal_selection.contains(node as usize));
    }
    sample
}

/// A fixed random labeling order for incremental experiments: label the
/// first `m` nodes of a seeded permutation. Used to measure "labels
/// needed for F1 = 1 without interactions" (Table 2, third column).
#[derive(Clone, Debug)]
pub struct LabelingOrder {
    order: Vec<NodeId>,
}

impl LabelingOrder {
    /// Creates a seeded random permutation of the graph's nodes, adjusted
    /// so a positive node (w.r.t. `goal_selection`) appears first when one
    /// exists.
    pub fn new(graph: &GraphDb, goal_selection: &BitSet, seed: u64) -> Self {
        let mut order: Vec<NodeId> = graph.nodes().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        if let Some(at) = order
            .iter()
            .position(|&n| goal_selection.contains(n as usize))
        {
            order.swap(0, at);
        }
        LabelingOrder { order }
    }

    /// The sample labeling the first `count` nodes of the permutation.
    pub fn prefix_sample(&self, goal_selection: &BitSet, count: usize) -> Sample {
        let mut sample = Sample::new();
        for &node in self.order.iter().take(count) {
            sample.add(node, goal_selection.contains(node as usize));
        }
        sample
    }

    /// Total number of nodes in the order.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_core::PathQuery;
    use pathlearn_graph::graph::figure3_g0;

    #[test]
    fn sample_size_and_labels_follow_goal() {
        let graph = figure3_g0();
        let goal = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        let selection = goal.eval(&graph);
        let sample = random_sample(&graph, &selection, 0.5, 1);
        assert_eq!(sample.len(), 4); // ⌈0.5·7⌉
        for &n in sample.pos() {
            assert!(selection.contains(n as usize));
        }
        for &n in sample.neg() {
            assert!(!selection.contains(n as usize));
        }
    }

    #[test]
    fn at_least_one_positive_when_goal_nonempty() {
        let graph = figure3_g0();
        let goal = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        let selection = goal.eval(&graph);
        for seed in 0..30 {
            let sample = random_sample(&graph, &selection, 0.2, seed);
            assert!(!sample.pos().is_empty(), "seed {seed}: no positive drawn");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let graph = figure3_g0();
        let goal = PathQuery::parse("a", graph.alphabet()).unwrap();
        let selection = goal.eval(&graph);
        assert_eq!(
            random_sample(&graph, &selection, 0.4, 5),
            random_sample(&graph, &selection, 0.4, 5)
        );
    }

    #[test]
    fn full_fraction_labels_everything() {
        let graph = figure3_g0();
        let goal = PathQuery::parse("a", graph.alphabet()).unwrap();
        let selection = goal.eval(&graph);
        let sample = random_sample(&graph, &selection, 1.0, 3);
        assert_eq!(sample.len(), graph.num_nodes());
    }

    #[test]
    fn labeling_order_prefixes_grow_consistently() {
        let graph = figure3_g0();
        let goal = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        let selection = goal.eval(&graph);
        let order = LabelingOrder::new(&graph, &selection, 11);
        assert_eq!(order.len(), graph.num_nodes());
        let s2 = order.prefix_sample(&selection, 2);
        let s4 = order.prefix_sample(&selection, 4);
        // Prefix property: s2's examples all appear in s4.
        for &n in s2.pos() {
            assert_eq!(s4.label(n), Some(true));
        }
        for &n in s2.neg() {
            assert_eq!(s4.label(n), Some(false));
        }
        // First node is positive (goal selects something).
        assert_eq!(s2.pos().len() + s2.neg().len(), 2);
        let first = order.prefix_sample(&selection, 1);
        assert_eq!(first.pos().len(), 1);
    }
}
