//! Query workloads: Table 1's biological queries and the synthetic
//! `syn1..syn3` queries, with selectivity calibration.
//!
//! Table 1 specifies each biological query's **structure** (e.g.
//! `C·C*·a·A·A*`) and **selectivity** (0.03% … 22%), where `a, b` are
//! single labels and `A, C, E, I` are disjunction classes of up to 10,
//! possibly overlapping, labels. On the simulated AliBaba graph the
//! classes are not given, so we **calibrate** them: greedily grow each
//! class, always adding the label that brings the query's measured
//! selectivity closest to the paper's target. The same machinery
//! calibrates `syn1..syn3 = A·B*·C` to 1% / 15% / 40% on the scale-free
//! graphs. Achieved selectivities are reported next to the targets so the
//! experiment harness can print both (see `EXPERIMENTS.md`).

use pathlearn_automata::{Regex, Symbol};
use pathlearn_core::PathQuery;
use pathlearn_graph::GraphDb;

/// A workload query with its calibration record.
#[derive(Clone, Debug)]
pub struct CalibratedQuery {
    /// Query name (`bio1`…`bio6`, `syn1`…`syn3`).
    pub name: String,
    /// Structural template, as in Table 1 (e.g. `b·A·A*`).
    pub template: String,
    /// The calibrated regex.
    pub regex: Regex,
    /// The compiled query.
    pub query: PathQuery,
    /// The paper's target selectivity.
    pub target_selectivity: f64,
    /// The selectivity achieved on the calibration graph.
    pub achieved_selectivity: f64,
}

/// The Table 1 biological workload (six queries over shared classes).
#[derive(Clone, Debug)]
pub struct BioWorkload {
    /// bio1..bio6 in order.
    pub queries: Vec<CalibratedQuery>,
}

/// The synthetic workload for one graph: syn1..syn3.
#[derive(Clone, Debug)]
pub struct SynWorkload {
    /// syn1..syn3 in order.
    pub queries: Vec<CalibratedQuery>,
}

/// Maximum symbols per disjunction class (Table 1: "up to 10 symbols").
const MAX_CLASS: usize = 10;

/// Labels of `graph` ordered by decreasing edge frequency.
fn labels_by_frequency(graph: &GraphDb) -> Vec<Symbol> {
    let mut counts = vec![0usize; graph.alphabet().len()];
    for (_, sym, _) in graph.edges() {
        counts[sym.index()] += 1;
    }
    let mut symbols: Vec<Symbol> = graph.alphabet().symbols().collect();
    symbols.sort_by_key(|s| std::cmp::Reverse(counts[s.index()]));
    symbols
}

fn measure(graph: &GraphDb, regex: &Regex) -> f64 {
    PathQuery::from_regex(regex, graph.alphabet().len()).selectivity(graph)
}

/// Greedily grows a class: repeatedly adds the candidate label that brings
/// `build(class)`'s selectivity closest to `target`, stopping when no
/// addition improves the distance or the class is full.
fn calibrate_class(
    graph: &GraphDb,
    build: &dyn Fn(&[Symbol]) -> Regex,
    target: f64,
    candidates: &[Symbol],
) -> Vec<Symbol> {
    let mut class: Vec<Symbol> = Vec::new();
    let mut best_distance = f64::INFINITY; // empty class selects nothing
    while class.len() < MAX_CLASS {
        let mut best: Option<(f64, Symbol)> = None;
        for &candidate in candidates {
            if class.contains(&candidate) {
                continue;
            }
            class.push(candidate);
            let sel = measure(graph, &build(&class));
            class.pop();
            let distance = (sel - target).abs();
            if best.is_none_or(|(d, _)| distance < d) {
                best = Some((distance, candidate));
            }
        }
        match best {
            Some((distance, symbol)) if distance < best_distance => {
                class.push(symbol);
                best_distance = distance;
            }
            _ => break,
        }
    }
    class
}

/// Picks the single label making `build(label)` closest to `target`,
/// requiring at least one selected node (the paper kept only queries that
/// select at least one node).
fn calibrate_symbol(
    graph: &GraphDb,
    build: &dyn Fn(Symbol) -> Regex,
    target: f64,
    candidates: &[Symbol],
) -> Symbol {
    let min_fraction = 1.0 / graph.num_nodes().max(1) as f64;
    let mut best: Option<(f64, Symbol)> = None;
    for &candidate in candidates {
        let sel = measure(graph, &build(candidate));
        if sel + 1e-15 < min_fraction {
            continue; // selects nothing
        }
        let distance = (sel - target).abs();
        if best.is_none_or(|(d, _)| distance < d) {
            best = Some((distance, candidate));
        }
    }
    best.map(|(_, s)| s).unwrap_or_else(|| candidates[0]) // degenerate graphs: any label
}

fn class_regex(class: &[Symbol]) -> Regex {
    Regex::symbol_class(class)
}

fn record(
    graph: &GraphDb,
    name: &str,
    template: &str,
    regex: Regex,
    target: f64,
) -> CalibratedQuery {
    let query = PathQuery::from_regex(&regex, graph.alphabet().len());
    let achieved = query.selectivity(graph);
    CalibratedQuery {
        name: name.to_owned(),
        template: template.to_owned(),
        regex,
        query,
        target_selectivity: target,
        achieved_selectivity: achieved,
    }
}

/// Table 1 selectivity targets for bio1..bio6.
pub const BIO_TARGETS: [f64; 6] = [0.0003, 0.002, 0.03, 0.11, 0.12, 0.22];

/// Builds and calibrates the Table 1 biological workload on `graph`
/// (normally the simulated AliBaba graph).
pub fn bio_workload(graph: &GraphDb) -> BioWorkload {
    let by_freq = labels_by_frequency(graph);

    // A drives bio6 = A·A·A* (22%).
    let class_a = calibrate_class(
        graph,
        &|class: &[Symbol]| {
            let a = class_regex(class);
            Regex::concat(vec![a.clone(), a.clone(), Regex::star(a)])
        },
        BIO_TARGETS[5],
        &by_freq,
    );

    // I drives bio4 = I·I·I* (11%).
    let class_i = calibrate_class(
        graph,
        &|class: &[Symbol]| {
            let i = class_regex(class);
            Regex::concat(vec![i.clone(), i.clone(), Regex::star(i)])
        },
        BIO_TARGETS[3],
        &by_freq,
    );

    // C is shared by bio2 and bio3; calibrate it alone to an intermediate
    // 15%, then E on bio3 = C·E (3%).
    let class_c = calibrate_class(
        graph,
        &|class: &[Symbol]| class_regex(class),
        0.15,
        &by_freq,
    );
    let class_e = calibrate_class(
        graph,
        &|class: &[Symbol]| Regex::concat(vec![class_regex(&class_c), class_regex(class)]),
        BIO_TARGETS[2],
        &by_freq,
    );

    // Single labels: b for bio1 = b·A·A* (0.03%), a for bio2 (0.2%).
    let regex_a_cls = class_regex(&class_a);
    let label_b = calibrate_symbol(
        graph,
        &|b: Symbol| {
            Regex::concat(vec![
                Regex::Symbol(b),
                regex_a_cls.clone(),
                Regex::star(regex_a_cls.clone()),
            ])
        },
        BIO_TARGETS[0],
        &by_freq,
    );
    let regex_c_cls = class_regex(&class_c);
    let label_a = calibrate_symbol(
        graph,
        &|a: Symbol| {
            Regex::concat(vec![
                regex_c_cls.clone(),
                Regex::star(regex_c_cls.clone()),
                Regex::Symbol(a),
                regex_a_cls.clone(),
                Regex::star(regex_a_cls.clone()),
            ])
        },
        BIO_TARGETS[1],
        &by_freq,
    );

    let a = regex_a_cls;
    let c = regex_c_cls;
    let e = class_regex(&class_e);
    let i = class_regex(&class_i);

    let queries = vec![
        record(
            graph,
            "bio1",
            "b·A·A*",
            Regex::concat(vec![
                Regex::Symbol(label_b),
                a.clone(),
                Regex::star(a.clone()),
            ]),
            BIO_TARGETS[0],
        ),
        record(
            graph,
            "bio2",
            "C·C*·a·A·A*",
            Regex::concat(vec![
                c.clone(),
                Regex::star(c.clone()),
                Regex::Symbol(label_a),
                a.clone(),
                Regex::star(a.clone()),
            ]),
            BIO_TARGETS[1],
        ),
        record(
            graph,
            "bio3",
            "C·E",
            Regex::concat(vec![c.clone(), e.clone()]),
            BIO_TARGETS[2],
        ),
        record(
            graph,
            "bio4",
            "I·I·I*",
            Regex::concat(vec![i.clone(), i.clone(), Regex::star(i.clone())]),
            BIO_TARGETS[3],
        ),
        record(
            graph,
            "bio5",
            "A·A·A*·I·I·I*",
            Regex::concat(vec![
                a.clone(),
                a.clone(),
                Regex::star(a.clone()),
                i.clone(),
                i.clone(),
                Regex::star(i.clone()),
            ]),
            BIO_TARGETS[4],
        ),
        record(
            graph,
            "bio6",
            "A·A·A*",
            Regex::concat(vec![a.clone(), a.clone(), Regex::star(a)]),
            BIO_TARGETS[5],
        ),
    ];
    BioWorkload { queries }
}

/// Selectivity targets for syn1..syn3 (§5.1: 1%, 15%, 40%).
pub const SYN_TARGETS: [f64; 3] = [0.01, 0.15, 0.40];

/// Builds and calibrates `syn1..syn3 = A·B*·C` on a synthetic graph.
pub fn syn_workload(graph: &GraphDb) -> SynWorkload {
    let by_freq = labels_by_frequency(graph);
    // B is the "loop" class: the two most frequent labels.
    let class_b: Vec<Symbol> = by_freq.iter().copied().take(2).collect();
    let b = class_regex(&class_b);

    let mut queries = Vec::with_capacity(SYN_TARGETS.len());
    for (index, &target) in SYN_TARGETS.iter().enumerate() {
        // C alone at about 1.5× the target (capped), then A on the full
        // query: the last knob calibrates the actual shape.
        let class_c = calibrate_class(
            graph,
            &|class: &[Symbol]| class_regex(class),
            (target * 1.5).min(0.8),
            &by_freq,
        );
        let c = class_regex(&class_c);
        let class_a = calibrate_class(
            graph,
            &|class: &[Symbol]| {
                Regex::concat(vec![class_regex(class), Regex::star(b.clone()), c.clone()])
            },
            target,
            &by_freq,
        );
        let a = class_regex(&class_a);
        queries.push(record(
            graph,
            &format!("syn{}", index + 1),
            "A·B*·C",
            Regex::concat(vec![a, Regex::star(b.clone()), c]),
            target,
        ));
    }
    SynWorkload { queries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alibaba::alibaba_like;
    use crate::scale_free::{scale_free_graph, ScaleFreeConfig};

    #[test]
    fn bio_workload_matches_selectivity_spectrum() {
        let graph = alibaba_like(42);
        let workload = bio_workload(&graph);
        assert_eq!(workload.queries.len(), 6);
        for q in &workload.queries {
            // Every query selects at least one node (the paper retained
            // only such queries) …
            assert!(q.achieved_selectivity > 0.0, "{} selects nothing", q.name);
            // … and no query flips to the wrong order of magnitude:
            // within a factor bracket of its target (shape, not identity).
            assert!(
                q.achieved_selectivity < q.target_selectivity * 6.0 + 0.02,
                "{}: achieved {} vs target {}",
                q.name,
                q.achieved_selectivity,
                q.target_selectivity
            );
        }
        // The spectrum has Table 1's shape: three orders of magnitude,
        // rare → mid → dense, with bio1 ≈ single digits of nodes.
        let sel: Vec<f64> = workload
            .queries
            .iter()
            .map(|q| q.achieved_selectivity)
            .collect();
        assert!(sel[0] < 0.005, "bio1 must be rare, got {}", sel[0]);
        assert!(sel[1] < 0.01, "bio2 must be rare-ish, got {}", sel[1]);
        assert!(sel[2] > 0.005 && sel[2] < 0.10, "bio3 mid: {}", sel[2]);
        assert!(sel[3] > 0.05 && sel[3] < 0.30, "bio4 dense: {}", sel[3]);
        assert!(sel[4] > 0.05 && sel[4] < 0.30, "bio5 dense: {}", sel[4]);
        assert!(sel[5] > 0.10 && sel[5] < 0.40, "bio6 densest: {}", sel[5]);
        // Strict ordering of the magnitude classes.
        assert!(sel[0] < sel[2] && sel[2] < sel[5]);
        assert!(sel[1] < sel[2]);
    }

    #[test]
    fn syn_workload_orders_selectivities() {
        let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(2000, 42));
        let workload = syn_workload(&graph);
        assert_eq!(workload.queries.len(), 3);
        let sel: Vec<f64> = workload
            .queries
            .iter()
            .map(|q| q.achieved_selectivity)
            .collect();
        assert!(sel[0] > 0.0);
        assert!(sel[0] < sel[1], "{sel:?}");
        assert!(sel[1] < sel[2], "{sel:?}");
    }

    #[test]
    fn calibration_is_deterministic() {
        let graph = alibaba_like(7);
        let a = bio_workload(&graph);
        let b = bio_workload(&graph);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.regex, y.regex);
        }
    }

    #[test]
    fn templates_recorded() {
        let graph = alibaba_like(42);
        let workload = bio_workload(&graph);
        assert_eq!(workload.queries[4].template, "A·A·A*·I·I·I*");
        assert_eq!(workload.queries[4].name, "bio5");
    }
}
