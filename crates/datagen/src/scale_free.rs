//! Seeded scale-free graph generation (§5.1).
//!
//! The paper's generator *"yields graphs of varying size and similar to
//! real-world graphs … scale-free graphs with a Zipfian edge label
//! distribution"* \[27\], with three times as many edges as nodes. We use
//! directed preferential attachment: each new node adds `edges_per_node`
//! edges whose endpoint is sampled proportionally to degree+1 (realized by
//! the classic repeated-endpoints trick), with random orientation so
//! cycles exist (the Kleene-star queries need them).

use crate::zipf::Zipf;
use pathlearn_automata::{Alphabet, Symbol};
use pathlearn_graph::{GraphBuilder, GraphDb, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Configuration for [`scale_free_graph`].
#[derive(Clone, Debug)]
pub struct ScaleFreeConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Edges added per new node (the paper uses 3× nodes, i.e. 3).
    pub edges_per_node: usize,
    /// Alphabet of edge labels (label order fixes the Zipf ranks).
    pub alphabet: Alphabet,
    /// Zipf exponent of the label distribution (ignored when
    /// `label_weights` is set).
    pub label_exponent: f64,
    /// Explicit label weights overriding the Zipf law (rank = intern
    /// order). Must match the alphabet length when present.
    pub label_weights: Option<Vec<f64>>,
    /// RNG seed.
    pub seed: u64,
}

impl ScaleFreeConfig {
    /// The configuration used for the paper's `syn` graphs: `nodes` nodes,
    /// 3 edges per node, a 30-label alphabet, Zipf(1.0) labels.
    pub fn paper_synthetic(nodes: usize, seed: u64) -> Self {
        let labels: Vec<String> = (0..30).map(|i| format!("l{i:02}")).collect();
        ScaleFreeConfig {
            nodes,
            edges_per_node: 3,
            alphabet: Alphabet::from_labels(labels),
            label_exponent: 1.0,
            label_weights: None,
            seed,
        }
    }
}

/// Generates a directed scale-free multigraph (parallel edges with equal
/// labels are deduplicated by the builder).
pub fn scale_free_graph(config: &ScaleFreeConfig) -> GraphDb {
    assert!(config.nodes > 0, "graph needs at least one node");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = match &config.label_weights {
        Some(weights) => {
            assert_eq!(
                weights.len(),
                config.alphabet.len(),
                "one weight per label required"
            );
            Zipf::from_weights(weights.iter().copied())
        }
        None => Zipf::new(config.alphabet.len(), config.label_exponent),
    };
    let symbols: Vec<Symbol> = config.alphabet.symbols().collect();

    let mut builder = GraphBuilder::with_alphabet(config.alphabet.clone());
    builder.add_nodes("n", config.nodes);

    // Preferential attachment: `endpoints` holds one entry per edge
    // endpoint, so uniform sampling from it is degree-proportional.
    let mut endpoints: Vec<NodeId> = vec![0];
    for node in 1..config.nodes as NodeId {
        for _ in 0..config.edges_per_node {
            // Degree-proportional target with a uniform smoothing term.
            let target = if rng.gen_bool(0.2) {
                rng.gen_range(0..node)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            let label = symbols[zipf.sample(&mut rng)];
            // Random orientation so directed cycles arise.
            let (src, dst) = if rng.gen_bool(0.5) {
                (node, target)
            } else {
                (target, node)
            };
            builder.add_edge_ids(src, label, dst);
            endpoints.push(target);
            endpoints.push(node);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_configuration() {
        let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(1000, 42));
        assert_eq!(graph.num_nodes(), 1000);
        // ~3 edges per node minus dedup losses.
        assert!(graph.num_edges() > 2500 && graph.num_edges() <= 3000);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = scale_free_graph(&ScaleFreeConfig::paper_synthetic(300, 7));
        let b = scale_free_graph(&ScaleFreeConfig::paper_synthetic(300, 7));
        assert_eq!(a.num_edges(), b.num_edges());
        let edges_a: Vec<_> = a.edges().collect();
        let edges_b: Vec<_> = b.edges().collect();
        assert_eq!(edges_a, edges_b);
        let c = scale_free_graph(&ScaleFreeConfig::paper_synthetic(300, 8));
        assert_ne!(edges_a, c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(2000, 42));
        let mut degrees: Vec<usize> = graph
            .nodes()
            .map(|n| graph.out_degree(n) + graph.in_edges(n).len())
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Hubs: the top node has far more than the median degree.
        let median = degrees[degrees.len() / 2];
        assert!(
            degrees[0] >= median * 5,
            "top {} median {median}",
            degrees[0]
        );
    }

    #[test]
    fn labels_are_zipf_skewed() {
        let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(2000, 42));
        let mut counts = vec![0usize; graph.alphabet().len()];
        for (_, sym, _) in graph.edges() {
            counts[sym.index()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > min * 4, "max {max} min {min}");
    }

    #[test]
    fn contains_directed_cycles() {
        let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(500, 42));
        let cyclic = graph.nodes().any(|n| graph.has_infinite_paths(n));
        assert!(cyclic, "Kleene-star workloads need cycles");
    }
}
