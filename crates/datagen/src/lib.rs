//! Dataset generators and query workloads for the EDBT 2015 evaluation.
//!
//! The paper evaluates on (§5.1):
//!
//! * **AliBaba** \[36\] — a real protein–protein interaction graph
//!   (≈3k nodes / ≈8k edges) whose semantic part was obtained privately
//!   from the authors of \[27\]. The dataset is not redistributable, so
//!   [`alibaba`] generates a **simulated stand-in** with the same
//!   published statistics (scale, hub-dominated degree distribution, an
//!   alphabet rich enough for the Table 1 disjunction classes). The
//!   substitution is documented in `DESIGN.md` §3;
//! * **synthetic scale-free graphs** with a Zipfian edge-label
//!   distribution \[27\] of 10k/20k/30k nodes and 3× edges — [`scale_free`]
//!   with [`zipf`];
//! * **workloads**: the six biological queries of Table 1 (structures
//!   `b·A·A*`, `C·C*·a·A·A*`, `C·E`, `I·I·I*`, `A·A·A*·I·I·I*`, `A·A·A*`)
//!   and the synthetic queries `syn1..syn3` (`A·B*·C` at 1% / 15% / 40%
//!   selectivity) — [`workloads`] calibrates the disjunction classes
//!   against the paper's selectivity targets;
//! * **random example sampling** for the static experiments (§5.2) —
//!   [`sampling`].
//!
//! Everything is seeded and deterministic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alibaba;
pub mod sampling;
pub mod scale_free;
pub mod workloads;
pub mod zipf;

pub use alibaba::alibaba_like;
pub use scale_free::{scale_free_graph, ScaleFreeConfig};
pub use workloads::{bio_workload, syn_workload, BioWorkload, SynWorkload};
