//! Simulated AliBaba-like biological graph (§5.1 substitution).
//!
//! The paper uses the semantic (protein–protein interaction) part of
//! **AliBaba** \[36\]: ≈3k nodes and ≈8k edges extracted by text mining
//! from PubMed, shared privately by the authors of \[27\]. The dataset is
//! not publicly redistributable, so this module generates a stand-in with
//! the same published characteristics:
//!
//! * ≈3,000 nodes, ≈8,000 edges;
//! * hub-dominated (scale-free) degree structure, as in curated PPI
//!   networks;
//! * 25 interaction-type labels with a skewed (Zipfian) frequency
//!   distribution, enough to build the Table 1 disjunction classes
//!   (`A`, `C`, `E`, `I` with up to 10 possibly-overlapping symbols).
//!
//! What the learning experiments actually exercise — SCP search over
//! skewed adjacency, generalization against large negative path
//! languages, selectivities spanning 0.03%–22% — depends only on these
//! statistics, not on the identity of the proteins; see `DESIGN.md` §3.

use crate::scale_free::{scale_free_graph, ScaleFreeConfig};
use pathlearn_automata::Alphabet;
use pathlearn_graph::GraphDb;

/// Interaction-type labels for the simulated biological graph; frequency
/// rank follows list order (earlier = more frequent under Zipf).
pub const INTERACTION_LABELS: [&str; 25] = [
    "binds",
    "activates",
    "inhibits",
    "phosphorylates",
    "regulates",
    "expresses",
    "interacts",
    "represses",
    "methylates",
    "acetylates",
    "ubiquitinates",
    "transports",
    "cleaves",
    "stabilizes",
    "degrades",
    "localizes",
    "dimerizes",
    "recruits",
    "sequesters",
    "modifies",
    "catalyzes",
    "glycosylates",
    "oxidizes",
    "isomerizes",
    "demethylates",
];

/// Number of nodes of the simulated graph (AliBaba's semantic part: ~3k).
pub const ALIBABA_NODES: usize = 3000;

/// Generates the simulated AliBaba-like graph (≈3k nodes / ≈8k edges).
///
/// The label *order inside the alphabet is sorted* (as everywhere in this
/// workspace) but the Zipf frequency ranks follow
/// [`INTERACTION_LABELS`] order, so `binds` is the most frequent label.
pub fn alibaba_like(seed: u64) -> GraphDb {
    // Keep frequency rank == INTERACTION_LABELS order by interning in
    // that order (Alphabet::from_labels would sort alphabetically).
    let mut alphabet = Alphabet::new();
    for label in INTERACTION_LABELS {
        alphabet.intern(label);
    }
    // Two-regime frequency profile, as in curated interaction corpora:
    // a Zipfian head of 15 common interaction types plus a long tail of
    // 10 rare ones (single-digit edge counts on 8k edges). The rare tail
    // is what gives the Table 1 spectrum its 0.03%-selectivity end
    // (bio1 = b·A·A* with b a rare label selects ~1 node).
    let mut weights: Vec<f64> = (0..15).map(|i| 1.0 / (i + 1) as f64).collect();
    for i in 0..10 {
        weights.push(2.2e-3 / (1 << (i / 3)) as f64);
    }
    let config = ScaleFreeConfig {
        nodes: ALIBABA_NODES,
        // ≈8k edges over 3k nodes ≈ 2.7 per node; 3 per node with the
        // builder's dedup lands close to the target.
        edges_per_node: 3,
        alphabet,
        label_exponent: 1.0,
        label_weights: Some(weights),
        seed,
    };
    scale_free_graph(&config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_statistics() {
        let graph = alibaba_like(42);
        assert_eq!(graph.num_nodes(), 3000);
        // "about 3k nodes and 8k edges": allow the builder's dedup slack.
        assert!(
            graph.num_edges() > 7000 && graph.num_edges() < 9200,
            "{} edges",
            graph.num_edges()
        );
        assert_eq!(graph.alphabet().len(), 25);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = alibaba_like(1);
        let b = alibaba_like(1);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn frequent_labels_lead_the_distribution() {
        let graph = alibaba_like(42);
        let binds = graph.alphabet().symbol("binds").unwrap();
        let rare = graph.alphabet().symbol("demethylates").unwrap();
        let mut counts = vec![0usize; graph.alphabet().len()];
        for (_, sym, _) in graph.edges() {
            counts[sym.index()] += 1;
        }
        assert!(counts[binds.index()] > counts[rare.index()] * 3);
    }
}
