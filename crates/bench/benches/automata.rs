//! Ablation benches for the automata substrate.
//!
//! * Hopcroft vs Moore minimization (DESIGN.md decision: Hopcroft primary);
//! * antichain vs naive (full-determinization) language inclusion;
//! * subset construction and regex compilation as baselines.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pathlearn_automata::inclusion::{nfa_included_in, nfa_included_in_naive};
use pathlearn_automata::minimize::{minimize, minimize_moore};
use pathlearn_automata::{Alphabet, Dfa, Nfa, Regex, StateId, Symbol};
use std::hint::black_box;

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

/// A pseudo-random DFA with `n` states over `alphabet` symbols.
fn random_dfa(n: usize, alphabet: usize, seed: u64) -> Dfa {
    let mut s = seed | 1;
    let mut dfa = Dfa::new(n, alphabet, 0);
    for state in 0..n as StateId {
        for a in 0..alphabet {
            if !xorshift(&mut s).is_multiple_of(8) {
                dfa.set_transition(
                    state,
                    Symbol::from_index(a),
                    (xorshift(&mut s) % n as u64) as StateId,
                );
            }
        }
        if xorshift(&mut s).is_multiple_of(4) {
            dfa.set_final(state);
        }
    }
    dfa
}

/// A pseudo-random NFA.
fn random_nfa(n: usize, alphabet: usize, edges: usize, seed: u64) -> Nfa {
    let mut s = seed | 1;
    let mut nfa = Nfa::new(n, alphabet);
    nfa.set_initial(0);
    for _ in 0..edges {
        nfa.add_transition(
            (xorshift(&mut s) % n as u64) as StateId,
            Symbol::from_index((xorshift(&mut s) % alphabet as u64) as usize),
            (xorshift(&mut s) % n as u64) as StateId,
        );
    }
    for state in 0..n {
        if xorshift(&mut s).is_multiple_of(3) {
            nfa.set_final(state as StateId);
        }
    }
    nfa
}

fn bench_minimization(c: &mut Criterion) {
    let dfa = random_dfa(400, 4, 0xBEEF);
    let mut group = c.benchmark_group("minimize");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("hopcroft_400", |b| b.iter(|| minimize(black_box(&dfa))));
    group.bench_function("moore_400", |b| b.iter(|| minimize_moore(black_box(&dfa))));
    group.finish();
}

fn bench_inclusion(c: &mut Criterion) {
    let a = random_nfa(12, 2, 40, 0xCAFE);
    let b = random_nfa(12, 2, 60, 0xF00D);
    let mut group = c.benchmark_group("inclusion");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("antichain_12", |bench| {
        bench.iter(|| nfa_included_in(black_box(&a), black_box(&b)).is_ok())
    });
    group.bench_function("naive_subset_12", |bench| {
        bench.iter(|| nfa_included_in_naive(black_box(&a), black_box(&b)).is_ok())
    });
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let alphabet = Alphabet::from_labels(["a", "b", "c", "d"]);
    let regex = Regex::parse("(a·b + c·(a+d)*)*·c·(a + b·d)", &alphabet).unwrap();
    let nfa = random_nfa(30, 3, 120, 0xABCD);
    let mut group = c.benchmark_group("compile");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("regex_to_dfa", |b| {
        b.iter(|| black_box(&regex).to_dfa(alphabet.len()))
    });
    group.bench_function("determinize_30", |b| {
        b.iter_batched(
            || nfa.clone(),
            |n| pathlearn_automata::determinize::determinize(&n),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_minimization, bench_inclusion, bench_compile);
criterion_main!(benches);
