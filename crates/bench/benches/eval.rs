//! Ablation bench for monadic RPQ evaluation (DESIGN.md decision on S12):
//! single backward product reachability vs. per-node forward emptiness.

use criterion::{criterion_group, criterion_main, Criterion};
use pathlearn_bench::{bio_dataset, syn_dataset};
use pathlearn_graph::eval::{eval_monadic, eval_monadic_naive};
use std::hint::black_box;

fn bench_eval(c: &mut Criterion) {
    let bio = bio_dataset(42);
    let q6 = bio.queries[5].query.dfa().clone();
    let mut group = c.benchmark_group("eval_monadic");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("backward_alibaba_bio6", |b| {
        b.iter(|| eval_monadic(black_box(&q6), &bio.graph))
    });
    group.bench_function("naive_alibaba_bio6", |b| {
        b.iter(|| eval_monadic_naive(black_box(&q6), &bio.graph))
    });

    let syn = syn_dataset(10_000, 42);
    let s2 = syn.queries[1].query.dfa().clone();
    group.bench_function("backward_syn10k_syn2", |b| {
        b.iter(|| eval_monadic(black_box(&s2), &syn.graph))
    });
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
