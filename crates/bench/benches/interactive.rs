//! Benchmarks for one interactive round: the strategy's node proposal
//! (`kR` scan vs `kS` exhaustive count) — the dominant cost in the
//! "time between interactions" column of Table 2.

use criterion::{criterion_group, criterion_main, Criterion};
use pathlearn_bench::bio_dataset;
use pathlearn_core::Sample;
use pathlearn_datagen::sampling::random_sample;
use pathlearn_graph::NodeId;
use pathlearn_interactive::strategy::{propose, StrategyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_propose(c: &mut Criterion) {
    let dataset = bio_dataset(42);
    let goal = &dataset.queries[3].query; // bio4
    let selection = goal.eval(&dataset.graph);
    let sample: Sample = random_sample(&dataset.graph, &selection, 0.01, 7);
    let candidates: Vec<NodeId> = dataset
        .graph
        .nodes()
        .filter(|&n| !sample.is_labeled(n))
        .collect();

    let mut group = c.benchmark_group("propose_alibaba");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for strategy in [StrategyKind::KRandom, StrategyKind::KSmallest] {
        group.bench_function(strategy.to_string(), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                propose(
                    strategy,
                    &dataset.graph,
                    &sample,
                    &candidates,
                    2,
                    4,
                    10_000,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propose);
criterion_main!(benches);
