//! End-to-end Algorithm 1 benchmarks — the learning-time measurements
//! behind Figure 12, as micro-benchmarks (one per biological query at a
//! fixed 2% label fraction).

use criterion::{criterion_group, criterion_main, Criterion};
use pathlearn_bench::bio_dataset;
use pathlearn_core::Learner;
use pathlearn_datagen::sampling::random_sample;
use std::hint::black_box;

fn bench_learner(c: &mut Criterion) {
    let dataset = bio_dataset(42);
    let mut group = c.benchmark_group("learn_alibaba_2pct");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for q in &dataset.queries {
        let selection = q.query.eval(&dataset.graph);
        let sample = random_sample(&dataset.graph, &selection, 0.02, 7);
        let learner = Learner::default();
        group.bench_function(q.name.as_str(), |b| {
            b.iter(|| learner.learn(black_box(&dataset.graph), black_box(&sample)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_learner);
criterion_main!(benches);
