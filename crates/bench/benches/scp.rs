//! Ablation bench for SCP search (DESIGN.md decision 3): the shared
//! negative-side determinization cache vs. a fresh cache per positive
//! node, and the naive enumerate-and-test baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use pathlearn_bench::bio_dataset;
use pathlearn_core::Sample;
use pathlearn_datagen::sampling::random_sample;
use pathlearn_graph::scp::scp_naive;
use pathlearn_graph::{GraphDb, ScpFinder};
use std::hint::black_box;

fn setup() -> (GraphDb, Sample) {
    let dataset = bio_dataset(42);
    let goal = &dataset.queries[5].query; // bio6: plenty of positives
    let selection = goal.eval(&dataset.graph);
    let sample = random_sample(&dataset.graph, &selection, 0.02, 7);
    (dataset.graph, sample)
}

fn bench_scp(c: &mut Criterion) {
    let (graph, sample) = setup();
    let mut group = c.benchmark_group("scp_alibaba_2pct");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("shared_neg_cache", |b| {
        b.iter(|| {
            let mut finder = ScpFinder::new(&graph, sample.neg());
            let mut found = 0usize;
            for &node in sample.pos() {
                if finder.scp(black_box(node), 3).is_some() {
                    found += 1;
                }
            }
            found
        })
    });

    group.bench_function("fresh_cache_per_node", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &node in sample.pos() {
                // Ablation: rebuild the finder (and its cache) per node.
                let mut finder = ScpFinder::new(&graph, sample.neg());
                if finder.scp(black_box(node), 3).is_some() {
                    found += 1;
                }
            }
            found
        })
    });

    // The naive baseline is slow; restrict it to a handful of nodes.
    let few: Vec<_> = sample.pos().iter().copied().take(3).collect();
    group.bench_function("naive_enumerate_3nodes", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &node in &few {
                if scp_naive(&graph, node, sample.neg(), 3).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scp);
criterion_main!(benches);
