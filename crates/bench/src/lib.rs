//! Shared setup for the benchmark harness.
//!
//! One binary per paper artifact (run with `--release`):
//!
//! | paper artifact | binary |
//! |---|---|
//! | Table 1 (bio query selectivities) | `table1_selectivity` |
//! | Figure 11 (F1 vs. % labeled nodes) | `fig11_f1 [bio\|syn]` |
//! | Figure 12 (learning time vs. % labeled nodes) | `fig12_time [bio\|syn]` |
//! | Table 2 (static vs. interactive labels, time/interaction) | `table2_interactive [bio\|syn]` |
//!
//! Criterion micro/ablation benches live under `benches/`.
//!
//! All binaries accept `--seed N` (default 42) and `--full` (paper-scale
//! synthetic graphs 10k/20k/30k; the default quick scale uses 10k only so
//! the whole harness finishes in minutes).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use pathlearn_core::PathQuery;
use pathlearn_datagen::scale_free::{scale_free_graph, ScaleFreeConfig};
use pathlearn_datagen::workloads::{bio_workload, syn_workload, CalibratedQuery};
use pathlearn_graph::GraphDb;

/// Parsed command-line options shared by the harness binaries.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Base RNG seed.
    pub seed: u64,
    /// Paper-scale synthetic graphs (10k/20k/30k) instead of 10k only.
    pub full: bool,
    /// Threads for parallel evaluation / the learner's SCP fan-out
    /// (`--threads N`, default 1 = sequential). Results are identical at
    /// every thread count; only wall-clock changes.
    pub threads: usize,
    /// Positional arguments (e.g. `bio` / `syn`).
    pub positional: Vec<String>,
}

impl HarnessArgs {
    /// Parses `std::env::args`, ignoring the binary name.
    pub fn parse() -> Self {
        let mut args = HarnessArgs {
            seed: 42,
            full: false,
            threads: 1,
            positional: Vec::new(),
        };
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--seed" => {
                    args.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--full" => args.full = true,
                "--threads" => {
                    args.threads = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads needs an integer");
                }
                other if other.starts_with("--") => {
                    panic!("unknown flag {other} (expected --seed/--full/--threads)")
                }
                other => args.positional.push(other.to_owned()),
            }
        }
        args
    }

    /// Synthetic graph sizes for this scale.
    pub fn syn_sizes(&self) -> Vec<usize> {
        if self.full {
            vec![10_000, 20_000, 30_000]
        } else {
            vec![10_000]
        }
    }
}

/// A named dataset: graph + calibrated workload queries.
pub struct Dataset {
    /// Dataset label for reports (`alibaba-sim`, `syn-10000`, …).
    pub name: String,
    /// The graph.
    pub graph: GraphDb,
    /// The calibrated workload on it.
    pub queries: Vec<CalibratedQuery>,
}

/// Builds the simulated-AliBaba dataset with the Table 1 workload.
pub fn bio_dataset(seed: u64) -> Dataset {
    let graph = pathlearn_datagen::alibaba_like(seed);
    let workload = bio_workload(&graph);
    Dataset {
        name: "alibaba-sim".to_owned(),
        graph,
        queries: workload.queries,
    }
}

/// Builds one synthetic dataset of the given size with syn1..syn3.
pub fn syn_dataset(nodes: usize, seed: u64) -> Dataset {
    let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(nodes, seed));
    let workload = syn_workload(&graph);
    Dataset {
        name: format!("syn-{nodes}"),
        graph,
        queries: workload.queries,
    }
}

/// Returns the datasets selected by the positional argument
/// (`bio`, `syn`, or both when absent).
pub fn datasets_for(args: &HarnessArgs) -> Vec<Dataset> {
    let which = args.positional.first().map(String::as_str);
    let mut datasets = Vec::new();
    if matches!(which, None | Some("bio")) {
        datasets.push(bio_dataset(args.seed));
    }
    if matches!(which, None | Some("syn")) {
        for nodes in args.syn_sizes() {
            datasets.push(syn_dataset(nodes, args.seed));
        }
    }
    assert!(
        !datasets.is_empty(),
        "dataset selector must be `bio` or `syn`"
    );
    datasets
}

/// Convenience: a `(name, goal)` list from a dataset.
pub fn goals(dataset: &Dataset) -> Vec<(String, PathQuery)> {
    dataset
        .queries
        .iter()
        .map(|q| (q.name.clone(), q.query.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bio_dataset_builds() {
        let dataset = bio_dataset(42);
        assert_eq!(dataset.queries.len(), 6);
        assert_eq!(dataset.graph.num_nodes(), 3000);
    }

    #[test]
    fn syn_dataset_builds_small() {
        let dataset = syn_dataset(500, 42);
        assert_eq!(dataset.queries.len(), 3);
        assert_eq!(dataset.name, "syn-500");
    }
}
