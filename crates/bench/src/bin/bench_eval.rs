//! Old-vs-new RPQ evaluation benchmark, the perf artifact of the
//! label-partitioned CSR + frontier-kernel rework.
//!
//! Generates a scale-free graph (paper §5.1 configuration: 3× edges,
//! 30-label Zipf(1.0) alphabet), calibrates the full paper query mix on
//! it (Table 1 structures bio1–bio6 plus syn1–syn3), and times
//!
//! * `eval_monadic` — the frontier-batched level-synchronous evaluator;
//! * `eval_monadic_queued` — the seed algorithm (node-at-a-time backward
//!   BFS over packed product states), kept verbatim as the baseline;
//!
//! checking the two agree on every query before timing. Results go to
//! stdout (table) and to a JSON file (default `BENCH_eval.json`) so the
//! repository keeps a perf trajectory across PRs.
//!
//! ```text
//! bench_eval [--nodes N] [--seed S] [--runs R] [--out PATH]
//! ```

use pathlearn_datagen::scale_free::{scale_free_graph, ScaleFreeConfig};
use pathlearn_datagen::workloads::{bio_workload, syn_workload, CalibratedQuery};
use pathlearn_eval::report::ascii_table;
use pathlearn_graph::eval::{eval_monadic, eval_monadic_queued};
use pathlearn_graph::GraphDb;
use std::time::Instant;

struct QueryResult {
    name: String,
    template: String,
    dfa_states: usize,
    selectivity: f64,
    new_ns: u128,
    seed_ns: u128,
}

impl QueryResult {
    fn speedup(&self) -> f64 {
        self.seed_ns.max(1) as f64 / self.new_ns.max(1) as f64
    }
}

/// Median of `runs` wall-clock timings of `f`, after one warm-up call.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> u128 {
    f(); // warm-up
    let mut times: Vec<u128> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn bench_query(graph: &GraphDb, q: &CalibratedQuery, runs: usize) -> QueryResult {
    let dfa = q.query.dfa();
    // Correctness gate: the evaluators must agree before we time them.
    let new = eval_monadic(dfa, graph);
    let seed = eval_monadic_queued(dfa, graph);
    assert_eq!(new, seed, "{}: evaluators disagree", q.name);

    let new_ns = median_ns(runs, || {
        std::hint::black_box(eval_monadic(dfa, graph));
    });
    let seed_ns = median_ns(runs, || {
        std::hint::black_box(eval_monadic_queued(dfa, graph));
    });
    QueryResult {
        name: q.name.clone(),
        template: q.template.clone(),
        dfa_states: dfa.num_states(),
        selectivity: q.achieved_selectivity,
        new_ns,
        seed_ns,
    }
}

fn geometric_mean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, count) = values.fold((0.0, 0usize), |(s, c), v| (s + v.ln(), c + 1));
    if count == 0 {
        return 1.0;
    }
    (sum / count as f64).exp()
}

fn json_escape(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn write_json(
    path: &str,
    graph: &GraphDb,
    seed: u64,
    runs: usize,
    results: &[QueryResult],
    geomean: f64,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"benchmark\": \"eval_monadic: frontier-batched vs seed queued backward BFS\",\n",
    );
    out.push_str(&format!(
        "  \"graph\": {{\"generator\": \"scale_free paper_synthetic\", \"nodes\": {}, \"edges\": {}, \"labels\": {}, \"seed\": {}}},\n",
        graph.num_nodes(),
        graph.num_edges(),
        graph.alphabet().len(),
        seed
    ));
    out.push_str(&format!("  \"runs_per_query\": {runs},\n"));
    out.push_str("  \"timer\": \"median of wall-clock runs after one warm-up\",\n");
    out.push_str("  \"queries\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"template\": \"{}\", \"dfa_states\": {}, \"selectivity\": {:.6}, \"new_ns\": {}, \"seed_ns\": {}, \"speedup\": {:.3}}}{}\n",
            json_escape(&r.name),
            json_escape(&r.template),
            r.dfa_states,
            r.selectivity,
            r.new_ns,
            r.seed_ns,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"geomean_speedup\": {geomean:.3}\n"));
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let mut seed = 42u64;
    let mut nodes = 10_000usize;
    let mut runs = 9usize;
    let mut out_path = "BENCH_eval.json".to_owned();
    fn usage(problem: &str) -> ! {
        eprintln!("error: {problem}");
        eprintln!("usage: bench_eval [--nodes N] [--seed S] [--runs R] [--out PATH]");
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed needs an integer"));
            }
            "--nodes" => {
                nodes = value("--nodes")
                    .parse()
                    .unwrap_or_else(|_| usage("--nodes needs an integer"));
            }
            "--runs" => {
                runs = value("--runs")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage("--runs needs an integer"))
                    .max(1);
            }
            "--out" => out_path = value("--out"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    eprintln!("generating scale-free graph: {nodes} nodes, seed {seed} ...");
    let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(nodes, seed));
    eprintln!(
        "graph ready: {} nodes, {} edges, {} labels",
        graph.num_nodes(),
        graph.num_edges(),
        graph.alphabet().len()
    );

    eprintln!("calibrating paper query mix (bio1-6, syn1-3) ...");
    let mut queries = bio_workload(&graph).queries;
    queries.extend(syn_workload(&graph).queries);

    let results: Vec<QueryResult> = queries
        .iter()
        .map(|q| {
            let r = bench_query(&graph, q, runs);
            eprintln!(
                "  {:<5} {:>12} ns (new) {:>12} ns (seed)  {:>6.2}x",
                r.name,
                r.new_ns,
                r.seed_ns,
                r.speedup()
            );
            r
        })
        .collect();

    let geomean = geometric_mean(results.iter().map(QueryResult::speedup));
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.template.clone(),
                format!("{}", r.dfa_states),
                format!("{:.4}", r.selectivity),
                format!("{:.3}", r.new_ns as f64 / 1e6),
                format!("{:.3}", r.seed_ns as f64 / 1e6),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &["query", "template", "|Q|", "sel", "new ms", "seed ms", "speedup"],
            &rows
        )
    );
    println!(
        "geomean speedup: {geomean:.2}x over {} queries",
        results.len()
    );

    write_json(&out_path, &graph, seed, runs, &results, geomean).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
