//! RPQ evaluation benchmark: the perf artifact of the label-partitioned
//! CSR + frontier-kernel rework (PR 1) and the parallel multi-source
//! evaluation layer (`par_eval`).
//!
//! Per scale (default 10k nodes; `--full` adds the paper's 20k and 30k),
//! generates a scale-free graph (paper §5.1 configuration: 3× edges,
//! 30-label Zipf(1.0) alphabet), calibrates the full paper query mix on
//! it (Table 1 structures bio1–bio6 plus syn1–syn3), and times
//!
//! * **monadic, per query**: `eval_monadic` (frontier-batched
//!   level-synchronous evaluator) vs `eval_monadic_queued` (the seed
//!   algorithm, kept verbatim as the baseline);
//! * **multi-source batch**: one binary query evaluated from a seeded
//!   random source batch, sequentially vs fanned out over an
//!   [`EvalPool`] at each `--par-threads` count;
//! * **multi-query batch**: the whole calibrated query mix evaluated
//!   monadically, sequential loop vs pool fan-out;
//! * **intra-query / masked-kernel ablation** (schema v4): every query
//!   of the mix evaluated monadically under three step policies —
//!   `Plain` (exhaustive baseline), `Pruned` (the PR 3 sparsity-gated
//!   emptiness scan) and `Auto` (the masked-kernel cost model, the
//!   default everywhere) — and through the intra-query parallel
//!   evaluator ([`EvalPool::eval_monadic`]) at each `--intra-threads`
//!   count. The headline `prune_speedup` compares `Plain` against
//!   `Auto`.
//! * **task granularity** (schema v4): a 2-state single-label query on
//!   the graph's most frequent label — the paper's common query shape,
//!   whose BFS levels carry at most **one** `(state, symbol)` task — is
//!   evaluated through the intra-query evaluator with the node-range
//!   fan-out disabled (chunk = `usize::MAX`), pinned to 1-word and
//!   4-word chunks, and on auto sizing, at each `--intra-threads`
//!   count.
//! * **whole-query planner ablation** (schema v5): every query of the
//!   mix evaluated monadically under forced `Forward` / `Backward` /
//!   `Auto` strategies and binarily (from a small seeded source batch)
//!   under forced `Forward` / `Backward` / `Bidirectional` / `Auto`,
//!   through the planned engines (`plan_query_forced` + the
//!   `eval_*_planned` dispatchers). The JSON records which direction
//!   `Auto` resolved to next to every forced timing.
//! * **rare-target direction probe** (schema v5): a layered `a`-DAG of
//!   the same node count (node `i` fans out to the next 8 nodes) with a
//!   **single** rare `c`-edge near the head, queried with `(a+b)*·c`
//!   from node 0. Forward evaluation floods every descendant of the
//!   source before discovering the lone `c`-edge; backward evaluation
//!   seeds the coreach certificate at that edge and only ever touches
//!   its handful of ancestors. This is the workload shape the
//!   backward/bidirectional engines exist for, and the probe pins the
//!   expected forced-Backward-beats-forced-Forward gap (and `Auto`'s
//!   resolution) in the committed JSON.
//!
//! Every parallel configuration and every policy is checked
//! **bit-identical** to the sequential results before being timed — a
//! masked/plain divergence aborts the benchmark (and the CI smoke runs
//! turn that abort into a build failure). Results go to stdout (tables)
//! and to a JSON file (default `BENCH_eval.json`) so the repository
//! keeps a perf trajectory across PRs; `BENCHMARKS.md` documents the
//! methodology and how to read the JSON. The detected core count is
//! recorded in the JSON — parallel speedups are only meaningful when the
//! machine actually has the threads.
//!
//! ```text
//! bench_eval [--nodes N[,N,...]] [--full] [--seed S] [--runs R]
//!            [--sources K] [--par-threads T[,T,...]]
//!            [--intra-threads T[,T,...]] [--out PATH]
//! ```

use pathlearn_automata::{Alphabet, BitSet, Dfa, Symbol};
use pathlearn_datagen::scale_free::{scale_free_graph, ScaleFreeConfig};
use pathlearn_datagen::workloads::{bio_workload, syn_workload, CalibratedQuery};
use pathlearn_eval::report::ascii_table;
use pathlearn_graph::eval::{
    eval_binary_from, eval_binary_from_with, eval_monadic, eval_monadic_policy,
    eval_monadic_queued, EvalScratch,
};
use pathlearn_graph::par_eval::{EvalPool, IntraScratch};
use pathlearn_graph::plan::{
    eval_binary_planned, eval_monadic_planned, plan_query, plan_query_forced, PlanScratch,
};
use pathlearn_graph::{GraphBuilder, GraphDb, NodeId, StepPolicy, Strategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct QueryResult {
    name: String,
    template: String,
    dfa_states: usize,
    selectivity: f64,
    new_ns: u128,
    seed_ns: u128,
}

impl QueryResult {
    fn speedup(&self) -> f64 {
        self.seed_ns.max(1) as f64 / self.new_ns.max(1) as f64
    }
}

/// One parallel timing next to its thread count.
struct ParPoint {
    threads: usize,
    ns: u128,
}

/// A sequential-vs-parallel batch measurement.
struct BatchResult {
    label: String,
    items: usize,
    seq_ns: u128,
    par: Vec<ParPoint>,
}

/// One query's intra-query measurements — the masked-kernel ablation:
/// the sequential evaluator under `Plain` (exhaustive), `Pruned` (the
/// legacy sparsity-gated scan) and `Auto` (the masked cost model, the
/// default), and the parallel evaluator at each thread count.
struct IntraResult {
    name: String,
    plain_ns: u128,
    pruned_ns: u128,
    masked_ns: u128,
    par: Vec<ParPoint>,
}

impl IntraResult {
    /// The headline ablation: the masked cost-model default against the
    /// exhaustive baseline (recorded as `prune_speedup` in the JSON for
    /// cross-PR continuity).
    fn masked_speedup(&self) -> f64 {
        self.plain_ns.max(1) as f64 / self.masked_ns.max(1) as f64
    }

    /// The PR 3-era sparsity-gated pruning against the same baseline.
    fn legacy_prune_speedup(&self) -> f64 {
        self.plain_ns.max(1) as f64 / self.pruned_ns.max(1) as f64
    }

    /// Parallel speedup of one thread-count point over the masked
    /// sequential baseline — the one formula both the JSON writer and
    /// the stdout table use.
    fn par_speedup(&self, point: &ParPoint) -> f64 {
        self.masked_ns.max(1) as f64 / point.ns.max(1) as f64
    }
}

/// One timing of the 2-state single-label query through the intra-query
/// evaluator at a `(threads, chunk mode)` configuration.
struct GranularityPoint {
    threads: usize,
    /// `None` = auto sizing, `Some(usize::MAX)` = splitting disabled,
    /// otherwise the pinned chunk width in frontier words.
    chunk_words: Option<usize>,
    ns: u128,
}

impl GranularityPoint {
    fn chunk_label(&self) -> String {
        match self.chunk_words {
            None => "auto".to_owned(),
            Some(usize::MAX) => "off".to_owned(),
            Some(words) => format!("{words}"),
        }
    }
}

/// The task-granularity section: the ≤ 1-task-per-level query shape
/// where only the node-range fan-out can parallelize anything.
struct GranularityResult {
    query: String,
    label_count: usize,
    seq_ns: u128,
    points: Vec<GranularityPoint>,
}

struct ScaleResult {
    nodes: usize,
    edges: usize,
    labels: usize,
    queries: Vec<QueryResult>,
    geomean: f64,
    multi_source: BatchResult,
    multi_query: BatchResult,
    intra_query: Vec<IntraResult>,
    prune_geomean: f64,
    legacy_prune_geomean: f64,
    granularity: GranularityResult,
    planner: PlannerAblation,
}

/// Median of `runs` wall-clock timings of `f`, after one warm-up call.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> u128 {
    f(); // warm-up
    let mut times: Vec<u128> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn bench_query(graph: &GraphDb, q: &CalibratedQuery, runs: usize) -> QueryResult {
    let dfa = q.query.dfa();
    // Correctness gate: the evaluators must agree before we time them.
    let new = eval_monadic(dfa, graph);
    let seed = eval_monadic_queued(dfa, graph);
    assert_eq!(new, seed, "{}: evaluators disagree", q.name);

    let new_ns = median_ns(runs, || {
        std::hint::black_box(eval_monadic(dfa, graph));
    });
    let seed_ns = median_ns(runs, || {
        std::hint::black_box(eval_monadic_queued(dfa, graph));
    });
    QueryResult {
        name: q.name.clone(),
        template: q.template.clone(),
        dfa_states: dfa.num_states(),
        selectivity: q.achieved_selectivity,
        new_ns,
        seed_ns,
    }
}

/// Times the multi-source binary batch: `query` from `sources`,
/// sequential (shared scratch, no pool) vs each thread count. Asserts
/// bit-identity first.
fn bench_multi_source(
    graph: &GraphDb,
    query: &CalibratedQuery,
    sources: &[NodeId],
    par_threads: &[usize],
    runs: usize,
) -> BatchResult {
    let dfa = query.query.dfa();
    let sequential = EvalPool::sequential();
    let expected = sequential.eval_binary_batch(dfa, graph, sources);
    let seq_ns = median_ns(runs, || {
        let mut scratch = EvalScratch::new();
        for &source in sources {
            std::hint::black_box(eval_binary_from_with(&mut scratch, dfa, graph, source));
        }
    });
    let par = par_threads
        .iter()
        .map(|&threads| {
            let pool = EvalPool::new(threads);
            assert_eq!(
                pool.eval_binary_batch(dfa, graph, sources),
                expected,
                "{}: parallel batch differs at {threads} threads",
                query.name
            );
            let ns = median_ns(runs, || {
                std::hint::black_box(pool.eval_binary_batch(dfa, graph, sources));
            });
            ParPoint { threads, ns }
        })
        .collect();
    BatchResult {
        label: format!("binary {} x {} sources", query.name, sources.len()),
        items: sources.len(),
        seq_ns,
        par,
    }
}

/// Times the multi-query monadic batch: the whole calibrated mix,
/// sequential loop vs pool fan-out. Asserts bit-identity first.
fn bench_multi_query(
    graph: &GraphDb,
    dfas: &[Dfa],
    par_threads: &[usize],
    runs: usize,
) -> BatchResult {
    let expected: Vec<BitSet> = dfas.iter().map(|dfa| eval_monadic(dfa, graph)).collect();
    let seq_ns = median_ns(runs, || {
        let sequential = EvalPool::sequential();
        std::hint::black_box(sequential.eval_monadic_batch(dfas, graph));
    });
    let par = par_threads
        .iter()
        .map(|&threads| {
            let pool = EvalPool::new(threads);
            assert_eq!(
                pool.eval_monadic_batch(dfas, graph),
                expected,
                "parallel monadic batch differs at {threads} threads"
            );
            let ns = median_ns(runs, || {
                std::hint::black_box(pool.eval_monadic_batch(dfas, graph));
            });
            ParPoint { threads, ns }
        })
        .collect();
    BatchResult {
        label: format!("monadic query mix x {}", dfas.len()),
        items: dfas.len(),
        seq_ns,
        par,
    }
}

/// Times one query's intra-query configurations — the masked-kernel
/// ablation (`Plain` vs `Pruned` vs `Auto`), then the intra-query
/// parallel evaluator at each thread count. Asserts every policy and
/// every parallel configuration bit-identical to the default sequential
/// result before timing, so a masked/plain divergence aborts the run.
fn bench_intra_query(
    graph: &GraphDb,
    query: &CalibratedQuery,
    intra_threads: &[usize],
    runs: usize,
) -> IntraResult {
    let dfa = query.query.dfa();
    let expected = eval_monadic(dfa, graph);
    let mut scratch = EvalScratch::new();
    for policy in StepPolicy::ALL {
        assert_eq!(
            eval_monadic_policy(&mut scratch, dfa, graph, policy),
            expected,
            "{}: {policy:?} evaluator differs",
            query.name
        );
    }
    let mut time_policy = |policy: StepPolicy| {
        median_ns(runs, || {
            std::hint::black_box(eval_monadic_policy(&mut scratch, dfa, graph, policy));
        })
    };
    let plain_ns = time_policy(StepPolicy::Plain);
    let pruned_ns = time_policy(StepPolicy::Pruned);
    let masked_ns = time_policy(StepPolicy::Auto);
    let par = intra_threads
        .iter()
        .map(|&threads| {
            let pool = EvalPool::new(threads);
            assert_eq!(
                pool.eval_monadic(dfa, graph),
                expected,
                "{}: intra-query parallel differs at {threads} threads",
                query.name
            );
            let mut intra = IntraScratch::new();
            let ns = median_ns(runs, || {
                std::hint::black_box(pool.eval_monadic_with(&mut intra, dfa, graph));
            });
            ParPoint { threads, ns }
        })
        .collect();
    IntraResult {
        name: query.name.clone(),
        plain_ns,
        pruned_ns,
        masked_ns,
        par,
    }
}

/// The 2-state single-label probe query `ℓ·ℓ*` over the graph's most
/// frequent label: every BFS level harvests at most one
/// `(state, symbol)` step task, the regime where `(state, symbol)`
/// fan-out alone parallelizes nothing.
fn most_frequent_label_query(graph: &GraphDb) -> (Dfa, Symbol) {
    let label = graph
        .alphabet()
        .symbols()
        .max_by_key(|&sym| graph.label_source_count(sym))
        .expect("graph has labels");
    let mut dfa = Dfa::new(2, graph.alphabet().len(), 0);
    dfa.set_transition(0, label, 1);
    dfa.set_transition(1, label, 1);
    dfa.set_final(1);
    (dfa, label)
}

/// Times the task-granularity ablation: the probe query through the
/// intra-query evaluator with node-range splitting disabled
/// (`chunk = usize::MAX` → one chunk per task), pinned to 1- and 4-word
/// chunks, and on auto sizing, at each thread count. Every configuration
/// is asserted bit-identical to sequential before timing.
fn bench_granularity(graph: &GraphDb, intra_threads: &[usize], runs: usize) -> GranularityResult {
    let (dfa, label) = most_frequent_label_query(graph);
    let expected = eval_monadic(&dfa, graph);
    let mut scratch = EvalScratch::new();
    let seq_ns = median_ns(runs, || {
        std::hint::black_box(eval_monadic_policy(
            &mut scratch,
            &dfa,
            graph,
            StepPolicy::Auto,
        ));
    });
    let chunk_modes: [Option<usize>; 4] = [Some(usize::MAX), Some(1), Some(4), None];
    let mut points = Vec::new();
    for &threads in intra_threads {
        for chunk_words in chunk_modes {
            let pool = match chunk_words {
                Some(words) => EvalPool::new(threads).with_intra_chunk_words(words),
                None => EvalPool::new(threads),
            };
            assert_eq!(
                pool.eval_monadic(&dfa, graph),
                expected,
                "granularity probe differs at {threads} threads, chunk {chunk_words:?}"
            );
            let mut intra = IntraScratch::new();
            let ns = median_ns(runs, || {
                std::hint::black_box(pool.eval_monadic_with(&mut intra, &dfa, graph));
            });
            points.push(GranularityPoint {
                threads,
                chunk_words,
                ns,
            });
        }
    }
    GranularityResult {
        query: format!("{0}·{0}*", graph.alphabet().name(label)),
        label_count: graph.label_source_count(label),
        seq_ns,
        points,
    }
}

/// One forced-strategy timing of a planned engine.
struct StrategyPoint {
    strategy: Strategy,
    ns: u128,
}

/// One query's whole-query-planner ablation: the planned monadic engine
/// under forced Forward/Backward/Auto, the planned binary engine (summed
/// over a small seeded source batch) under all four strategies, plus the
/// direction `Auto` actually resolved to for each arity.
struct PlannerResult {
    name: String,
    monadic_auto: Strategy,
    binary_auto: Strategy,
    monadic: Vec<StrategyPoint>,
    binary: Vec<StrategyPoint>,
}

impl PlannerResult {
    fn point(points: &[StrategyPoint], strategy: Strategy) -> u128 {
        points
            .iter()
            .find(|p| p.strategy == strategy)
            .map_or(1, |p| p.ns)
    }

    /// Forced-Backward binary speedup over forced-Forward (> 1 means the
    /// backward engine won on this query's source batch).
    fn binary_backward_speedup(&self) -> f64 {
        Self::point(&self.binary, Strategy::Forward) as f64
            / Self::point(&self.binary, Strategy::Backward).max(1) as f64
    }
}

/// The rare-target direction probe: forced binary timings of `(a+b)*·c`
/// on the layered DAG with one rare `c`-edge, from source node 0.
struct DirectionProbe {
    nodes: usize,
    edges: usize,
    query: String,
    binary_auto: Strategy,
    binary: Vec<StrategyPoint>,
}

impl DirectionProbe {
    /// The headline: forced-Backward speedup over forced-Forward.
    fn backward_speedup(&self) -> f64 {
        PlannerResult::point(&self.binary, Strategy::Forward) as f64
            / PlannerResult::point(&self.binary, Strategy::Backward).max(1) as f64
    }
}

/// The whole planner section of one scale.
struct PlannerAblation {
    queries: Vec<PlannerResult>,
    probe: DirectionProbe,
}

/// Times one query through the planned engines under every forced
/// strategy. Monadic strategies are Forward/Backward/Auto (Bidirectional
/// is a binary-only resolution); binary adds Bidirectional and times the
/// whole source batch per run. Every strategy is asserted bit-identical
/// to the plain forward engines before being timed.
fn bench_planner_query(
    graph: &GraphDb,
    q: &CalibratedQuery,
    sources: &[NodeId],
    runs: usize,
) -> PlannerResult {
    let dfa = q.query.dfa();
    let auto_plan = plan_query(dfa, graph);
    let expected = eval_monadic(dfa, graph);
    let mut scratch = PlanScratch::new();
    let monadic = [Strategy::Forward, Strategy::Backward, Strategy::Auto]
        .into_iter()
        .map(|forced| {
            let plan = plan_query_forced(dfa, graph, forced);
            assert_eq!(
                eval_monadic_planned(&mut scratch, &plan, graph),
                expected,
                "{}: planned monadic differs under forced {forced}",
                q.name
            );
            let ns = median_ns(runs, || {
                std::hint::black_box(eval_monadic_planned(&mut scratch, &plan, graph));
            });
            StrategyPoint {
                strategy: forced,
                ns,
            }
        })
        .collect();
    let binary = [
        Strategy::Forward,
        Strategy::Backward,
        Strategy::Bidirectional,
        Strategy::Auto,
    ]
    .into_iter()
    .map(|forced| {
        let plan = plan_query_forced(dfa, graph, forced);
        for &source in sources {
            assert_eq!(
                eval_binary_planned(&mut scratch, &plan, graph, source),
                eval_binary_from(dfa, graph, source),
                "{}: planned binary differs under forced {forced} from {source}",
                q.name
            );
        }
        let ns = median_ns(runs, || {
            for &source in sources {
                std::hint::black_box(eval_binary_planned(&mut scratch, &plan, graph, source));
            }
        });
        StrategyPoint {
            strategy: forced,
            ns,
        }
    })
    .collect();
    PlannerResult {
        name: q.name.clone(),
        monadic_auto: auto_plan.monadic_strategy(),
        binary_auto: auto_plan.binary_strategy(),
        monadic,
        binary,
    }
}

/// The rare-target probe graph: a forward-layered `a`-DAG — node `i`
/// fans out to the next `width` nodes, so edges only ever point down the
/// node order — with a **single** `c`-edge near the head. From node 0,
/// `(a+b)*·c` forward-floods every node of the graph before finding the
/// lone `c`-edge; the backward coreach seeds at that edge and is bounded
/// by its few ancestors.
fn direction_probe_graph(n: usize, width: u32) -> GraphDb {
    let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(["a", "b", "c"]));
    builder.add_nodes("p", n);
    let n = n as u32;
    for i in 0..n {
        for j in 1..=width {
            if i + j < n {
                builder.add_edge_ids(i, Symbol::from_index(0), i + j);
            }
        }
    }
    let c_src = 16.min(n.saturating_sub(2));
    builder.add_edge_ids(c_src, Symbol::from_index(2), c_src + 1);
    builder.build()
}

/// The minimal DFA of `(a+b)*·c` over the probe alphabet `{a, b, c}`.
fn rare_target_dfa() -> Dfa {
    let mut dfa = Dfa::new(2, 3, 0);
    dfa.set_transition(0, Symbol::from_index(0), 0);
    dfa.set_transition(0, Symbol::from_index(1), 0);
    dfa.set_transition(0, Symbol::from_index(2), 1);
    dfa.set_final(1);
    dfa
}

/// Times the rare-target direction probe: all four forced binary
/// strategies from source 0, bit-identity asserted first.
fn bench_direction_probe(nodes: usize, runs: usize) -> DirectionProbe {
    let graph = direction_probe_graph(nodes, 8);
    let dfa = rare_target_dfa();
    let source: NodeId = 0;
    let expected = eval_binary_from(&dfa, &graph, source);
    let auto_plan = plan_query(&dfa, &graph);
    let mut scratch = PlanScratch::new();
    let binary = [
        Strategy::Forward,
        Strategy::Backward,
        Strategy::Bidirectional,
        Strategy::Auto,
    ]
    .into_iter()
    .map(|forced| {
        let plan = plan_query_forced(&dfa, &graph, forced);
        assert_eq!(
            eval_binary_planned(&mut scratch, &plan, &graph, source),
            expected,
            "direction probe differs under forced {forced}"
        );
        let ns = median_ns(runs, || {
            std::hint::black_box(eval_binary_planned(&mut scratch, &plan, &graph, source));
        });
        StrategyPoint {
            strategy: forced,
            ns,
        }
    })
    .collect();
    DirectionProbe {
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        query: "(a+b)*·c".to_owned(),
        binary_auto: auto_plan.binary_strategy(),
        binary,
    }
}

fn geometric_mean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, count) = values.fold((0.0, 0usize), |(s, c), v| (s + v.ln(), c + 1));
    if count == 0 {
        return 1.0;
    }
    (sum / count as f64).exp()
}

fn json_escape(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn strategy_points_json(points: &[StrategyPoint]) -> String {
    points
        .iter()
        .map(|p| format!("{{\"strategy\": \"{}\", \"ns\": {}}}", p.strategy, p.ns))
        .collect::<Vec<_>>()
        .join(", ")
}

fn batch_json(batch: &BatchResult, indent: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"label\": \"{}\", \"items\": {}, \"seq_ns\": {}, \"par\": [",
        json_escape(&batch.label),
        batch.items,
        batch.seq_ns
    ));
    for (i, point) in batch.par.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "\n{indent}  {{\"threads\": {}, \"ns\": {}, \"speedup\": {:.3}}}",
            point.threads,
            point.ns,
            batch.seq_ns.max(1) as f64 / point.ns.max(1) as f64
        ));
    }
    out.push_str(&format!("\n{indent}]}}"));
    out
}

fn write_json(path: &str, seed: u64, runs: usize, scales: &[ScaleResult]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"benchmark\": \"RPQ evaluation: frontier-batched vs seed queued BFS, par_eval batches, masked step kernels + cost-model gate, intra-query parallel + node-range fan-out, whole-query planner (forward/backward/bidirectional) + rare-target direction probe\",\n",
    );
    out.push_str("  \"schema_version\": 5,\n");
    out.push_str(&format!(
        "  \"hardware\": {{\"available_cores\": {}}},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"runs_per_query\": {runs},\n"));
    out.push_str("  \"timer\": \"median of wall-clock runs after one warm-up\",\n");
    out.push_str("  \"scales\": [\n");
    for (si, scale) in scales.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"graph\": {{\"generator\": \"scale_free paper_synthetic\", \"nodes\": {}, \"edges\": {}, \"labels\": {}}},\n",
            scale.nodes, scale.edges, scale.labels
        ));
        out.push_str("      \"queries\": [\n");
        for (i, r) in scale.queries.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"template\": \"{}\", \"dfa_states\": {}, \"selectivity\": {:.6}, \"new_ns\": {}, \"seed_ns\": {}, \"speedup\": {:.3}}}{}\n",
                json_escape(&r.name),
                json_escape(&r.template),
                r.dfa_states,
                r.selectivity,
                r.new_ns,
                r.seed_ns,
                r.speedup(),
                if i + 1 < scale.queries.len() { "," } else { "" }
            ));
        }
        out.push_str("      ],\n");
        out.push_str(&format!(
            "      \"geomean_speedup\": {:.3},\n",
            scale.geomean
        ));
        out.push_str(&format!(
            "      \"multi_source\": {},\n",
            batch_json(&scale.multi_source, "      ")
        ));
        out.push_str(&format!(
            "      \"multi_query\": {},\n",
            batch_json(&scale.multi_query, "      ")
        ));
        out.push_str("      \"intra_query\": [\n");
        for (i, r) in scale.intra_query.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"plain_ns\": {}, \"pruned_ns\": {}, \"masked_ns\": {}, \"prune_speedup\": {:.3}, \"legacy_prune_speedup\": {:.3}, \"par\": [",
                json_escape(&r.name),
                r.plain_ns,
                r.pruned_ns,
                r.masked_ns,
                r.masked_speedup(),
                r.legacy_prune_speedup(),
            ));
            for (pi, point) in r.par.iter().enumerate() {
                if pi > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"threads\": {}, \"ns\": {}, \"speedup\": {:.3}}}",
                    point.threads,
                    point.ns,
                    r.par_speedup(point)
                ));
            }
            out.push_str(&format!(
                "]}}{}\n",
                if i + 1 < scale.intra_query.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("      ],\n");
        let g = &scale.granularity;
        out.push_str(&format!(
            "      \"granularity\": {{\"query\": \"{}\", \"label_sources\": {}, \"seq_ns\": {}, \"points\": [",
            json_escape(&g.query),
            g.label_count,
            g.seq_ns
        ));
        for (pi, point) in g.points.iter().enumerate() {
            if pi > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\n        {{\"threads\": {}, \"chunk_words\": \"{}\", \"ns\": {}, \"speedup\": {:.3}}}",
                point.threads,
                point.chunk_label(),
                point.ns,
                g.seq_ns.max(1) as f64 / point.ns.max(1) as f64
            ));
        }
        out.push_str("\n      ]},\n");
        out.push_str("      \"planner\": {\n");
        out.push_str("        \"queries\": [\n");
        for (pi, r) in scale.planner.queries.iter().enumerate() {
            out.push_str(&format!(
                "          {{\"name\": \"{}\", \"monadic_auto\": \"{}\", \"binary_auto\": \"{}\", \"monadic\": [{}], \"binary\": [{}], \"binary_backward_vs_forward\": {:.3}}}{}\n",
                json_escape(&r.name),
                r.monadic_auto,
                r.binary_auto,
                strategy_points_json(&r.monadic),
                strategy_points_json(&r.binary),
                r.binary_backward_speedup(),
                if pi + 1 < scale.planner.queries.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("        ],\n");
        let probe = &scale.planner.probe;
        out.push_str(&format!(
            "        \"direction_probe\": {{\"graph\": \"layered a-DAG, fanout 8, one rare c-edge\", \"nodes\": {}, \"edges\": {}, \"query\": \"{}\", \"source\": 0, \"binary_auto\": \"{}\", \"binary\": [{}], \"backward_vs_forward_speedup\": {:.3}}}\n",
            probe.nodes,
            probe.edges,
            json_escape(&probe.query),
            probe.binary_auto,
            strategy_points_json(&probe.binary),
            probe.backward_speedup()
        ));
        out.push_str("      },\n");
        out.push_str(&format!(
            "      \"prune_geomean_speedup\": {:.3},\n",
            scale.prune_geomean
        ));
        out.push_str(&format!(
            "      \"legacy_prune_geomean_speedup\": {:.3}\n",
            scale.legacy_prune_geomean
        ));
        out.push_str(&format!(
            "    }}{}\n",
            if si + 1 < scales.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn print_batch(batch: &BatchResult) {
    let mut rows = vec![vec![
        "seq".to_owned(),
        format!("{:.3}", batch.seq_ns as f64 / 1e6),
        "1.00x".to_owned(),
    ]];
    for point in &batch.par {
        rows.push(vec![
            format!("{} threads", point.threads),
            format!("{:.3}", point.ns as f64 / 1e6),
            format!(
                "{:.2}x",
                batch.seq_ns.max(1) as f64 / point.ns.max(1) as f64
            ),
        ]);
    }
    println!("{}:", batch.label);
    println!("{}", ascii_table(&["config", "ms", "speedup"], &rows));
}

fn print_intra(results: &[IntraResult], prune_geomean: f64, legacy_prune_geomean: f64) {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![
                r.name.clone(),
                format!("{:.3}", r.plain_ns as f64 / 1e6),
                format!("{:.3}", r.pruned_ns as f64 / 1e6),
                format!("{:.3}", r.masked_ns as f64 / 1e6),
                format!("{:.2}x", r.masked_speedup()),
            ];
            for point in &r.par {
                row.push(format!(
                    "{:.3} ({:.2}x)",
                    point.ns as f64 / 1e6,
                    r.par_speedup(point)
                ));
            }
            row
        })
        .collect();
    let mut headers = vec![
        "query".to_owned(),
        "plain ms".to_owned(),
        "pruned ms".to_owned(),
        "masked ms".to_owned(),
        "masked gain".to_owned(),
    ];
    if let Some(first) = results.first() {
        for point in &first.par {
            headers.push(format!("{}T ms (x)", point.threads));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("intra-query masked-kernel ablation (monadic, single query at a time):");
    println!("{}", ascii_table(&header_refs, &rows));
    println!(
        "geomean masked-kernel speedup: {prune_geomean:.2}x (legacy sparse-gated pruning: {legacy_prune_geomean:.2}x)"
    );
}

fn print_granularity(g: &GranularityResult) {
    let rows: Vec<Vec<String>> = g
        .points
        .iter()
        .map(|point| {
            vec![
                format!("{} threads", point.threads),
                point.chunk_label(),
                format!("{:.3}", point.ns as f64 / 1e6),
                format!("{:.2}x", g.seq_ns.max(1) as f64 / point.ns.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "task granularity (2-state single-label probe {} over {} active sources, seq {:.3} ms):",
        g.query,
        g.label_count,
        g.seq_ns as f64 / 1e6
    );
    println!(
        "{}",
        ascii_table(&["config", "chunk words", "ms", "speedup"], &rows)
    );
}

fn print_planner(planner: &PlannerAblation, batch_sources: usize) {
    let ms = |points: &[StrategyPoint], strategy: Strategy| {
        format!("{:.3}", PlannerResult::point(points, strategy) as f64 / 1e6)
    };
    let rows: Vec<Vec<String>> = planner
        .queries
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                ms(&r.monadic, Strategy::Forward),
                ms(&r.monadic, Strategy::Backward),
                ms(&r.monadic, Strategy::Auto),
                r.monadic_auto.to_string(),
                ms(&r.binary, Strategy::Forward),
                ms(&r.binary, Strategy::Backward),
                ms(&r.binary, Strategy::Bidirectional),
                ms(&r.binary, Strategy::Auto),
                r.binary_auto.to_string(),
            ]
        })
        .collect();
    println!(
        "whole-query planner ablation (monadic ms | binary ms over a {batch_sources}-source batch):"
    );
    println!(
        "{}",
        ascii_table(
            &[
                "query", "m-fwd", "m-back", "m-auto", "m-pick", "b-fwd", "b-back", "b-bidi",
                "b-auto", "b-pick"
            ],
            &rows
        )
    );
    let probe = &planner.probe;
    println!(
        "rare-target direction probe ({} nodes, {} edges, {} from node 0): \
         forward {:.3} ms vs backward {:.3} ms = {:.2}x, bidi {:.3} ms, auto picked {}",
        probe.nodes,
        probe.edges,
        probe.query,
        PlannerResult::point(&probe.binary, Strategy::Forward) as f64 / 1e6,
        PlannerResult::point(&probe.binary, Strategy::Backward) as f64 / 1e6,
        probe.backward_speedup(),
        PlannerResult::point(&probe.binary, Strategy::Bidirectional) as f64 / 1e6,
        probe.binary_auto
    );
}

fn parse_list(value: &str, flag: &str) -> Vec<usize> {
    value
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .unwrap_or_else(|_| usage(&format!("{flag} needs comma-separated integers")))
        })
        .collect()
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: bench_eval [--nodes N[,N,...]] [--full] [--seed S] [--runs R] \
         [--sources K] [--par-threads T[,T,...]] [--intra-threads T[,T,...]] [--out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut seed = 42u64;
    let mut node_scales: Vec<usize> = vec![10_000];
    let mut runs = 9usize;
    let mut num_sources = 256usize;
    let mut par_threads: Vec<usize> = vec![2, 4];
    let mut intra_threads: Vec<usize> = vec![2, 4];
    let mut out_path = "BENCH_eval.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed needs an integer"));
            }
            "--nodes" => node_scales = parse_list(&value("--nodes"), "--nodes"),
            "--full" => node_scales = vec![10_000, 20_000, 30_000],
            "--runs" => {
                runs = value("--runs")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage("--runs needs an integer"))
                    .max(1);
            }
            "--sources" => {
                num_sources = value("--sources")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage("--sources needs an integer"))
                    .max(1);
            }
            "--par-threads" => par_threads = parse_list(&value("--par-threads"), "--par-threads"),
            "--intra-threads" => {
                intra_threads = parse_list(&value("--intra-threads"), "--intra-threads")
            }
            "--out" => out_path = value("--out"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if node_scales.is_empty() {
        usage("--nodes needs at least one scale");
    }
    eprintln!(
        "available cores: {} (parallel speedups need real cores)",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );

    let mut scales = Vec::new();
    for &nodes in &node_scales {
        eprintln!("generating scale-free graph: {nodes} nodes, seed {seed} ...");
        let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(nodes, seed));
        eprintln!(
            "graph ready: {} nodes, {} edges, {} labels",
            graph.num_nodes(),
            graph.num_edges(),
            graph.alphabet().len()
        );

        eprintln!("calibrating paper query mix (bio1-6, syn1-3) ...");
        let mut queries = bio_workload(&graph).queries;
        queries.extend(syn_workload(&graph).queries);

        let results: Vec<QueryResult> = queries
            .iter()
            .map(|q| {
                let r = bench_query(&graph, q, runs);
                eprintln!(
                    "  {:<5} {:>12} ns (new) {:>12} ns (seed)  {:>6.2}x",
                    r.name,
                    r.new_ns,
                    r.seed_ns,
                    r.speedup()
                );
                r
            })
            .collect();
        let geomean = geometric_mean(results.iter().map(QueryResult::speedup));

        // Multi-source batch: a seeded random source set over the
        // mid-selectivity synthetic query (syn2), the paper's "same
        // candidate from many sources" workload shape.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x736f_7572);
        let sources: Vec<NodeId> = (0..num_sources)
            .map(|_| rng.gen_range(0..graph.num_nodes() as NodeId))
            .collect();
        let syn2 = queries
            .iter()
            .find(|q| q.name == "syn2")
            .expect("syn2 in mix");
        eprintln!(
            "multi-source batch: {} sources of {} ...",
            sources.len(),
            syn2.name
        );
        let multi_source = bench_multi_source(&graph, syn2, &sources, &par_threads, runs);

        let dfas: Vec<Dfa> = queries.iter().map(|q| q.query.dfa().clone()).collect();
        eprintln!("multi-query batch: {} monadic queries ...", dfas.len());
        let multi_query = bench_multi_query(&graph, &dfas, &par_threads, runs);

        eprintln!(
            "intra-query: {} queries, plain/pruned/masked ablation + threads {:?} ...",
            queries.len(),
            intra_threads
        );
        let intra_query: Vec<IntraResult> = queries
            .iter()
            .map(|q| bench_intra_query(&graph, q, &intra_threads, runs))
            .collect();
        let prune_geomean = geometric_mean(intra_query.iter().map(IntraResult::masked_speedup));
        let legacy_prune_geomean =
            geometric_mean(intra_query.iter().map(IntraResult::legacy_prune_speedup));

        eprintln!(
            "task granularity: 2-state single-label probe, chunks off/1/4/auto x threads {:?} ...",
            intra_threads
        );
        let granularity = bench_granularity(&graph, &intra_threads, runs);

        let planner_sources: Vec<NodeId> = sources.iter().copied().take(8).collect();
        eprintln!(
            "planner ablation: {} queries x forced strategies, binary from {} sources ...",
            queries.len(),
            planner_sources.len()
        );
        let planner_queries: Vec<PlannerResult> = queries
            .iter()
            .map(|q| bench_planner_query(&graph, q, &planner_sources, runs))
            .collect();
        eprintln!("rare-target direction probe: {nodes} nodes ...");
        let probe = bench_direction_probe(nodes, runs);
        let planner = PlannerAblation {
            queries: planner_queries,
            probe,
        };

        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.template.clone(),
                    format!("{}", r.dfa_states),
                    format!("{:.4}", r.selectivity),
                    format!("{:.3}", r.new_ns as f64 / 1e6),
                    format!("{:.3}", r.seed_ns as f64 / 1e6),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect();
        println!("== scale: {nodes} nodes ==");
        println!(
            "{}",
            ascii_table(
                &["query", "template", "|Q|", "sel", "new ms", "seed ms", "speedup"],
                &rows
            )
        );
        println!(
            "geomean monadic speedup: {geomean:.2}x over {} queries",
            results.len()
        );
        print_batch(&multi_source);
        print_batch(&multi_query);
        print_intra(&intra_query, prune_geomean, legacy_prune_geomean);
        print_granularity(&granularity);
        print_planner(&planner, 8);

        scales.push(ScaleResult {
            nodes: graph.num_nodes(),
            edges: graph.num_edges(),
            labels: graph.alphabet().len(),
            queries: results,
            geomean,
            multi_source,
            multi_query,
            intra_query,
            prune_geomean,
            legacy_prune_geomean,
            granularity,
            planner,
        });
    }

    write_json(&out_path, seed, runs, &scales).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
