//! Regenerates **Table 1** of the paper: the biological queries, their
//! structural templates and their selectivities on the (simulated)
//! AliBaba graph.
//!
//! ```text
//! cargo run -p pathlearn-bench --release --bin table1_selectivity
//! ```

use pathlearn_bench::{bio_dataset, HarnessArgs};
use pathlearn_eval::report::{ascii_table, csv, fmt_pct, write_results_file};

fn main() {
    let args = HarnessArgs::parse();
    let dataset = bio_dataset(args.seed);
    let nodes = dataset.graph.num_nodes();

    println!(
        "Table 1 — biological queries on {} ({} nodes, {} edges, {} labels)\n",
        dataset.name,
        nodes,
        dataset.graph.num_edges(),
        dataset.graph.alphabet().len()
    );

    let mut rows = Vec::new();
    for q in &dataset.queries {
        rows.push(vec![
            q.name.clone(),
            q.template.clone(),
            fmt_pct(q.target_selectivity),
            fmt_pct(q.achieved_selectivity),
            format!(
                "{}",
                (q.achieved_selectivity * nodes as f64).round() as usize
            ),
            format!("{}", q.query.size()),
        ]);
    }
    let headers = [
        "query",
        "template",
        "paper selectivity",
        "measured selectivity",
        "selected nodes",
        "DFA size",
    ];
    println!("{}", ascii_table(&headers, &rows));

    let path =
        write_results_file("table1_selectivity.csv", &csv(&headers, &rows)).expect("write results");
    println!("CSV written to {}", path.display());
}
