//! Regenerates **Figure 12** of the paper: learning time (seconds) as a
//! function of the percentage of labeled nodes, for the biological
//! workload (12a) and the synthetic workloads (12b–d).
//!
//! ```text
//! cargo run -p pathlearn-bench --release --bin fig12_time -- bio
//! cargo run -p pathlearn-bench --release --bin fig12_time -- syn --full
//! ```

use pathlearn_bench::{datasets_for, goals, HarnessArgs};
use pathlearn_core::LearnerConfig;
use pathlearn_eval::report::{ascii_table, csv, fmt_pct, write_results_file};
use pathlearn_eval::static_exp::{run_static, StaticConfig};

fn main() {
    let args = HarnessArgs::parse();
    let fractions = vec![0.005, 0.01, 0.02, 0.03, 0.05, 0.07, 0.10, 0.12];
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for dataset in datasets_for(&args) {
        println!(
            "Figure 12 — learning time vs %labels on {} ({} nodes)\n",
            dataset.name,
            dataset.graph.num_nodes()
        );
        let mut headers: Vec<String> = vec!["% labeled".to_owned()];
        let goals = goals(&dataset);
        for (name, _) in &goals {
            headers.push(format!("{name} (s)"));
        }
        let mut columns: Vec<Vec<f64>> = Vec::new();
        for (name, goal) in &goals {
            let config = StaticConfig {
                fractions: fractions.clone(),
                trials: 3,
                seed: args.seed,
                learner: LearnerConfig::default(),
                threads: args.threads,
            };
            let points = run_static(&dataset.graph, goal, &config);
            for p in &points {
                csv_rows.push(vec![
                    dataset.name.clone(),
                    name.clone(),
                    format!("{:.4}", p.fraction),
                    format!("{:.6}", p.mean_time.as_secs_f64()),
                ]);
            }
            columns.push(points.iter().map(|p| p.mean_time.as_secs_f64()).collect());
        }
        let mut rows = Vec::new();
        for (i, &fraction) in fractions.iter().enumerate() {
            let mut row = vec![fmt_pct(fraction)];
            for column in &columns {
                row.push(format!("{:.4}", column[i]));
            }
            rows.push(row);
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        println!("{}", ascii_table(&header_refs, &rows));
    }

    let path = write_results_file(
        "fig12_time.csv",
        &csv(&["dataset", "query", "fraction", "mean_seconds"], &csv_rows),
    )
    .expect("write results");
    println!("CSV written to {}", path.display());
}
