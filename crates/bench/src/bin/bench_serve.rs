//! Serving-layer benchmark: throughput and hit rate of
//! `pathlearn-server` on a duplicate-heavy workload — the perf artifact
//! of the PR 5 serving subsystem, committed as `BENCH_serve.json`.
//!
//! Builds a scale-free graph (paper §5.1 configuration), calibrates the
//! full paper query mix (bio1–bio6 + syn1–syn3), and derives a
//! **duplicate-heavy workload**: every calibrated query in two
//! language-equal spellings (the canonical DFA and its completed twin —
//! structurally different, so only canonicalization can fold them),
//! the whole set repeated `--repeat` times and deterministically
//! shuffled. That workload is driven through a fresh
//! [`QueryService`] at each `--clients` count (evaluation pool sized to
//! match), timed wall-clock, and compared against evaluating every
//! submission directly with no cache.
//!
//! Before anything is timed, every unique query's served answer is
//! asserted **bit-identical** to `eval_monadic` — the CI smoke run turns
//! a divergence into a build failure. The detected core count lands in
//! the JSON: on a 1-core container the client-scaling numbers are
//! correctness demonstrations, not scaling (see BENCHMARKS.md); the
//! cache/coalescing wins are visible regardless because they remove
//! evaluations entirely.
//!
//! The **update mix** (`--writes W`, default 8; 0 disables) interleaves
//! the same reads with W single-label write events and drives them
//! through two services over identical graph versions: one patched
//! with `apply_delta` (label-aware invalidation), one calling
//! `rebuild_graph` on every write (the clear-everything baseline). The
//! run asserts the delta side's hit rate **strictly** exceeds the
//! rebuild baseline's and that every answer after the final write —
//! surviving cache entries included — is bit-identical to direct
//! evaluation on the final graph; results land in the `"update_mix"`
//! JSON section (schema v3).
//!
//! With `--listen ADDR` the harness additionally binds the hardened TCP
//! front door (`pathlearn-server::net`) on ADDR (`127.0.0.1:0` for an
//! ephemeral port), drives the same workload through real framed-TCP
//! client connections — text submissions establish each query's
//! canonical fingerprint, repeats replay by fingerprint — asserts
//! bit-identity end to end, fires zero-deadline probes, and lands the
//! front door's shed/deadline/malformed counters and p50/p99 service
//! latency in a `"net"` section of the JSON (schema v2).
//!
//! With `--restart` the harness times the three cold-start paths a
//! `serve --data-dir` deployment can take over identical graphs: parse
//! the text format from scratch, load the versioned binary snapshot,
//! and the full recovery (snapshot + replaying `--writes` WAL records
//! left by a simulated crash). Bit-identity of all three is asserted
//! before timing, and the run **gates** that the snapshot load is
//! strictly faster than the text parse; numbers land in the
//! `"restart"` JSON section (schema v4).
//!
//! The **instrumentation-overhead gate** (always on, schema v5) drives
//! the identical eval-heavy workload through two services — per-level
//! eval sampling off and on — asserts the answers bit-identical, and
//! **gates** the observed on-path cost at ≤ 2% (best-of-runs on both
//! sides, interleaved so machine drift hits them equally); numbers land
//! in the `"telemetry"` JSON section. In `--listen` mode the harness
//! also binds the text admin surface and probes `/metrics` and
//! `/healthz` **mid-traffic**, asserting a non-empty parseable
//! exposition and a `serving` health phase while the fleet replays.
//!
//! ```text
//! bench_serve [--nodes N] [--seed S] [--repeat R] [--runs K]
//!             [--clients T[,T,...]] [--cache-mb M] [--writes W]
//!             [--out PATH] [--listen ADDR] [--restart]
//! ```

use pathlearn_automata::{BitSet, Dfa, Symbol};
use pathlearn_datagen::scale_free::{scale_free_graph, ScaleFreeConfig};
use pathlearn_datagen::workloads::{bio_workload, syn_workload};
use pathlearn_eval::report::ascii_table;
use pathlearn_graph::eval::{eval_monadic_with, EvalScratch};
use pathlearn_graph::io::{parse_graph, write_graph};
use pathlearn_graph::GraphDb;
use pathlearn_server::wal::{Persistence, SNAPSHOT_FILE};
use pathlearn_server::{
    AdminServer, CacheConfig, Client, NetConfig, QueryService, Response, ServeConfig, Server,
    NO_DEADLINE_MS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read as _, Write as _};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct ClientPoint {
    clients: usize,
    wall_ns: u128,
    hits: u64,
    misses: u64,
    coalesced: u64,
    hit_rate: f64,
    eval_ns_total: u64,
}

/// One TCP client-mode measurement: wall time plus the front door's
/// counters after the run (the schema-v2 `"net"` JSON section), and —
/// since schema v5 — what the mid-traffic admin probes saw.
struct NetPoint {
    clients: usize,
    wall_ns: u128,
    queries: u64,
    shed: u64,
    deadline_replies: u64,
    draining_replies: u64,
    malformed: u64,
    deadline_probes: usize,
    latency_p50_ns: u64,
    latency_p99_ns: u64,
    /// Sample lines in the `/metrics` exposition probed while the
    /// fleet was replaying (gated non-empty and parseable).
    admin_metrics_series: usize,
    /// `/healthz` phase probed mid-traffic (gated `serving`).
    admin_health: String,
}

/// Instrumentation-overhead measurement: the identical eval-heavy
/// workload with per-level sampling off vs on, gated bit-identical and
/// ≤ 2% on-path cost. The schema-v5 `"telemetry"` JSON section.
struct TelemetryPoint {
    observer_off_ns: u128,
    observer_on_ns: u128,
    overhead_pct: f64,
    level_samples: u64,
    slow_traces: usize,
}

/// One update-mix measurement: the same read/write schedule driven
/// through `apply_delta` (label-aware invalidation) and through
/// `rebuild_graph` (the clear-everything baseline), with the delta
/// side's surviving entries asserted bit-identical to direct
/// evaluation on the final graph. The schema-v3 `"update_mix"` JSON
/// section.
struct UpdatePoint {
    writes: usize,
    delta_wall_ns: u128,
    rebuild_wall_ns: u128,
    delta_hits: u64,
    delta_misses: u64,
    delta_hit_rate: f64,
    rebuild_hits: u64,
    rebuild_misses: u64,
    rebuild_hit_rate: f64,
    label_invalidations: u64,
    compactions: u64,
}

/// One cold-restart measurement: the same graph reloaded three ways —
/// text parse, snapshot load, and full recovery (snapshot + WAL
/// replay). The schema-v4 `"restart"` JSON section.
struct RestartPoint {
    wal_records: usize,
    text_bytes: usize,
    snapshot_bytes: usize,
    text_parse_ns: u128,
    snapshot_load_ns: u128,
    recover_ns: u128,
}

type Edge = (u32, Symbol, u32);

/// The graph as a sorted list of named edges — the identity the text
/// format preserves (it assigns node ids by order of appearance, so
/// round-trips are name-stable, not id-stable).
fn named_edges(graph: &GraphDb) -> Vec<(String, String, String)> {
    let mut edges: Vec<_> = graph
        .edges()
        .map(|(src, sym, dst)| {
            (
                graph.node_name(src).to_owned(),
                graph.alphabet().name(sym).to_owned(),
                graph.node_name(dst).to_owned(),
            )
        })
        .collect();
    edges.sort();
    edges
}

/// Times the three cold-start paths of a `serve --data-dir` deployment
/// over identical graphs: parsing the text format, loading the binary
/// snapshot, and recovering from a data dir whose WAL holds `writes`
/// acknowledged-but-not-checkpointed delta batches (the stale-snapshot
/// shape a crash leaves behind). Every path is asserted bit-identical
/// before anything is timed, and the snapshot load is **gated**
/// strictly faster than the text parse — the format earns its place or
/// the build fails.
fn restart_point(graph: &GraphDb, writes: usize, seed: u64, runs: usize) -> RestartPoint {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7273_7274); // "rsrt"
    let dir = std::env::temp_dir().join(format!("pathlearn-bench-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Seed the data dir, then append `writes` single-label delta
    // batches to the WAL with the checkpoint threshold out of reach —
    // recovery must replay them all.
    let seeded =
        Persistence::recover(&dir, usize::MAX, || Ok(graph.clone())).expect("seed restart dir");
    let mut persistence = seeded.persistence;
    let mut current = seeded.graph;
    for _ in 0..writes {
        let sym = Symbol::from_index(rng.gen_range(0..graph.alphabet().len()));
        let labeled: Vec<Edge> = current.edges().filter(|&(_, s, _)| s == sym).collect();
        let mut remove = Vec::new();
        for _ in 0..2usize {
            if !labeled.is_empty() {
                remove.push(labeled[rng.gen_range(0..labeled.len())]);
            }
        }
        let n = current.num_nodes() as u32;
        let add: Vec<Edge> = (0..2)
            .map(|_| (rng.gen_range(0..n), sym, rng.gen_range(0..n)))
            .collect();
        persistence
            .log_batch(&add, &remove)
            .expect("log restart batch");
        current = current
            .with_delta(&add, &remove)
            .expect("in-range restart delta");
    }
    let expected_bytes = current.compact().snapshot_bytes();
    drop(persistence);

    // Identical-graph gates before timing anything. The text format
    // assigns node ids by order of appearance, so its round-trip is
    // compared as a named edge set; the snapshot paths, which preserve
    // ids exactly, are held to bit-identity.
    let text = write_graph(graph).expect("render graph text");
    let graph_bytes = graph.snapshot_bytes();
    let reparsed = parse_graph(&text).expect("text round-trip");
    assert_eq!(
        reparsed.num_nodes(),
        graph.num_nodes(),
        "text round-trip must keep every node"
    );
    assert_eq!(
        named_edges(&reparsed),
        named_edges(graph),
        "text round-trip must reproduce the named edge set"
    );
    let snap_path = dir.join(SNAPSHOT_FILE);
    assert_eq!(
        GraphDb::load_snapshot(&snap_path)
            .expect("snapshot load")
            .snapshot_bytes(),
        graph_bytes,
        "snapshot load must reproduce the graph bit-identically"
    );

    let mut text_parse_ns = u128::MAX;
    let mut snapshot_load_ns = u128::MAX;
    let mut recover_ns = u128::MAX;
    for _ in 0..runs {
        let started = Instant::now();
        std::hint::black_box(parse_graph(&text).expect("timed text parse"));
        text_parse_ns = text_parse_ns.min(started.elapsed().as_nanos());

        let started = Instant::now();
        std::hint::black_box(GraphDb::load_snapshot(&snap_path).expect("timed snapshot load"));
        snapshot_load_ns = snapshot_load_ns.min(started.elapsed().as_nanos());

        let started = Instant::now();
        let recovered = Persistence::recover(&dir, usize::MAX, || {
            Err("timed recovery must come from disk".into())
        })
        .expect("timed recovery");
        recover_ns = recover_ns.min(started.elapsed().as_nanos());
        assert_eq!(
            recovered.graph.snapshot_bytes(),
            expected_bytes,
            "recovery must reproduce the acknowledged graph bit-identically"
        );
    }
    assert!(
        snapshot_load_ns < text_parse_ns,
        "snapshot load ({snapshot_load_ns} ns) must be strictly faster than \
         text parse ({text_parse_ns} ns) — the binary format earns its place"
    );

    let snapshot_bytes = std::fs::metadata(&snap_path).map_or(0, |m| m.len() as usize);
    let _ = std::fs::remove_dir_all(&dir);
    RestartPoint {
        wal_records: writes,
        text_bytes: text.len(),
        snapshot_bytes,
        text_parse_ns,
        snapshot_load_ns,
        recover_ns,
    }
}

/// Drives a read/write mix through two services over the same graph —
/// one patched in place with [`QueryService::apply_delta`], one
/// rebuilt from scratch on every write — and gates that label-aware
/// invalidation **strictly** beats nuking the cache: same reads, same
/// graph versions, higher hit rate, zero stale bits.
///
/// Each write event touches a single random label (removes up to two
/// of its edges, adds two random ones), the shape an update stream has
/// in practice and the one the per-label epoch design exists for:
/// queries whose live alphabet misses the touched label keep serving
/// as hits on the delta side, while the rebuild side re-misses its
/// whole working set.
fn update_mix_point(
    graph: &GraphDb,
    spellings: &[(String, Vec<Dfa>)],
    submissions: &[&Dfa],
    writes: usize,
    seed: u64,
    cache_mb: usize,
) -> UpdatePoint {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6465_6c74); // "delt"

    // Pre-generate the write events and the graph version after each,
    // so both services see the identical sequence of graphs.
    let mut current = graph.clone();
    let mut events: Vec<(Vec<Edge>, Vec<Edge>)> = Vec::new();
    let mut versions: Vec<GraphDb> = Vec::new();
    for _ in 0..writes {
        let sym = Symbol::from_index(rng.gen_range(0..graph.alphabet().len()));
        let labeled: Vec<Edge> = current.edges().filter(|&(_, s, _)| s == sym).collect();
        let mut remove = Vec::new();
        for _ in 0..2usize {
            if !labeled.is_empty() {
                remove.push(labeled[rng.gen_range(0..labeled.len())]);
            }
        }
        let n = current.num_nodes() as u32;
        let add: Vec<Edge> = (0..2)
            .map(|_| (rng.gen_range(0..n), sym, rng.gen_range(0..n)))
            .collect();
        current = current
            .with_delta(&add, &remove)
            .expect("in-range update-mix delta")
            .compact();
        versions.push(current.clone());
        events.push((add, remove));
    }

    let config = || ServeConfig {
        threads: 1,
        cache: CacheConfig {
            capacity_bytes: cache_mb << 20,
        },
        ..ServeConfig::default()
    };
    // One write after each read block; any leftover events (more writes
    // than blocks) land at the end so both sides still finish on the
    // same final graph version.
    let chunk = submissions.len().div_ceil(writes + 1).max(1);

    let delta_service = QueryService::new(graph.clone(), config());
    let mut applied = 0usize;
    let delta_started = Instant::now();
    for block in submissions.chunks(chunk) {
        for dfa in block {
            delta_service.query_monadic(dfa);
        }
        if applied < events.len() {
            let (add, remove) = &events[applied];
            delta_service
                .apply_delta(add, remove)
                .expect("update-mix apply_delta");
            applied += 1;
        }
    }
    while applied < events.len() {
        let (add, remove) = &events[applied];
        delta_service
            .apply_delta(add, remove)
            .expect("update-mix apply_delta");
        applied += 1;
    }
    let delta_wall_ns = delta_started.elapsed().as_nanos();
    let delta_stats = delta_service.stats();

    let rebuild_service = QueryService::new(graph.clone(), config());
    let mut applied = 0usize;
    let rebuild_started = Instant::now();
    for block in submissions.chunks(chunk) {
        for dfa in block {
            rebuild_service.query_monadic(dfa);
        }
        if applied < versions.len() {
            rebuild_service.rebuild_graph(versions[applied].clone());
            applied += 1;
        }
    }
    while applied < versions.len() {
        rebuild_service.rebuild_graph(versions[applied].clone());
        applied += 1;
    }
    let rebuild_wall_ns = rebuild_started.elapsed().as_nanos();
    let rebuild_stats = rebuild_service.stats();

    // Stale-bit gate (after the stats snapshot, so these lookups don't
    // skew the rates): every query served now — including entries that
    // survived every delta untouched — must match direct evaluation on
    // the final graph version. Both sides.
    let mut scratch = EvalScratch::new();
    for (name, v) in spellings {
        let expected = eval_monadic_with(&mut scratch, &v[0], &current);
        assert_eq!(
            *delta_service.query_monadic(&v[0]).result,
            expected,
            "{name}: stale bits on the delta side after {writes} writes"
        );
        assert_eq!(
            *rebuild_service.query_monadic(&v[0]).result,
            expected,
            "{name}: rebuild side diverged after {writes} writes"
        );
    }

    let point = UpdatePoint {
        writes,
        delta_wall_ns,
        rebuild_wall_ns,
        delta_hits: delta_stats.hits,
        delta_misses: delta_stats.misses,
        delta_hit_rate: delta_stats.hit_rate(),
        rebuild_hits: rebuild_stats.hits,
        rebuild_misses: rebuild_stats.misses,
        rebuild_hit_rate: rebuild_stats.hit_rate(),
        label_invalidations: delta_stats.label_invalidations,
        compactions: delta_stats.compactions,
    };
    assert_eq!(
        delta_stats.deltas_applied, writes as u64,
        "every write event applied as a delta"
    );
    assert!(
        point.delta_hit_rate > point.rebuild_hit_rate,
        "label-aware invalidation must strictly beat clear-everything: \
         delta {:.4} vs rebuild {:.4} over {} writes",
        point.delta_hit_rate,
        point.rebuild_hit_rate,
        writes
    );
    point
}

/// Minimal HTTP/1.0 GET against the admin surface: status code + body.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect admin surface");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("admin read timeout");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send admin request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read admin reply");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("admin reply has no status line: {raw:?}")));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Gates the exposition the mid-traffic probe captured: non-empty,
/// every line either a well-formed `# TYPE` comment or a `name value`
/// sample with an integer value. Returns the sample-line count.
fn gate_exposition(exposition: &str) -> usize {
    assert!(
        !exposition.is_empty(),
        "mid-traffic /metrics exposition must not be empty"
    );
    let mut samples = 0usize;
    for line in exposition.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let kind = rest.split_whitespace().nth(1).unwrap_or("");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE kind in exposition line {line:?}"
            );
            continue;
        }
        let value = line
            .rsplit_once(' ')
            .unwrap_or_else(|| usage(&format!("exposition line {line:?} is not `name value`")))
            .1;
        assert!(
            value.parse::<u64>().is_ok(),
            "exposition value {value:?} in {line:?} is not an integer"
        );
        samples += 1;
    }
    assert!(samples > 0, "exposition carries no samples");
    samples
}

/// The instrumentation-overhead gate: every unique canonical query
/// (first spelling only — all cache misses, so evaluation dominates)
/// through a sampling-off service and a sampling-on one, interleaved
/// over `runs` rounds with best-of-runs on both sides. Answers are
/// asserted bit-identical to direct evaluation on both sides and the
/// on-path cost is gated at ≤ 2% — the budget the observer hook
/// promises ("a single thread-local check per level when disabled,
/// two clock reads when enabled").
fn telemetry_point(
    graph: &GraphDb,
    spellings: &[(String, Vec<Dfa>)],
    direct: &[BitSet],
    runs: usize,
    cache_mb: usize,
) -> TelemetryPoint {
    let config = |observe: bool| ServeConfig {
        threads: 1,
        cache: CacheConfig {
            capacity_bytes: cache_mb << 20,
        },
        observe_eval_levels: observe,
        // Capture every trace so the slow-log plumbing is exercised.
        slow_query_threshold: Duration::ZERO,
        ..ServeConfig::default()
    };
    let mut observer_off_ns = u128::MAX;
    let mut observer_on_ns = u128::MAX;
    let mut level_samples = 0u64;
    let mut slow_traces = 0usize;
    for _ in 0..runs.max(3) {
        let off = QueryService::new(graph.clone(), config(false));
        let started = Instant::now();
        for (_, v) in spellings {
            std::hint::black_box(off.query_monadic(&v[0]));
        }
        observer_off_ns = observer_off_ns.min(started.elapsed().as_nanos());

        let on = QueryService::new(graph.clone(), config(true));
        let started = Instant::now();
        for (_, v) in spellings {
            std::hint::black_box(on.query_monadic(&v[0]));
        }
        observer_on_ns = observer_on_ns.min(started.elapsed().as_nanos());

        for ((name, v), expected) in spellings.iter().zip(direct) {
            assert_eq!(
                *off.query_monadic(&v[0]).result,
                *expected,
                "{name}: observer-off result differs from direct eval"
            );
            assert_eq!(
                *on.query_monadic(&v[0]).result,
                *expected,
                "{name}: observer-on result differs from direct eval"
            );
        }
        let snapshot = on.telemetry().registry.snapshot();
        level_samples = snapshot
            .iter()
            .find(|(name, _)| name == "eval.level_count")
            .map_or(0, |(_, value)| *value);
        slow_traces = on.telemetry().traces.slow().len();
    }
    assert!(
        level_samples > 0,
        "the sampling-on side must record per-level samples"
    );
    assert!(slow_traces > 0, "a zero threshold must capture slow traces");
    let overhead_pct = (observer_on_ns as f64 / observer_off_ns.max(1) as f64 - 1.0) * 100.0;
    assert!(
        observer_on_ns as f64 <= observer_off_ns as f64 * 1.02,
        "per-level sampling costs {overhead_pct:.2}% on the eval path \
         (off {observer_off_ns} ns vs on {observer_on_ns} ns) — over the 2% budget"
    );
    TelemetryPoint {
        observer_off_ns,
        observer_on_ns,
        overhead_pct,
        level_samples,
        slow_traces,
    }
}

/// Deterministic Fisher–Yates over the submission indices.
fn shuffled_workload(unique: usize, variants: usize, repeat: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..unique * variants * repeat)
        .map(|i| i % (unique * variants))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7365_7276); // "serv"
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    order
}

/// Drives the whole workload through `service` from `clients` threads
/// claiming submissions off one atomic cursor; returns the wall time.
fn drive(service: &Arc<QueryService>, submissions: &[&Dfa], clients: usize) -> u128 {
    let cursor = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let service = service.clone();
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= submissions.len() {
                    return;
                }
                service.query_monadic(submissions[i]);
            });
        }
    });
    started.elapsed().as_nanos()
}

/// Binds the TCP front door on `addr` and drives the workload through
/// real framed connections: each unique query is established once by
/// text (asserting bit-identity against `direct`), then `clients`
/// threads replay the shuffled submission order by fingerprint.
/// Finishes with zero-deadline probes so the deadline counters are
/// exercised, then snapshots the front door's counters.
#[allow(clippy::too_many_arguments)]
fn tcp_client_point(
    graph: &GraphDb,
    texts: &[String],
    direct: &[BitSet],
    order: &[usize],
    variants: usize,
    addr: &str,
    clients: usize,
    cache_mb: usize,
) -> NetPoint {
    let service = QueryService::new(
        graph.clone(),
        ServeConfig {
            threads: clients,
            cache: CacheConfig {
                capacity_bytes: cache_mb << 20,
            },
            ..ServeConfig::default()
        },
    );
    let mut server = Server::bind(service, addr, NetConfig::default())
        .unwrap_or_else(|e| usage(&format!("cannot listen on {addr}: {e}")));
    let server_addr = server.local_addr();
    // The text admin surface rides along on an ephemeral port; the
    // probes below hit it while the fleet is replaying.
    let admin = AdminServer::bind("127.0.0.1:0").expect("bind admin surface");
    admin.set_sources(server.admin_sources());
    let admin_addr = admin.local_addr();
    eprintln!(
        "tcp client mode: front door on {server_addr}, admin on {admin_addr}, \
         {clients} client connection(s)"
    );

    // Establish every unique query by text once; the RESULT frame's
    // bits must match direct evaluation and its fingerprint becomes the
    // replay handle.
    let mut setup = Client::connect(server_addr).expect("connect setup client");
    let fingerprints: Vec<u64> = texts
        .iter()
        .zip(direct)
        .map(
            |(text, expected)| match setup.query_text(text, NO_DEADLINE_MS).expect("text query") {
                Response::Result {
                    bits, fingerprint, ..
                } => {
                    assert_eq!(
                        &bits, expected,
                        "TCP-served result differs from direct eval ({text})"
                    );
                    fingerprint
                }
                other => panic!("establishing {text} got {other:?}"),
            },
        )
        .collect();

    // The timed fleet: each client owns one connection and replays
    // fingerprints off the shared cursor. An extra probe thread hits
    // the admin surface while the fleet is mid-replay.
    let cursor = AtomicUsize::new(0);
    let started = Instant::now();
    let (metrics_probe, health_probe) = std::thread::scope(|scope| {
        for _ in 0..clients {
            let cursor = &cursor;
            let fingerprints = &fingerprints;
            scope.spawn(move || {
                let mut client = Client::connect(server_addr).expect("connect fleet client");
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= order.len() {
                        return;
                    }
                    // Both spellings of a query share one canonical
                    // fingerprint; replay by unique-query index.
                    let fingerprint = fingerprints[order[i] / variants];
                    match client
                        .query_fingerprint(fingerprint, NO_DEADLINE_MS)
                        .expect("fingerprint query")
                    {
                        Response::Result { .. } => {}
                        other => panic!("fingerprint replay got {other:?}"),
                    }
                }
            });
        }
        let probe = scope.spawn(move || {
            // Give the fleet a moment to be genuinely in flight.
            std::thread::sleep(Duration::from_millis(2));
            (
                http_get(admin_addr, "/metrics"),
                http_get(admin_addr, "/healthz"),
            )
        });
        probe.join().expect("admin probe thread")
    });
    let wall_ns = started.elapsed().as_nanos();

    let (metrics_status, exposition) = metrics_probe;
    assert_eq!(metrics_status, 200, "mid-traffic /metrics must answer 200");
    let admin_metrics_series = gate_exposition(&exposition);
    let (health_status, health_body) = health_probe;
    assert_eq!(
        health_status, 200,
        "mid-traffic /healthz must be serving: {health_body}"
    );
    let admin_health = health_body.lines().next().unwrap_or("").to_owned();
    assert_eq!(admin_health, "serving", "health phase mid-traffic");

    // Deadline probes: an already-expired budget must answer DEADLINE
    // before touching the pool.
    let deadline_probes = 8usize;
    for i in 0..deadline_probes {
        match setup
            .query_fingerprint(fingerprints[i % fingerprints.len()], 0)
            .expect("deadline probe")
        {
            Response::Deadline { .. } => {}
            other => panic!("0ms budget got {other:?}"),
        }
    }

    let counters = setup.stats().expect("STATS frame");
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| usage(&format!("counter {name} missing from STATS")))
    };
    let point = NetPoint {
        clients,
        wall_ns,
        queries: get("net.queries"),
        shed: get("net.shed"),
        deadline_replies: get("net.deadline_replies"),
        draining_replies: get("net.draining_replies"),
        malformed: get("net.malformed"),
        deadline_probes,
        latency_p50_ns: get("net.latency_p50_ns"),
        latency_p99_ns: get("net.latency_p99_ns"),
        admin_metrics_series,
        admin_health,
    };
    assert_eq!(
        point.deadline_replies, deadline_probes as u64,
        "every probe and only the probes hit the deadline path"
    );
    assert_eq!(point.malformed, 0, "the bench fleet is well-behaved");
    drop(setup);
    server.shutdown();
    point
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: bench_serve [--nodes N] [--seed S] [--repeat R] [--runs K] \
         [--clients T[,T,...]] [--cache-mb M] [--writes W] [--out PATH] \
         [--listen ADDR] [--restart]"
    );
    std::process::exit(2);
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    seed: u64,
    runs: usize,
    repeat: usize,
    graph: &GraphDb,
    unique: usize,
    variants: usize,
    submissions: usize,
    direct_ns: u128,
    points: &[ClientPoint],
    net: Option<&NetPoint>,
    update: Option<&UpdatePoint>,
    restart: Option<&RestartPoint>,
    telemetry: &TelemetryPoint,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"benchmark\": \"RPQ serving layer: canonical result cache + coalescing over duplicate-heavy paper mix\",\n",
    );
    out.push_str(
        "  \"note\": \"client scaling needs real cores (see BENCHMARKS.md); cache/coalescing wins hold regardless — they remove evaluations\",\n",
    );
    out.push_str("  \"schema_version\": 5,\n");
    out.push_str(&format!(
        "  \"hardware\": {{\"available_cores\": {}}},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"runs_per_point\": {runs},\n"));
    out.push_str(
        "  \"timer\": \"median wall clock over runs, fresh (cold-cache) service per run\",\n",
    );
    out.push_str(&format!(
        "  \"graph\": {{\"generator\": \"scale_free paper_synthetic\", \"nodes\": {}, \"edges\": {}, \"labels\": {}}},\n",
        graph.num_nodes(),
        graph.num_edges(),
        graph.alphabet().len()
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"unique_queries\": {unique}, \"spellings_per_query\": {variants}, \"repeat\": {repeat}, \"submissions\": {submissions}}},\n",
    ));
    out.push_str(&format!("  \"direct_no_cache_seq_ns\": {direct_ns},\n"));
    out.push_str("  \"clients\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"pool_threads\": {}, \"wall_ns\": {}, \"qps\": {:.1}, \"hits\": {}, \"misses\": {}, \"coalesced\": {}, \"hit_rate\": {:.4}, \"eval_ns_total\": {}, \"speedup_vs_direct\": {:.3}}}{}\n",
            p.clients,
            p.clients,
            p.wall_ns,
            submissions as f64 / (p.wall_ns as f64 / 1e9).max(1e-9),
            p.hits,
            p.misses,
            p.coalesced,
            p.hit_rate,
            p.eval_ns_total,
            direct_ns.max(1) as f64 / p.wall_ns.max(1) as f64,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    match restart {
        Some(p) => out.push_str(&format!(
            "  \"restart\": {{\"wal_records\": {}, \"text_bytes\": {}, \"snapshot_bytes\": {}, \"text_parse_ns\": {}, \"snapshot_load_ns\": {}, \"recover_ns\": {}, \"snapshot_speedup_vs_text\": {:.3}}},\n",
            p.wal_records,
            p.text_bytes,
            p.snapshot_bytes,
            p.text_parse_ns,
            p.snapshot_load_ns,
            p.recover_ns,
            p.text_parse_ns.max(1) as f64 / p.snapshot_load_ns.max(1) as f64,
        )),
        None => out.push_str("  \"restart\": null,\n"),
    }
    match update {
        Some(p) => out.push_str(&format!(
            "  \"update_mix\": {{\"writes\": {}, \"delta\": {{\"wall_ns\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \"label_invalidations\": {}, \"compactions\": {}}}, \"rebuild_baseline\": {{\"wall_ns\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}}}},\n",
            p.writes,
            p.delta_wall_ns,
            p.delta_hits,
            p.delta_misses,
            p.delta_hit_rate,
            p.label_invalidations,
            p.compactions,
            p.rebuild_wall_ns,
            p.rebuild_hits,
            p.rebuild_misses,
            p.rebuild_hit_rate,
        )),
        None => out.push_str("  \"update_mix\": null,\n"),
    }
    out.push_str(&format!(
        "  \"telemetry\": {{\"observer_off_ns\": {}, \"observer_on_ns\": {}, \"overhead_pct\": {:.3}, \"overhead_budget_pct\": 2.0, \"level_samples\": {}, \"slow_traces\": {}}},\n",
        telemetry.observer_off_ns,
        telemetry.observer_on_ns,
        telemetry.overhead_pct,
        telemetry.level_samples,
        telemetry.slow_traces,
    ));
    match net {
        Some(p) => out.push_str(&format!(
            "  \"net\": {{\"mode\": \"tcp_client\", \"clients\": {}, \"wall_ns\": {}, \"qps\": {:.1}, \"queries\": {}, \"shed\": {}, \"deadline_replies\": {}, \"deadline_probes\": {}, \"draining_replies\": {}, \"malformed\": {}, \"latency_p50_ns\": {}, \"latency_p99_ns\": {}, \"admin\": {{\"metrics_series\": {}, \"healthz\": \"{}\"}}}}\n",
            p.clients,
            p.wall_ns,
            submissions as f64 / (p.wall_ns as f64 / 1e9).max(1e-9),
            p.queries,
            p.shed,
            p.deadline_replies,
            p.deadline_probes,
            p.draining_replies,
            p.malformed,
            p.latency_p50_ns,
            p.latency_p99_ns,
            p.admin_metrics_series,
            p.admin_health,
        )),
        None => out.push_str("  \"net\": null\n"),
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let mut nodes = 10_000usize;
    let mut seed = 42u64;
    let mut repeat = 8usize;
    let mut runs = 5usize;
    let mut clients: Vec<usize> = vec![1, 2, 4];
    let mut cache_mb = 64usize;
    let mut writes = 8usize;
    let mut out_path = "BENCH_serve.json".to_owned();
    let mut listen: Option<String> = None;
    let mut restart = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--nodes" => {
                nodes = value("--nodes")
                    .parse()
                    .unwrap_or_else(|_| usage("--nodes needs an integer"))
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed needs an integer"))
            }
            "--repeat" => {
                repeat = value("--repeat")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage("--repeat needs an integer"))
                    .max(1)
            }
            "--runs" => {
                runs = value("--runs")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage("--runs needs an integer"))
                    .max(1)
            }
            "--clients" => {
                clients = value("--clients")
                    .split(',')
                    .map(|part| {
                        part.trim()
                            .parse()
                            .unwrap_or_else(|_| usage("--clients needs comma-separated integers"))
                    })
                    .collect()
            }
            "--cache-mb" => {
                cache_mb = value("--cache-mb")
                    .parse()
                    .unwrap_or_else(|_| usage("--cache-mb needs an integer"))
            }
            "--writes" => {
                writes = value("--writes")
                    .parse()
                    .unwrap_or_else(|_| usage("--writes needs an integer"))
            }
            "--out" => out_path = value("--out"),
            "--listen" => listen = Some(value("--listen")),
            "--restart" => restart = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }

    eprintln!(
        "available cores: {} (client scaling needs real cores)",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    eprintln!("generating scale-free graph: {nodes} nodes, seed {seed} ...");
    let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(nodes, seed));
    eprintln!("calibrating paper query mix (bio1-6, syn1-3) ...");
    let mut queries = bio_workload(&graph).queries;
    queries.extend(syn_workload(&graph).queries);

    // Two language-equal spellings per query: the canonical DFA and its
    // completed twin (extra sink state — same language, different
    // structure, foldable only by canonicalization).
    let spellings: Vec<(String, Vec<Dfa>)> = queries
        .iter()
        .map(|q| {
            let dfa = q.query.dfa().clone();
            let completed = dfa.complete().0;
            (q.name.clone(), vec![dfa, completed])
        })
        .collect();
    let unique = spellings.len();
    let variants = 2usize;
    let flat: Vec<&Dfa> = spellings.iter().flat_map(|(_, v)| v.iter()).collect();
    let order = shuffled_workload(unique, variants, repeat, seed);
    let submissions: Vec<&Dfa> = order.iter().map(|&i| flat[i]).collect();
    eprintln!(
        "workload: {} unique queries x {variants} spellings x {repeat} = {} submissions",
        unique,
        submissions.len()
    );

    // Bit-identity gate before any timing: served == direct for every
    // unique query, through a throwaway service.
    let mut scratch = EvalScratch::new();
    let direct: Vec<BitSet> = spellings
        .iter()
        .map(|(_, v)| eval_monadic_with(&mut scratch, &v[0], &graph))
        .collect();
    {
        let gate = QueryService::new(graph.clone(), ServeConfig::default());
        for ((name, v), expected) in spellings.iter().zip(&direct) {
            for dfa in v {
                assert_eq!(
                    *gate.query_monadic(dfa).result,
                    *expected,
                    "{name}: served result differs from direct eval"
                );
            }
        }
    }
    eprintln!("bit-identity gate passed ({unique} queries x {variants} spellings)");

    // Baseline: every submission evaluated directly, no cache, one thread.
    let direct_ns = {
        let mut best = u128::MAX;
        for _ in 0..runs {
            let started = Instant::now();
            for dfa in &submissions {
                std::hint::black_box(eval_monadic_with(&mut scratch, dfa, &graph));
            }
            best = best.min(started.elapsed().as_nanos());
        }
        best
    };

    let mut points = Vec::new();
    for &client_count in &clients {
        // Fresh (cold) service per run so every run pays the same
        // misses; median wall over runs.
        let mut walls = Vec::new();
        let mut last_stats = None;
        for _ in 0..runs {
            let service = Arc::new(QueryService::new(
                graph.clone(),
                ServeConfig {
                    threads: client_count,
                    cache: CacheConfig {
                        capacity_bytes: cache_mb << 20,
                    },
                    ..ServeConfig::default()
                },
            ));
            walls.push(drive(&service, &submissions, client_count));
            last_stats = Some(service.stats());
        }
        walls.sort_unstable();
        let wall_ns = walls[walls.len() / 2];
        let stats = last_stats.expect("at least one run");
        assert!(
            stats.hit_rate() > 0.0,
            "duplicate-heavy workload must produce cache hits"
        );
        assert_eq!(
            stats.reused() + stats.misses,
            submissions.len() as u64,
            "every submission accounted"
        );
        points.push(ClientPoint {
            clients: client_count,
            wall_ns,
            hits: stats.hits,
            misses: stats.misses,
            coalesced: stats.coalesced,
            hit_rate: stats.hit_rate(),
            eval_ns_total: stats.eval_ns_total,
        });
    }

    // Update mix: the same reads interleaved with single-label write
    // events, `apply_delta` vs the rebuild-everything baseline. The
    // point constructor gates hit_rate(delta) > hit_rate(rebuild) and
    // zero stale bits, so the CI smoke run fails on a regression.
    let update_point = (writes > 0).then(|| {
        let point = update_mix_point(&graph, &spellings, &submissions, writes, seed, cache_mb);
        println!(
            "update mix ({} writes): delta hit rate {:.1}% ({} hits / {} misses, {} invalidated, {} compactions) \
             vs rebuild baseline {:.1}% ({} hits / {} misses)",
            point.writes,
            100.0 * point.delta_hit_rate,
            point.delta_hits,
            point.delta_misses,
            point.label_invalidations,
            point.compactions,
            100.0 * point.rebuild_hit_rate,
            point.rebuild_hits,
            point.rebuild_misses,
        );
        point
    });

    // Cold-restart timing: text parse vs snapshot load vs snapshot +
    // WAL replay, bit-identity asserted, snapshot gated strictly
    // faster than text.
    let restart_result = restart.then(|| {
        let p = restart_point(&graph, writes, seed, runs);
        println!(
            "restart: text parse {:.3} ms vs snapshot load {:.3} ms ({:.2}x) \
             vs recover with {} WAL record(s) {:.3} ms",
            p.text_parse_ns as f64 / 1e6,
            p.snapshot_load_ns as f64 / 1e6,
            p.text_parse_ns.max(1) as f64 / p.snapshot_load_ns.max(1) as f64,
            p.wal_records,
            p.recover_ns as f64 / 1e6,
        );
        p
    });

    // Instrumentation-overhead gate: per-level sampling off vs on over
    // the identical eval-heavy workload, bit-identical and ≤ 2% or the
    // run fails.
    let telemetry = telemetry_point(&graph, &spellings, &direct, runs, cache_mb);
    println!(
        "telemetry: per-level sampling overhead {:.2}% (off {:.3} ms, on {:.3} ms), \
         {} level samples, {} slow traces",
        telemetry.overhead_pct,
        telemetry.observer_off_ns as f64 / 1e6,
        telemetry.observer_on_ns as f64 / 1e6,
        telemetry.level_samples,
        telemetry.slow_traces,
    );

    // TCP client mode: the same workload through the framed front
    // door, replayed by fingerprint; counters land in the JSON's "net"
    // section.
    let net_point = listen.as_deref().map(|addr| {
        let texts: Vec<String> = queries
            .iter()
            .map(|q| q.regex.display(graph.alphabet()).to_string())
            .collect();
        let fleet = clients.iter().copied().max().unwrap_or(1);
        tcp_client_point(
            &graph, &texts, &direct, &order, variants, addr, fleet, cache_mb,
        )
    });
    if let Some(p) = &net_point {
        println!(
            "tcp front door: {} submissions in {:.3} ms ({:.0} q/s over {} connection(s)); \
             shed {}, deadline {}, p50 {:.1} us, p99 {:.1} us",
            order.len(),
            p.wall_ns as f64 / 1e6,
            order.len() as f64 / (p.wall_ns as f64 / 1e9).max(1e-9),
            p.clients,
            p.shed,
            p.deadline_replies,
            p.latency_p50_ns as f64 / 1e3,
            p.latency_p99_ns as f64 / 1e3,
        );
    }

    let rows: Vec<Vec<String>> = std::iter::once(vec![
        "direct (no cache)".to_owned(),
        format!("{:.3}", direct_ns as f64 / 1e6),
        "-".to_owned(),
        "-".to_owned(),
        "1.00x".to_owned(),
    ])
    .chain(points.iter().map(|p| {
        vec![
            format!("{} client(s)", p.clients),
            format!("{:.3}", p.wall_ns as f64 / 1e6),
            format!("{}/{}/{}", p.hits, p.misses, p.coalesced),
            format!("{:.1}%", 100.0 * p.hit_rate),
            format!("{:.2}x", direct_ns.max(1) as f64 / p.wall_ns.max(1) as f64),
        ]
    }))
    .collect();
    println!(
        "serving {} submissions ({} unique x {} spellings x {repeat}):",
        submissions.len(),
        unique,
        variants
    );
    println!(
        "{}",
        ascii_table(
            &["config", "ms", "hit/miss/coalesce", "hit rate", "vs direct"],
            &rows
        )
    );

    write_json(
        &out_path,
        seed,
        runs,
        repeat,
        &graph,
        unique,
        variants,
        submissions.len(),
        direct_ns,
        &points,
        net_point.as_ref(),
        update_point.as_ref(),
        restart_result.as_ref(),
        &telemetry,
    )
    .expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
