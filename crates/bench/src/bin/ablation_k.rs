//! Ablation: sensitivity to the SCP length bound `k`.
//!
//! §5.1 of the paper reports that *"in the majority of cases k = 2 is
//! sufficient and it may reach values up to 4 in some isolated cases"*,
//! and §3.3 proves `k = 2n+1` suffices in theory. This harness quantifies
//! the trade-off on the biological workload: for each fixed `k`, the F1
//! reached at a fixed 5% label budget, the abstention rate, and the
//! learning time — versus the dynamic policy the experiments use.
//!
//! ```text
//! cargo run -p pathlearn-bench --release --bin ablation_k
//! ```

use pathlearn_bench::{bio_dataset, goals, HarnessArgs};
use pathlearn_core::{KPolicy, LearnerConfig};
use pathlearn_eval::report::{ascii_table, csv, fmt_f1, write_results_file};
use pathlearn_eval::static_exp::{run_static, StaticConfig};

fn main() {
    let args = HarnessArgs::parse();
    let dataset = bio_dataset(args.seed);
    let fraction = 0.05;

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let policies: Vec<(String, KPolicy)> = (1..=4)
        .map(|k| (format!("fixed k={k}"), KPolicy::Fixed(k)))
        .chain(std::iter::once((
            "dynamic 2..8".to_owned(),
            KPolicy::Dynamic { start: 2, max: 8 },
        )))
        .collect();

    for (label, policy) in &policies {
        for (name, goal) in goals(&dataset) {
            let config = StaticConfig {
                fractions: vec![fraction],
                trials: 3,
                seed: args.seed,
                learner: LearnerConfig {
                    k: *policy,
                    prefix_free_output: true,
                },
                threads: 1,
            };
            let point = &run_static(&dataset.graph, &goal, &config)[0];
            rows.push(vec![
                label.clone(),
                name.clone(),
                fmt_f1(point.mean_f1),
                format!("{:.0}%", 100.0 * point.abstain_rate),
                format!("{:.4}", point.mean_time.as_secs_f64()),
            ]);
            csv_rows.push(vec![
                label.clone(),
                name.clone(),
                format!("{:.4}", point.mean_f1),
                format!("{:.2}", point.abstain_rate),
                format!("{:.6}", point.mean_time.as_secs_f64()),
            ]);
        }
    }

    println!(
        "Ablation — SCP bound k at {}% labels on {}\n",
        fraction * 100.0,
        dataset.name
    );
    let headers = ["k policy", "query", "mean F1", "abstain", "time (s)"];
    println!("{}", ascii_table(&headers, &rows));
    let path =
        write_results_file("ablation_k.csv", &csv(&headers, &csv_rows)).expect("write results");
    println!("CSV written to {}", path.display());
}
