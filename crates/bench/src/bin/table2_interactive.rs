//! Regenerates **Table 2** of the paper: for every query, the labels
//! needed to reach F1 = 1 *without* interactions (random labeling order)
//! versus *with* interactions under the `kR` and `kS` strategies, plus
//! the mean time between interactions.
//!
//! ```text
//! cargo run -p pathlearn-bench --release --bin table2_interactive -- bio
//! cargo run -p pathlearn-bench --release --bin table2_interactive -- syn --full
//! ```

use pathlearn_bench::{datasets_for, goals, HarnessArgs};
use pathlearn_core::LearnerConfig;
use pathlearn_eval::interactive_exp::run_interactive;
use pathlearn_eval::report::{ascii_table, csv, fmt_pct, fmt_secs, write_results_file};
use pathlearn_eval::static_exp::labels_needed_without_interactions;
use pathlearn_interactive::StrategyKind;

fn main() {
    let args = HarnessArgs::parse();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for dataset in datasets_for(&args) {
        let nodes = dataset.graph.num_nodes();
        // Static sweep step: 1% of the graph per increment (coarse but
        // faithful to the paper's percent-level reporting).
        let step = (nodes / 100).max(1);
        for (name, goal) in goals(&dataset) {
            eprintln!("[table2] {}/{}: static sweep…", dataset.name, name);
            let static_fraction = labels_needed_without_interactions(
                &dataset.graph,
                &goal,
                LearnerConfig::default(),
                args.seed,
                step,
            );
            let static_text = match static_fraction {
                Some(f) => fmt_pct(f),
                None => "—".to_owned(),
            };
            for strategy in [StrategyKind::KRandom, StrategyKind::KSmallest] {
                eprintln!(
                    "[table2] {}/{}: interactive {strategy}…",
                    dataset.name, name
                );
                let row = run_interactive(
                    &dataset.graph,
                    &name,
                    &goal,
                    strategy,
                    args.seed,
                    LearnerConfig::default(),
                    0.15,
                );
                let interactive_text = if row.reached_goal {
                    fmt_pct(row.label_fraction)
                } else {
                    format!("≥{}", fmt_pct(row.label_fraction))
                };
                rows.push(vec![
                    format!("{} / {}", name, dataset.name),
                    static_text.clone(),
                    strategy.to_string(),
                    interactive_text.clone(),
                    fmt_secs(row.mean_interaction_time),
                ]);
                csv_rows.push(vec![
                    dataset.name.clone(),
                    name.clone(),
                    format!("{}", nodes),
                    static_fraction.map_or(String::from("NA"), |f| format!("{f:.5}")),
                    strategy.to_string(),
                    format!("{:.5}", row.label_fraction),
                    format!("{}", row.labels),
                    format!("{:.6}", row.mean_interaction_time.as_secs_f64()),
                    format!("{}", row.reached_goal),
                ]);
            }
        }
    }

    println!("Table 2 — static vs interactive labels for F1 = 1\n");
    let headers = [
        "query / graph",
        "labels for F1=1 (static)",
        "strategy",
        "labels for F1=1 (interactive)",
        "time between interactions",
    ];
    println!("{}", ascii_table(&headers, &rows));

    let path = write_results_file(
        "table2_interactive.csv",
        &csv(
            &[
                "dataset",
                "query",
                "nodes",
                "static_fraction",
                "strategy",
                "interactive_fraction",
                "labels",
                "mean_seconds",
                "reached_goal",
            ],
            &csv_rows,
        ),
    )
    .expect("write results");
    println!("CSV written to {}", path.display());
}
