//! Algorithms 2 and 3 — binary and n-ary semantics (paper Appendix B).
//!
//! **Algorithm 2** (`learner2`) is Algorithm 1 with `paths2_G` in place of
//! `paths_G`: each positive example is a node *pair*, which shrinks the
//! candidate-path space (the destination is fixed). **Algorithm 3**
//! (`learnern`) learns one binary query per consecutive tuple position and
//! combines them; Corollary B.1 transfers the learnability guarantee with
//! `k = 2·s+1` where `s` bounds the per-position query size.

use crate::query::PathQuery;
use crate::sample::{Sample2, SampleN};
use pathlearn_automata::product::dfa_nfa_intersection_is_empty;
use pathlearn_automata::rpni::{generalize, MergeOracle};
use pathlearn_automata::{Dfa, Nfa, Word};
use pathlearn_graph::binary::scp2;
use pathlearn_graph::eval::selects_pair;
use pathlearn_graph::{GraphDb, NodeId};

use crate::learner::KPolicy;

/// Configuration of [`learner2`]/[`learnern`]; mirrors
/// [`crate::LearnerConfig`].
#[derive(Clone, Copy, Debug)]
pub struct BinaryLearnerConfig {
    /// SCP length bound policy.
    pub k: KPolicy,
}

impl Default for BinaryLearnerConfig {
    fn default() -> Self {
        BinaryLearnerConfig {
            k: KPolicy::Dynamic { start: 2, max: 8 },
        }
    }
}

/// An n-ary path query: one regular expression per consecutive position
/// (Appendix B), selecting tuples `(ν₁,…,νₙ)` with
/// `paths2(νᵢ, νᵢ₊₁) ∩ L(qᵢ) ≠ ∅` for all `i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NAryQuery {
    /// Per-position binary queries `q₁ … q_{n-1}`.
    pub components: Vec<PathQuery>,
}

impl NAryQuery {
    /// The tuple arity `n` (= number of components + 1).
    pub fn arity(&self) -> usize {
        self.components.len() + 1
    }

    /// Whether the query selects a tuple.
    pub fn selects_tuple(&self, graph: &GraphDb, tuple: &[NodeId]) -> bool {
        assert_eq!(tuple.len(), self.arity(), "tuple arity mismatch");
        self.components
            .iter()
            .zip(tuple.windows(2))
            .all(|(q, pair)| selects_pair(q.dfa(), graph, pair[0], pair[1]))
    }
}

/// Merge oracle for Algorithm 2: consistent iff the candidate's language
/// avoids `paths2_G(S⁻)` — the union over negative pairs, realized as the
/// disjoint union of one graph copy per pair (initial `μᵢ`, accepting
/// `μ'ᵢ`; sharing a single copy would confuse pair endpoints).
struct PairNegativesOracle {
    negative_paths2: Nfa,
}

impl MergeOracle for PairNegativesOracle {
    fn is_consistent(&mut self, candidate: &Dfa) -> bool {
        dfa_nfa_intersection_is_empty(candidate, &self.negative_paths2)
    }
}

fn paths2_union_nfa(graph: &GraphDb, pairs: &[(NodeId, NodeId)]) -> Nfa {
    let v = graph.num_nodes();
    let copies = pairs.len();
    let mut edges = Vec::new();
    for copy in 0..copies {
        let offset = (copy * v) as u32;
        for (src, sym, dst) in graph.edges() {
            edges.push((src + offset, sym, dst + offset));
        }
    }
    let initials = pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, _))| s + (i * v) as u32);
    let finals = pairs
        .iter()
        .enumerate()
        .map(|(i, &(_, t))| t + (i * v) as u32);
    Nfa::from_edges(
        (copies * v).max(1),
        graph.alphabet().len(),
        edges,
        initials,
        finals,
    )
}

/// Algorithm 2 — learns a binary path query from pair examples.
///
/// Returns `None` (the paper's `null`) when no consistent query can be
/// built from binary SCPs of length ≤ k.
pub fn learner2(
    graph: &GraphDb,
    sample: &Sample2,
    config: &BinaryLearnerConfig,
) -> Option<PathQuery> {
    let ks = match config.k {
        KPolicy::Fixed(k) => vec![k],
        KPolicy::Dynamic { start, max } => (start..=max).collect(),
    };
    for k in ks {
        if let Some(query) = attempt2(graph, sample, k) {
            return Some(query);
        }
    }
    None
}

fn attempt2(graph: &GraphDb, sample: &Sample2, k: usize) -> Option<PathQuery> {
    // Lines 1–2: binary SCPs.
    let mut scps: Vec<Word> = Vec::new();
    for &(source, target) in sample.pos() {
        if let Some(path) = scp2(graph, source, target, sample.neg(), k) {
            scps.push(path);
        }
    }

    // Line 3: PTA; lines 4–5: generalization against paths2(S⁻).
    let pta = pathlearn_automata::pta::build_pta(&scps, graph.alphabet().len());
    let mut oracle = PairNegativesOracle {
        negative_paths2: paths2_union_nfa(graph, sample.neg()),
    };
    debug_assert!(oracle.is_consistent(&pta));
    let generalized = generalize(&pta, &mut oracle);

    // Line 6: every positive pair must be selected.
    let all_selected = sample
        .pos()
        .iter()
        .all(|&(s, t)| selects_pair(&generalized, graph, s, t));
    if !all_selected {
        return None;
    }
    // Binary queries are NOT normalized to prefix-free form: with a fixed
    // destination, a·b and a are inequivalent as binary queries.
    Some(PathQuery::from_dfa(&generalized))
}

/// Algorithm 3 — learns an n-ary query by learning one binary query per
/// consecutive position and combining them. Returns `None` if any
/// position's `learner2` abstains.
pub fn learnern(
    graph: &GraphDb,
    sample: &SampleN,
    config: &BinaryLearnerConfig,
) -> Option<NAryQuery> {
    let mut components = Vec::with_capacity(sample.arity() - 1);
    for i in 0..sample.arity() - 1 {
        let projected = sample.project(i);
        components.push(learner2(graph, &projected, config)?);
    }
    Some(NAryQuery { components })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_graph::graph::figure3_g0;

    #[test]
    fn learner2_learns_pair_query_on_g0() {
        let graph = figure3_g0();
        let v1 = graph.node_id("v1").unwrap();
        let v3 = graph.node_id("v3").unwrap();
        let v4 = graph.node_id("v4").unwrap();
        let v5 = graph.node_id("v5").unwrap();
        // Positive: (v3, v4) — connected by c (among others).
        // Negative: (v5, v4) — connected by a and b only.
        let sample = Sample2::new().positive(v3, v4).negative(v5, v4);
        let query = learner2(&graph, &sample, &BinaryLearnerConfig::default())
            .expect("consistent binary query");
        assert!(selects_pair(query.dfa(), &graph, v3, v4));
        assert!(!selects_pair(query.dfa(), &graph, v5, v4));
        // v1→v4 via a·a·c / a·b·c is selected by (generalizations of) c?
        // Not necessarily — but the learned query must stay consistent.
        let _ = v1;
    }

    #[test]
    fn learner2_soundness_on_random_pairs() {
        let graph = figure3_g0();
        let goal = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        let mut sample = Sample2::new();
        let nodes: Vec<NodeId> = graph.nodes().collect();
        for &s in &nodes {
            for &t in nodes.iter().take(4) {
                sample.add(s, t, selects_pair(goal.dfa(), &graph, s, t));
            }
        }
        if let Some(query) = learner2(&graph, &sample, &BinaryLearnerConfig::default()) {
            for &(s, t) in sample.pos() {
                assert!(selects_pair(query.dfa(), &graph, s, t));
            }
            for &(s, t) in sample.neg() {
                assert!(!selects_pair(query.dfa(), &graph, s, t));
            }
        }
    }

    #[test]
    fn learner2_abstains_on_inconsistent_pairs() {
        let graph = figure3_g0();
        let v5 = graph.node_id("v5").unwrap();
        let v4 = graph.node_id("v4").unwrap();
        // (v5,v4) positive but also every covering path negative via the
        // same pair… make it trivially inconsistent: positive (v5,v4) and
        // negatives covering both its paths a and b: the pair (v5, v4)
        // itself as negative is contradictory, so use two pairs that
        // jointly cover {a, b}: (v5, v4) paths are exactly {a, b}; the
        // pair (v6→v5? ) … simplest: negatives (v6, v5) covers a (v6-a,
        // also …) and (v6, v7) covers b.
        let v6 = graph.node_id("v6").unwrap();
        let v7 = graph.node_id("v7").unwrap();
        let sample = Sample2::new()
            .positive(v5, v4)
            .negative(v6, v5)
            .negative(v6, v7);
        // paths2(v6,v5) ⊇ {a}; paths2(v6,v7) ⊇ {b}: all of (v5,v4)'s
        // length-1 paths covered; longer paths from v5 to v4 don't exist.
        let result = learner2(&graph, &sample, &BinaryLearnerConfig::default());
        assert!(result.is_none());
    }

    #[test]
    fn learnern_combines_positions() {
        let graph = figure3_g0();
        let v1 = graph.node_id("v1").unwrap();
        let v2 = graph.node_id("v2").unwrap();
        let v3 = graph.node_id("v3").unwrap();
        let v4 = graph.node_id("v4").unwrap();
        let v5 = graph.node_id("v5").unwrap();
        let mut sample = SampleN::new(3);
        // v1 -a→ v2 -b→ v3: positive; (v5, v4, v1): negative (no v4→v1).
        sample.add(vec![v1, v2, v3], true);
        sample.add(vec![v5, v4, v1], false);
        let query =
            learnern(&graph, &sample, &BinaryLearnerConfig::default()).expect("n-ary query");
        assert_eq!(query.arity(), 3);
        assert!(query.selects_tuple(&graph, &[v1, v2, v3]));
        assert!(!query.selects_tuple(&graph, &[v5, v4, v1]));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn nary_selects_checks_arity() {
        let graph = figure3_g0();
        let query = NAryQuery {
            components: vec![PathQuery::parse("a", graph.alphabet()).unwrap()],
        };
        let _ = query.selects_tuple(&graph, &[0, 1, 2]);
    }
}
