//! Samples: user-labeled examples (paper §3.1).
//!
//! A (monadic) *example* is a pair `(ν, α)` with `α ∈ {+, −}`; a *sample*
//! is a set of examples. Binary samples label node pairs and n-ary samples
//! label node tuples (Appendix B).

use pathlearn_graph::NodeId;

/// A monadic sample: positively and negatively labeled nodes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Sample {
    pos: Vec<NodeId>,
    neg: Vec<NodeId>,
}

impl Sample {
    /// Creates an empty sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a sample from positive and negative node lists.
    pub fn from_parts(
        pos: impl IntoIterator<Item = NodeId>,
        neg: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        let mut sample = Self::new();
        for n in pos {
            sample.add(n, true);
        }
        for n in neg {
            sample.add(n, false);
        }
        sample
    }

    /// Adds a positive example (builder style).
    #[must_use]
    pub fn positive(mut self, node: NodeId) -> Self {
        self.add(node, true);
        self
    }

    /// Adds a negative example (builder style).
    #[must_use]
    pub fn negative(mut self, node: NodeId) -> Self {
        self.add(node, false);
        self
    }

    /// Adds an example in place. Re-labeling an already-labeled node with
    /// the same label is a no-op; with the opposite label it panics (the
    /// caller created a contradictory sample).
    pub fn add(&mut self, node: NodeId, positive: bool) {
        let (own, other) = if positive {
            (&mut self.pos, &self.neg)
        } else {
            (&mut self.neg, &self.pos)
        };
        assert!(
            other.binary_search(&node).is_err(),
            "node {node} labeled both + and -"
        );
        if let Err(at) = own.binary_search(&node) {
            own.insert(at, node);
        }
    }

    /// Positive nodes `S⁺`, sorted.
    pub fn pos(&self) -> &[NodeId] {
        &self.pos
    }

    /// Negative nodes `S⁻`, sorted.
    pub fn neg(&self) -> &[NodeId] {
        &self.neg
    }

    /// Whether `node` carries a label.
    pub fn is_labeled(&self, node: NodeId) -> bool {
        self.pos.binary_search(&node).is_ok() || self.neg.binary_search(&node).is_ok()
    }

    /// The label of `node`, if any.
    pub fn label(&self, node: NodeId) -> Option<bool> {
        if self.pos.binary_search(&node).is_ok() {
            Some(true)
        } else if self.neg.binary_search(&node).is_ok() {
            Some(false)
        } else {
            None
        }
    }

    /// Total number of examples.
    pub fn len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Whether the sample has no examples.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }
}

/// A binary sample: positively and negatively labeled node pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Sample2 {
    pos: Vec<(NodeId, NodeId)>,
    neg: Vec<(NodeId, NodeId)>,
}

impl Sample2 {
    /// Creates an empty binary sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a positive pair example (builder style).
    #[must_use]
    pub fn positive(mut self, source: NodeId, target: NodeId) -> Self {
        self.add(source, target, true);
        self
    }

    /// Adds a negative pair example (builder style).
    #[must_use]
    pub fn negative(mut self, source: NodeId, target: NodeId) -> Self {
        self.add(source, target, false);
        self
    }

    /// Adds a pair example in place; panics on contradictory labels.
    pub fn add(&mut self, source: NodeId, target: NodeId, positive: bool) {
        let pair = (source, target);
        let (own, other) = if positive {
            (&mut self.pos, &self.neg)
        } else {
            (&mut self.neg, &self.pos)
        };
        assert!(
            other.binary_search(&pair).is_err(),
            "pair {pair:?} labeled both + and -"
        );
        if let Err(at) = own.binary_search(&pair) {
            own.insert(at, pair);
        }
    }

    /// Positive pairs, sorted.
    pub fn pos(&self) -> &[(NodeId, NodeId)] {
        &self.pos
    }

    /// Negative pairs, sorted.
    pub fn neg(&self) -> &[(NodeId, NodeId)] {
        &self.neg
    }

    /// Total number of examples.
    pub fn len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Whether the sample has no examples.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }
}

/// An n-ary sample: labeled node tuples of a fixed arity ≥ 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleN {
    arity: usize,
    pos: Vec<Vec<NodeId>>,
    neg: Vec<Vec<NodeId>>,
}

impl SampleN {
    /// Creates an empty n-ary sample of the given arity.
    ///
    /// # Panics
    /// Panics if `arity < 2`.
    pub fn new(arity: usize) -> Self {
        assert!(arity >= 2, "n-ary samples need arity ≥ 2");
        SampleN {
            arity,
            pos: Vec::new(),
            neg: Vec::new(),
        }
    }

    /// The tuple arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Adds a tuple example; panics if the arity differs.
    pub fn add(&mut self, tuple: Vec<NodeId>, positive: bool) {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        if positive {
            self.pos.push(tuple);
        } else {
            self.neg.push(tuple);
        }
    }

    /// Positive tuples.
    pub fn pos(&self) -> &[Vec<NodeId>] {
        &self.pos
    }

    /// Negative tuples.
    pub fn neg(&self) -> &[Vec<NodeId>] {
        &self.neg
    }

    /// Projects the i-th consecutive pair out of every tuple, producing
    /// the binary sample Algorithm 3 feeds to `learner2` for position `i`.
    pub fn project(&self, i: usize) -> Sample2 {
        assert!(i + 1 < self.arity);
        let mut sample = Sample2::new();
        for tuple in &self.pos {
            sample.add(tuple[i], tuple[i + 1], true);
        }
        for tuple in &self.neg {
            // A negative tuple contributes its component pair as negative,
            // exactly as Algorithm 3 specifies. (This is conservative: a
            // tuple may be negative because of a *different* position; the
            // paper's algorithm accepts that approximation.)
            let pair = (tuple[i], tuple[i + 1]);
            if sample.pos.binary_search(&pair).is_err() {
                sample.add(pair.0, pair.1, false);
            }
        }
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monadic_sample_basics() {
        let sample = Sample::new().positive(3).negative(1).positive(2);
        assert_eq!(sample.pos(), &[2, 3]);
        assert_eq!(sample.neg(), &[1]);
        assert_eq!(sample.len(), 3);
        assert!(sample.is_labeled(2));
        assert!(!sample.is_labeled(0));
        assert_eq!(sample.label(3), Some(true));
        assert_eq!(sample.label(1), Some(false));
        assert_eq!(sample.label(9), None);
    }

    #[test]
    fn duplicate_labels_are_idempotent() {
        let mut sample = Sample::new();
        sample.add(5, true);
        sample.add(5, true);
        assert_eq!(sample.pos(), &[5]);
    }

    #[test]
    #[should_panic(expected = "labeled both")]
    fn contradictory_labels_panic() {
        let mut sample = Sample::new();
        sample.add(5, true);
        sample.add(5, false);
    }

    #[test]
    fn from_parts_sorts() {
        let sample = Sample::from_parts([9, 1, 5], [2]);
        assert_eq!(sample.pos(), &[1, 5, 9]);
    }

    #[test]
    fn binary_sample_basics() {
        let sample = Sample2::new().positive(0, 1).negative(1, 2);
        assert_eq!(sample.pos(), &[(0, 1)]);
        assert_eq!(sample.neg(), &[(1, 2)]);
        assert_eq!(sample.len(), 2);
    }

    #[test]
    fn nary_projection() {
        let mut sample = SampleN::new(3);
        sample.add(vec![0, 1, 2], true);
        sample.add(vec![3, 4, 5], false);
        let first = sample.project(0);
        assert_eq!(first.pos(), &[(0, 1)]);
        assert_eq!(first.neg(), &[(3, 4)]);
        let second = sample.project(1);
        assert_eq!(second.pos(), &[(1, 2)]);
        assert_eq!(second.neg(), &[(4, 5)]);
    }

    #[test]
    fn nary_projection_skips_pairs_that_are_positive() {
        let mut sample = SampleN::new(3);
        sample.add(vec![0, 1, 2], true);
        sample.add(vec![0, 1, 9], false); // same first pair as a positive
        let first = sample.project(0);
        assert_eq!(first.pos(), &[(0, 1)]);
        assert!(first.neg().is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn nary_arity_mismatch_panics() {
        let mut sample = SampleN::new(3);
        sample.add(vec![0, 1], true);
    }
}
