//! Definability of node sets (related work of the paper, \[4\]).
//!
//! The paper contrasts *learning* with *definability* (Antonopoulos,
//! Neven, Servais — ICDT 2013): both look for a query consistent with
//! examples, but definability requires the query to select **exactly** a
//! given node set — every node outside the set is an implicit negative.
//! Definability is therefore the extreme case of our learning problem
//! where the sample labels every node, and the paper reuses its hardness
//! constructions for Lemmas 3.2/3.3.
//!
//! This module exposes that reduction: a set `X` is (approximately)
//! definable by a path query iff the learner succeeds on the sample
//! `(X, V \ X)` — *sound* (any returned query defines `X`) but, like the
//! learner, allowed to abstain (the exact problem is undecidable-hard in
//! the size-bounded sense and PSPACE-hard to check; Lemma 3.2's proof
//! adapts definability hardness).

use crate::learner::{Learner, LearnerConfig};
use crate::query::PathQuery;
use crate::sample::Sample;
use pathlearn_graph::{GraphDb, NodeId};

/// Result of a definability check.
#[derive(Clone, Debug)]
pub enum Definability {
    /// A query selecting exactly the given set.
    Definable(PathQuery),
    /// No defining query was found with SCPs of length ≤ the learner's k
    /// (the set may still be definable — the procedure abstains).
    Unknown,
}

impl Definability {
    /// The defining query, if one was found.
    pub fn query(self) -> Option<PathQuery> {
        match self {
            Definability::Definable(query) => Some(query),
            Definability::Unknown => None,
        }
    }
}

/// Attempts to define `nodes` exactly: learn on the fully labeled sample
/// where `nodes` are positive and everything else negative, and verify
/// exactness.
pub fn define_set(graph: &GraphDb, nodes: &[NodeId], config: LearnerConfig) -> Definability {
    let mut sample = Sample::new();
    let mut in_set = vec![false; graph.num_nodes()];
    for &node in nodes {
        in_set[node as usize] = true;
    }
    for node in graph.nodes() {
        sample.add(node, in_set[node as usize]);
    }
    let outcome = Learner::with_config(config).learn(graph, &sample);
    match outcome.query {
        Some(query) => {
            let selected = query.eval(graph);
            // Consistency already guarantees exactness on a fully labeled
            // sample, but assert the contract explicitly.
            debug_assert!(graph
                .nodes()
                .all(|n| selected.contains(n as usize) == in_set[n as usize]));
            Definability::Definable(query)
        }
        None => Definability::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_graph::graph::figure3_g0;

    #[test]
    fn defines_query_selections_on_g0() {
        // Any actual query result is definable (by that query, at least).
        let graph = figure3_g0();
        for expr in ["a", "(a·b)*·c", "c"] {
            let goal = PathQuery::parse(expr, graph.alphabet()).unwrap();
            let target: Vec<NodeId> = goal.eval(&graph).iter().map(|n| n as NodeId).collect();
            match define_set(&graph, &target, LearnerConfig::default()) {
                Definability::Definable(query) => {
                    assert_eq!(query.eval(&graph), goal.eval(&graph), "{expr}");
                }
                Definability::Unknown => panic!("{expr}: should be definable"),
            }
        }
    }

    #[test]
    fn undefinable_set_abstains() {
        // {ν4} on G0: ν4's only path is ε, and ε-queries select every
        // node, so no path query selects exactly {ν4}.
        let graph = figure3_g0();
        let v4 = graph.node_id("v4").unwrap();
        match define_set(&graph, &[v4], LearnerConfig::default()) {
            Definability::Unknown => {}
            Definability::Definable(query) => {
                panic!("impossible: {}", query.display(graph.alphabet()))
            }
        }
    }

    #[test]
    fn empty_set_is_definable_by_empty_query() {
        let graph = figure3_g0();
        match define_set(&graph, &[], LearnerConfig::default()) {
            Definability::Definable(query) => {
                assert!(query.eval(&graph).is_empty());
            }
            Definability::Unknown => panic!("∅ is definable by the empty query"),
        }
    }

    #[test]
    fn full_set_is_definable_by_epsilon() {
        let graph = figure3_g0();
        let all: Vec<NodeId> = graph.nodes().collect();
        match define_set(&graph, &all, LearnerConfig::default()) {
            Definability::Definable(query) => {
                assert_eq!(query.eval(&graph).len(), graph.num_nodes());
            }
            Definability::Unknown => panic!("V is definable by ε"),
        }
    }

    #[test]
    fn definability_query_accessor() {
        let graph = figure3_g0();
        let v4 = graph.node_id("v4").unwrap();
        assert!(define_set(&graph, &[v4], LearnerConfig::default())
            .query()
            .is_none());
    }
}
