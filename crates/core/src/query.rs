//! Path queries (paper §2).
//!
//! A path query selects the nodes having at least one path in the language
//! of a regular expression; it is represented by its **canonical DFA** and
//! its size is the DFA's state count. The paper normalizes queries to be
//! **prefix-free** — the unique minimal representative of each equivalence
//! class under query equivalence (`a` ≡ `a·b*`, etc.).

use pathlearn_automata::state_elim::dfa_to_regex;
use pathlearn_automata::{Alphabet, BitSet, Dfa, Regex};
use pathlearn_graph::{GraphDb, NodeId};
use std::fmt;

/// A path query: a regular language in canonical (minimal) DFA form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathQuery {
    dfa: Dfa,
}

impl PathQuery {
    /// Wraps a DFA, canonicalizing it (minimize + canonical numbering).
    pub fn from_dfa(dfa: &Dfa) -> Self {
        PathQuery {
            dfa: dfa.minimize(),
        }
    }

    /// Builds a query from a regex AST.
    pub fn from_regex(regex: &Regex, alphabet_len: usize) -> Self {
        PathQuery {
            dfa: regex.to_dfa(alphabet_len),
        }
    }

    /// Parses a query from regex syntax over an existing alphabet.
    pub fn parse(
        expr: &str,
        alphabet: &Alphabet,
    ) -> Result<Self, pathlearn_automata::regex::ParseError> {
        Ok(Self::from_regex(
            &Regex::parse(expr, alphabet)?,
            alphabet.len(),
        ))
    }

    /// The canonical DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The paper's query size: number of canonical-DFA states.
    pub fn size(&self) -> usize {
        self.dfa.num_states()
    }

    /// The equivalent prefix-free query (§2): the minimal representative
    /// of this query's equivalence class.
    pub fn prefix_free(&self) -> PathQuery {
        PathQuery {
            dfa: self.dfa.make_prefix_free(),
        }
    }

    /// `true` iff the language is prefix-free.
    pub fn is_prefix_free(&self) -> bool {
        self.dfa.is_prefix_free()
    }

    /// Language equivalence of the underlying regular languages.
    ///
    /// Note that the paper's *query equivalence* (`q(G) = q'(G)` for all
    /// `G`) is coarser: `a` and `a·b*` are equivalent queries with
    /// different languages. Query equivalence is exactly language equality
    /// of the prefix-free forms — see [`PathQuery::equivalent_as_query`].
    pub fn equivalent_language(&self, other: &PathQuery) -> bool {
        self.dfa.equivalent(&other.dfa)
    }

    /// The paper's query equivalence: equality on every graph, decided via
    /// prefix-free normal forms.
    pub fn equivalent_as_query(&self, other: &PathQuery) -> bool {
        self.prefix_free().dfa.equivalent(&other.prefix_free().dfa)
    }

    /// Evaluates the query on a graph: the selected node set
    /// `q(G) = {ν | L(q) ∩ paths_G(ν) ≠ ∅}`.
    pub fn eval(&self, graph: &GraphDb) -> BitSet {
        pathlearn_graph::eval::eval_monadic(&self.dfa, graph)
    }

    /// Whether the query selects one node.
    pub fn selects(&self, graph: &GraphDb, node: NodeId) -> bool {
        let paths = graph.paths_nfa(&[node]);
        !pathlearn_automata::product::dfa_nfa_intersection_is_empty(&self.dfa, &paths)
    }

    /// Fraction of nodes selected (Table 1's *selectivity*).
    pub fn selectivity(&self, graph: &GraphDb) -> f64 {
        pathlearn_graph::eval::selectivity(&self.dfa, graph)
    }

    /// Converts back to a regular expression (state elimination).
    pub fn to_regex(&self) -> Regex {
        dfa_to_regex(&self.dfa)
    }

    // ----- query algebra --------------------------------------------------

    /// The union query `self + other`: selects `q₁(G) ∪ q₂(G)` on every
    /// graph (monadic semantics distributes over language union).
    pub fn union(&self, other: &PathQuery) -> PathQuery {
        let regex = Regex::alt(vec![self.to_regex(), other.to_regex()]);
        PathQuery::from_regex(&regex, self.dfa.alphabet_len())
    }

    /// The concatenation query `self · other`.
    pub fn concat(&self, other: &PathQuery) -> PathQuery {
        let regex = Regex::concat(vec![self.to_regex(), other.to_regex()]);
        PathQuery::from_regex(&regex, self.dfa.alphabet_len())
    }

    /// The Kleene-star query `self*`. Note `ε ∈ L(q*)`, so the result
    /// selects **every** node of every graph — stars are useful as
    /// sub-expressions, rarely as whole queries (§2's prefix-free
    /// normalization would collapse `q*` to `ε`).
    pub fn star(&self) -> PathQuery {
        PathQuery::from_regex(&Regex::star(self.to_regex()), self.dfa.alphabet_len())
    }

    /// Language containment `L(self) ⊆ L(other)`, decided exactly via the
    /// antichain inclusion algorithm. Containment implies *selection
    /// containment* on every graph: `self(G) ⊆ other(G)`.
    pub fn contained_in(&self, other: &PathQuery) -> bool {
        pathlearn_automata::inclusion::nfa_included_in(&self.dfa.to_nfa(), &other.dfa.to_nfa())
            .is_ok()
    }

    /// Pretty-prints the query as a regex over `alphabet`.
    pub fn display<'a>(&self, alphabet: &'a Alphabet) -> QueryDisplay<'a> {
        QueryDisplay {
            regex: self.to_regex(),
            alphabet,
        }
    }
}

/// Display adapter returned by [`PathQuery::display`].
pub struct QueryDisplay<'a> {
    regex: Regex,
    alphabet: &'a Alphabet,
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.regex.display(self.alphabet))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_graph::graph::figure3_g0;

    #[test]
    fn query_size_matches_paper() {
        let graph = figure3_g0();
        let q = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        assert_eq!(q.size(), 3);
        assert!(q.is_prefix_free());
    }

    #[test]
    fn prefix_free_normalization() {
        // a ≡ a·b* as queries (§2).
        let alphabet = Alphabet::from_labels(["a", "b"]);
        let a = PathQuery::parse("a", &alphabet).unwrap();
        let ab_star = PathQuery::parse("a·b*", &alphabet).unwrap();
        assert!(!a.equivalent_language(&ab_star));
        assert!(a.equivalent_as_query(&ab_star));
        assert_eq!(ab_star.prefix_free().dfa(), a.dfa());
    }

    #[test]
    fn query_equivalence_agrees_with_evaluation_on_g0() {
        let graph = figure3_g0();
        let a = PathQuery::parse("a", graph.alphabet()).unwrap();
        let ab_star = PathQuery::parse("a·b*", graph.alphabet()).unwrap();
        assert_eq!(a.eval(&graph), ab_star.eval(&graph));
    }

    #[test]
    fn selects_matches_eval() {
        let graph = figure3_g0();
        let q = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        let selected = q.eval(&graph);
        for node in graph.nodes() {
            assert_eq!(q.selects(&graph, node), selected.contains(node as usize));
        }
    }

    #[test]
    fn display_roundtrip() {
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        let q = PathQuery::parse("(a·b)*·c", &alphabet).unwrap();
        let printed = q.display(&alphabet).to_string();
        let reparsed = PathQuery::parse(&printed.replace('ε', "eps"), &alphabet).unwrap();
        assert!(q.equivalent_language(&reparsed));
    }

    #[test]
    fn selectivity_on_g0() {
        let graph = figure3_g0();
        let q = PathQuery::parse("a", graph.alphabet()).unwrap();
        assert!((q.selectivity(&graph) - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn union_selects_set_union() {
        let graph = figure3_g0();
        let a = PathQuery::parse("a·b", graph.alphabet()).unwrap();
        let b = PathQuery::parse("c", graph.alphabet()).unwrap();
        let union = a.union(&b);
        let mut expected = a.eval(&graph);
        expected.union_with(&b.eval(&graph));
        assert_eq!(union.eval(&graph), expected);
    }

    #[test]
    fn concat_matches_regex_composition() {
        let graph = figure3_g0();
        let a = PathQuery::parse("a", graph.alphabet()).unwrap();
        let b = PathQuery::parse("b·c", graph.alphabet()).unwrap();
        let composed = a.concat(&b);
        let direct = PathQuery::parse("a·b·c", graph.alphabet()).unwrap();
        assert!(composed.equivalent_language(&direct));
    }

    #[test]
    fn star_selects_everything() {
        let graph = figure3_g0();
        let q = PathQuery::parse("a·b", graph.alphabet()).unwrap();
        assert_eq!(q.star().eval(&graph).len(), graph.num_nodes());
    }

    #[test]
    fn containment_laws() {
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        let abc = PathQuery::parse("a·b·c", &alphabet).unwrap();
        let star = PathQuery::parse("(a·b)*·c", &alphabet).unwrap();
        let broad = PathQuery::parse("(a+b)*·c", &alphabet).unwrap();
        assert!(abc.contained_in(&star));
        assert!(star.contained_in(&broad));
        assert!(!broad.contained_in(&star));
        // Containment implies selection containment.
        let graph = figure3_g0();
        let small = abc.eval(&graph);
        let big = star.eval(&graph);
        assert!(small.is_subset(&big));
    }
}
