//! Learning algorithms for path queries on graph databases.
//!
//! The primary contribution of the EDBT 2015 paper, implemented in full:
//!
//! * [`sample`] — positive/negative node examples (monadic), node-pair
//!   examples (binary) and node-tuple examples (n-ary);
//! * [`query`] — the [`query::PathQuery`] type: a path query represented
//!   by its canonical DFA (paper §2), displayable as a regular expression;
//! * [`learner`] — **Algorithm 1** (`learner`): SCP selection bounded by
//!   `k`, PTA construction, RPNI-style generalization against
//!   `paths_G(S⁻)`, and the final positive-coverage check; with the
//!   dynamic-`k` escalation the paper uses in its experiments (§5.1);
//! * [`binary`] — **Algorithm 2** (`learner2`) for binary semantics and
//!   **Algorithm 3** (`learnern`) for n-ary semantics (Appendix B);
//! * [`consistency`] — exact consistency checking via Lemma 3.1
//!   (PSPACE-hard in general — Lemma 3.2 — so exposed for small inputs
//!   and validation, not used on the hot path);
//! * [`theory`] — the Theorem 3.5 construction: for any target query, a
//!   **characteristic graph and sample** on which `learner` (with
//!   `k = 2n+1`) provably identifies the target.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binary;
pub mod consistency;
pub mod definability;
pub mod learner;
pub mod query;
pub mod sample;
pub mod theory;

pub use learner::{KPolicy, LearnOutcome, LearnStats, Learner, LearnerConfig};
pub use pathlearn_graph::EvalPool;
pub use query::PathQuery;
pub use sample::{Sample, Sample2, SampleN};
