//! The Theorem 3.5 construction: characteristic graphs and samples.
//!
//! Completeness of `learner` (Definition 3.4(2)) is proved by exhibiting,
//! for every target query `q`, a graph `G` and a polynomial *characteristic
//! sample* `CS` such that `learner(G, S)` returns `q` for every `S ⊇ CS`
//! consistent with `q`. The construction (illustrated by Figure 7 of the
//! paper) is:
//!
//! 1. compute an RPNI characteristic word sample `(P⁺, P⁻)` for `L(q)`
//!    ([`pathlearn_automata::char_sample`]);
//! 2. for each `p ∈ P⁺`, add a **chain** of fresh nodes spelling `p`; its
//!    start node is a positive example, and
//!    `p = min≤(L(q) ∩ paths_G(ν))` holds because `q` is prefix-free;
//! 3. add one **negative component**: the completed canonical DFA of `q`
//!    with all accepting states (and the transitions into them) removed.
//!    The path language of its initial-state node is exactly the set `N`
//!    of words with **no prefix in `L(q)`** — covering every `P⁻` word
//!    (guaranteed by minimal distinguishing suffixes) *and* every word
//!    smaller than a `P⁺` word that condition (iii) of the proof requires.
//!
//! With `k = 2·size(q)+1` (Theorem 3.5), `learner`'s SCPs on this instance
//! are exactly `P⁺`, and its merge oracle refuses exactly the merges RPNI
//! would refuse, so the output is `q`.

use crate::query::PathQuery;
use crate::sample::Sample;
use pathlearn_automata::char_sample::{characteristic_sample, WordSample};
use pathlearn_automata::{Alphabet, Symbol};
use pathlearn_graph::{GraphBuilder, GraphDb, NodeId};

/// A graph plus characteristic sample for a target query.
#[derive(Clone, Debug)]
pub struct CharacteristicInstance {
    /// The constructed graph.
    pub graph: GraphDb,
    /// The characteristic sample on it.
    pub sample: Sample,
    /// The word sample `(P⁺, P⁻)` that drove the construction.
    pub words: WordSample,
    /// The `k` bound Theorem 3.5 prescribes: `2·size(q)+1`.
    pub required_k: usize,
}

/// Errors from [`characteristic_instance`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryError {
    /// The empty-language query has no positive examples on any graph; it
    /// is learned from the empty sample instead.
    EmptyLanguage,
    /// `{ε}` selects every node of every graph; any single positive node
    /// with no negatives is characteristic, but the construction below
    /// needs a non-accepting initial state.
    EpsilonLanguage,
}

impl std::fmt::Display for TheoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TheoryError::EmptyLanguage => write!(f, "target language is empty"),
            TheoryError::EpsilonLanguage => write!(f, "target language is {{ε}}"),
        }
    }
}

impl std::error::Error for TheoryError {}

/// Builds the Theorem 3.5 characteristic graph and sample for `query`.
///
/// `query` is normalized to its prefix-free form first (§2 justifies this
/// w.l.o.g.: learner outputs are prefix-free representatives).
///
/// ```
/// use pathlearn_automata::Alphabet;
/// use pathlearn_core::{theory::characteristic_instance, Learner, PathQuery};
///
/// let alphabet = Alphabet::from_labels(["a", "b", "c"]);
/// let target = PathQuery::parse("(a·b)*·c", &alphabet).unwrap();
/// let instance = characteristic_instance(&target, &alphabet).unwrap();
/// // Theorem 3.5: with k = 2·size(q)+1 the learner identifies the target.
/// let outcome =
///     Learner::with_fixed_k(instance.required_k).learn(&instance.graph, &instance.sample);
/// assert!(outcome.query.unwrap().equivalent_language(&target));
/// ```
pub fn characteristic_instance(
    query: &PathQuery,
    alphabet: &Alphabet,
) -> Result<CharacteristicInstance, TheoryError> {
    let target = query.prefix_free();
    let dfa = target.dfa();
    if dfa.language_is_empty() {
        return Err(TheoryError::EmptyLanguage);
    }
    if dfa.accepts(&[]) {
        return Err(TheoryError::EpsilonLanguage);
    }

    let words = characteristic_sample(dfa);
    let mut builder = GraphBuilder::with_alphabet(alphabet.clone());
    let mut sample = Sample::new();

    // (2) Positive chains.
    for (i, p) in words.pos.iter().enumerate() {
        let start = builder.add_node(&format!("pos{i}_0"));
        let mut current = start;
        for (j, &sym) in p.iter().enumerate() {
            let next = builder.add_node(&format!("pos{i}_{}", j + 1));
            builder.add_edge_ids(current, sym, next);
            current = next;
        }
        sample.add(start, true);
    }

    // (3) Negative component: completed canonical DFA minus finals.
    let (complete, _) = dfa.complete();
    let mut state_node: Vec<Option<NodeId>> = vec![None; complete.num_states()];
    for s in 0..complete.num_states() as u32 {
        if !complete.is_final(s) {
            state_node[s as usize] = Some(builder.add_node(&format!("neg_q{s}")));
        }
    }
    for s in 0..complete.num_states() as u32 {
        let Some(from) = state_node[s as usize] else {
            continue;
        };
        for a in 0..alphabet.len() {
            let sym = Symbol::from_index(a);
            if let Some(t) = complete.step(s, sym) {
                if let Some(to) = state_node[t as usize] {
                    builder.add_edge_ids(from, sym, to);
                }
            }
        }
    }
    let negative_node = state_node[complete.initial() as usize]
        .expect("initial state is non-final for non-ε prefix-free targets");
    sample.add(negative_node, false);

    let graph = builder.build();
    let required_k = 2 * target.size() + 1;

    debug_assert!(
        words.neg.iter().all(|w| graph.covers(w, &[negative_node])),
        "negative component must cover every P⁻ word"
    );

    Ok(CharacteristicInstance {
        graph,
        sample,
        words,
        required_k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::Learner;

    fn check_identification(expr: &str, labels: &[&str]) {
        let alphabet = Alphabet::from_labels(labels.iter().copied());
        let target = PathQuery::parse(expr, &alphabet).unwrap();
        let instance = characteristic_instance(&target, &alphabet).unwrap();
        let learner = Learner::with_fixed_k(instance.required_k);
        let outcome = learner.learn(&instance.graph, &instance.sample);
        let learned = outcome
            .query
            .unwrap_or_else(|| panic!("learner abstained on characteristic instance for {expr}"));
        assert!(
            learned.equivalent_language(&target.prefix_free()),
            "{expr}: learned {} instead",
            learned.display(&alphabet)
        );
    }

    #[test]
    fn theorem_3_5_identifies_paper_query() {
        check_identification("(a·b)*·c", &["a", "b", "c"]);
    }

    #[test]
    fn theorem_3_5_identifies_assorted_queries() {
        check_identification("a·b·c", &["a", "b", "c"]);
        check_identification("a*·b", &["a", "b"]);
        check_identification("a·(b+c)", &["a", "b", "c"]);
        check_identification("(a+b)·c", &["a", "b", "c"]);
        check_identification("(b·a)*·a", &["a", "b"]);
        check_identification("a", &["a", "b"]);
    }

    #[test]
    fn theorem_3_5_identifies_bio_style_disjunction_queries() {
        // Table 1 structural templates with small disjunction classes.
        check_identification("b·(a+b)·(a+b)*", &["a", "b", "c"]);
        check_identification("(a+c)·(a+c)*·b", &["a", "b", "c"]);
    }

    #[test]
    fn identification_survives_consistent_extension() {
        // Definition 3.4(2): extend CS with more consistent labels.
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        let target = PathQuery::parse("(a·b)*·c", &alphabet).unwrap();
        let instance = characteristic_instance(&target, &alphabet).unwrap();
        let selected = target.eval(&instance.graph);
        let mut sample = instance.sample.clone();
        // Label everything consistently with the target.
        for node in instance.graph.nodes() {
            if !sample.is_labeled(node) {
                sample.add(node, selected.contains(node as usize));
            }
        }
        let outcome = Learner::with_fixed_k(instance.required_k).learn(&instance.graph, &sample);
        assert!(outcome.query.unwrap().equivalent_language(&target));
    }

    #[test]
    fn scps_on_characteristic_instance_are_exactly_p_plus() {
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        let target = PathQuery::parse("(a·b)*·c", &alphabet).unwrap();
        let instance = characteristic_instance(&target, &alphabet).unwrap();
        let outcome =
            Learner::with_fixed_k(instance.required_k).learn(&instance.graph, &instance.sample);
        let mut scps: Vec<_> = outcome.stats.scps.iter().map(|(_, w)| w.clone()).collect();
        pathlearn_automata::word::sort_canonical(&mut scps);
        assert_eq!(scps, instance.words.pos);
    }

    #[test]
    fn degenerate_targets_are_rejected() {
        let alphabet = Alphabet::from_labels(["a"]);
        let empty = PathQuery::from_dfa(&pathlearn_automata::Dfa::empty_language(1));
        assert_eq!(
            characteristic_instance(&empty, &alphabet).unwrap_err(),
            TheoryError::EmptyLanguage
        );
        let eps = PathQuery::parse("eps", &alphabet).unwrap();
        assert_eq!(
            characteristic_instance(&eps, &alphabet).unwrap_err(),
            TheoryError::EpsilonLanguage
        );
    }

    #[test]
    fn sample_sizes_are_polynomial() {
        // |CS⁺| = |P⁺| and |CS⁻| = 1 (Theorem 3.5 proof).
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        let target = PathQuery::parse("(a·b)*·c", &alphabet).unwrap();
        let instance = characteristic_instance(&target, &alphabet).unwrap();
        assert_eq!(instance.sample.pos().len(), instance.words.pos.len());
        assert_eq!(instance.sample.neg().len(), 1);
        assert_eq!(instance.required_k, 2 * 3 + 1);
    }
}
