//! Exact consistency checking (paper §3.1).
//!
//! Lemma 3.1: a sample is consistent iff for every positive node `ν`,
//! `paths_G(ν) ⊄ paths_G(S⁻)` — some path of `ν` escapes the negatives'
//! coverage. Deciding this is PSPACE-complete (Lemma 3.2), which is the
//! paper's reason for the *learning with abstain* framework; we implement
//! the check exactly with the antichain inclusion algorithm so that small
//! and medium inputs can be validated, and expose the witnessing path of
//! each positive node (the *consistent path*, not necessarily minimal).

use crate::sample::Sample;
use pathlearn_automata::inclusion::nfa_included_in;
use pathlearn_automata::Word;
use pathlearn_graph::{GraphDb, NodeId};

/// Why a sample is inconsistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inconsistency {
    /// The positive node all of whose paths are covered by `S⁻`.
    pub node: NodeId,
}

impl std::fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "positive node {} has every path covered by the negative examples",
            self.node
        )
    }
}

impl std::error::Error for Inconsistency {}

/// Exact consistency check (Lemma 3.1). Returns, for each positive node,
/// a consistent path witnessing `paths_G(ν) ⊄ paths_G(S⁻)`, or the first
/// violating node.
///
/// Worst-case exponential (the problem is PSPACE-complete, Lemma 3.2);
/// the antichain pruning makes it practical on the graphs used in this
/// workspace's tests and experiments.
pub fn check_consistency(
    graph: &GraphDb,
    sample: &Sample,
) -> Result<Vec<(NodeId, Word)>, Inconsistency> {
    let negative_paths = graph.paths_nfa(sample.neg());
    let mut witnesses = Vec::with_capacity(sample.pos().len());
    for &node in sample.pos() {
        let node_paths = graph.paths_nfa(&[node]);
        match nfa_included_in(&node_paths, &negative_paths) {
            // Inclusion holds: every path covered ⇒ inconsistent.
            Ok(()) => return Err(Inconsistency { node }),
            // The counterexample is exactly a consistent path (and, being
            // produced by a canonical-order search, it is the SCP).
            Err(path) => witnesses.push((node, path)),
        }
    }
    Ok(witnesses)
}

/// Boolean form of [`check_consistency`].
pub fn is_consistent(graph: &GraphDb, sample: &Sample) -> bool {
    check_consistency(graph, sample).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_automata::Alphabet;
    use pathlearn_graph::graph::figure3_g0;
    use pathlearn_graph::GraphBuilder;

    #[test]
    fn g0_paper_sample_is_consistent_with_scp_witnesses() {
        let graph = figure3_g0();
        let sample = Sample::new()
            .positive(graph.node_id("v1").unwrap())
            .positive(graph.node_id("v3").unwrap())
            .negative(graph.node_id("v2").unwrap())
            .negative(graph.node_id("v7").unwrap());
        let witnesses = check_consistency(&graph, &sample).unwrap();
        let alphabet = graph.alphabet();
        // The canonical-order counterexamples are the SCPs: abc and c.
        assert_eq!(witnesses.len(), 2);
        assert_eq!(witnesses[0].1, alphabet.parse_word("a b c").unwrap());
        assert_eq!(witnesses[1].1, alphabet.parse_word("c").unwrap());
    }

    #[test]
    fn figure5_sample_is_inconsistent() {
        // Figure 5: the positive's infinitely many paths are all covered.
        let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(["a", "b"]));
        builder.add_edge("p", "a", "p2");
        builder.add_edge("p2", "b", "p2");
        builder.add_edge("n1", "a", "n1b");
        builder.add_edge("n1b", "b", "n1b");
        builder.add_node("n2");
        let graph = builder.build();
        let p = graph.node_id("p").unwrap();
        let sample = Sample::new()
            .positive(p)
            .negative(graph.node_id("n1").unwrap())
            .negative(graph.node_id("n2").unwrap());
        assert_eq!(
            check_consistency(&graph, &sample),
            Err(Inconsistency { node: p })
        );
        assert!(!is_consistent(&graph, &sample));
    }

    #[test]
    fn empty_negatives_always_consistent() {
        let graph = figure3_g0();
        let sample = Sample::new().positive(0).positive(3);
        let witnesses = check_consistency(&graph, &sample).unwrap();
        // ε is the witness for everyone.
        assert!(witnesses.iter().all(|(_, w)| w.is_empty()));
    }

    #[test]
    fn no_positives_always_consistent() {
        let graph = figure3_g0();
        let sample = Sample::new().negative(0);
        assert!(is_consistent(&graph, &sample));
    }

    #[test]
    fn consistency_iff_learner_can_succeed_unbounded() {
        // On G0 every consistent sample the paper uses admits learning;
        // check agreement between the exact check and a large-k learner.
        let graph = figure3_g0();
        let goal = crate::PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        let selected = goal.eval(&graph);
        let mut sample = Sample::new();
        for node in graph.nodes() {
            sample.add(node, selected.contains(node as usize));
        }
        assert!(is_consistent(&graph, &sample));
        let outcome = crate::Learner::with_fixed_k(8).learn(&graph, &sample);
        assert!(outcome.query.is_some());
    }
}
