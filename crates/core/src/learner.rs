//! Algorithm 1 — the `learner` (paper §3.2).
//!
//! ```text
//! Input:  graph G, sample S          Parameter: k (max SCP length)
//! Output: query q consistent with S, or null
//! 1: for ν ∈ S⁺ with ∃p ∈ Σ≤k. p ∈ paths_G(ν) \ paths_G(S⁻) do
//! 2:     P := P ∪ { min≤ (paths_G(ν) \ paths_G(S⁻)) }
//! 3: let A be the prefix tree acceptor for P
//! 4: while ∃s,s' ∈ A. L(A_{s'→s}) ∩ paths_G(S⁻) = ∅ do
//! 5:     A := A_{s'→s}
//! 6: if ∀ν ∈ S⁺. L(A) ∩ paths_G(ν) ≠ ∅ then
//! 7:     return query q represented by the DFA A
//! 8: return null
//! ```
//!
//! Lines 1–2 are the SCP search of [`pathlearn_graph::scp`]; line 3 is
//! [`pathlearn_automata::pta`]; lines 4–5 are RPNI red-blue merging with
//! the *graph* oracle (`L(candidate) ∩ paths_G(S⁻) = ∅`, a product
//! emptiness test); line 6 is one monadic evaluation.
//!
//! The `k` parameter follows §5.1: *"we start with k = 2; if for a given
//! k, the query learned using SCPs shorter than k does not select all
//! positive nodes, we increment k and iterate"* — [`KPolicy::Dynamic`].
//! Theorem 3.5 uses [`KPolicy::Fixed`] with `k = 2n+1`.

use crate::query::PathQuery;
use crate::sample::Sample;
use pathlearn_automata::product::dfa_nfa_intersection_is_empty;
use pathlearn_automata::rpni::{generalize, MergeOracle};
use pathlearn_automata::{Dfa, Nfa, Word};
use pathlearn_graph::{EvalPool, GraphDb, IntraScratch, NodeId, ScpFinder, StepPolicy};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Policy for the SCP length bound `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KPolicy {
    /// A fixed bound, as in the formal Algorithm 1 and Theorem 3.5.
    Fixed(usize),
    /// §5.1's empirical escalation: try `start`, grow by one while the
    /// learned query misses positives, up to `max` inclusive.
    Dynamic {
        /// Initial bound (the paper starts at 2).
        start: usize,
        /// Maximum bound (the paper observes values up to 4 in practice).
        max: usize,
    },
}

impl KPolicy {
    fn candidates(self) -> Vec<usize> {
        match self {
            KPolicy::Fixed(k) => vec![k],
            KPolicy::Dynamic { start, max } => (start..=max).collect(),
        }
    }
}

/// Configuration of [`Learner`].
#[derive(Clone, Copy, Debug)]
pub struct LearnerConfig {
    /// SCP length bound policy. Default: `Dynamic { start: 2, max: 5 }` —
    /// the paper observes k between 2 and 4 in practice (§3.3, §5.1).
    pub k: KPolicy,
    /// Normalize the output to its prefix-free form (§2). The prefix-free
    /// transform never breaks consistency: it shrinks the language while
    /// keeping, for every selected node, its minimal accepted path.
    /// Default: `true`.
    pub prefix_free_output: bool,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            k: KPolicy::Dynamic { start: 2, max: 5 },
            prefix_free_output: true,
        }
    }
}

/// The learning algorithm (Algorithm 1) with its configuration.
///
/// ```
/// use pathlearn_core::{Learner, PathQuery, Sample};
/// use pathlearn_graph::graph::figure3_g0;
///
/// // The paper's worked example (§3.2) on the Figure 3 graph G0.
/// let graph = figure3_g0();
/// let sample = Sample::new()
///     .positive(graph.node_id("v1").unwrap())
///     .positive(graph.node_id("v3").unwrap())
///     .negative(graph.node_id("v2").unwrap())
///     .negative(graph.node_id("v7").unwrap());
/// let outcome = Learner::with_fixed_k(3).learn(&graph, &sample);
/// let learned = outcome.query.expect("sample is consistent");
/// let target = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
/// assert!(learned.equivalent_language(&target));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Learner {
    /// Configuration used by [`Learner::learn`].
    pub config: LearnerConfig,
    /// Thread pool for the SCP fan-out (lines 1–2); sequential by
    /// default. See [`Learner::with_pool`].
    pool: EvalPool,
    /// Step-policy override from [`Learner::with_step_policy`], kept
    /// separately so it survives a later [`Learner::with_pool`] (the
    /// policy rides on the pool, which `with_pool` replaces).
    step_policy: Option<StepPolicy>,
}

/// Statistics reported alongside a learning run.
#[derive(Clone, Debug, Default)]
pub struct LearnStats {
    /// The largest `k` attempted.
    pub k_used: usize,
    /// The SCPs selected per positive node on the successful attempt.
    pub scps: Vec<(NodeId, Word)>,
    /// Positive nodes for which no SCP of length ≤ k exists (they must be
    /// re-covered by the generalization or the run abstains).
    pub nodes_without_scp: Vec<NodeId>,
    /// PTA size before generalization.
    pub pta_states: usize,
    /// Automaton size after generalization.
    pub generalized_states: usize,
    /// Wall-clock duration of the whole `learn` call.
    pub duration: Duration,
}

/// Result of a learning run: the learned query, or `None` for the paper's
/// `null` ("not enough examples / abstain"), plus statistics.
#[derive(Clone, Debug)]
pub struct LearnOutcome {
    /// The learned consistent query, if one was constructed.
    pub query: Option<PathQuery>,
    /// Run statistics.
    pub stats: LearnStats,
}

/// Merge oracle for Algorithm 1 line 4: a candidate is consistent iff its
/// language does not intersect `paths_G(S⁻)`.
struct GraphNegativesOracle {
    negative_paths: Nfa,
}

impl MergeOracle for GraphNegativesOracle {
    fn is_consistent(&mut self, candidate: &Dfa) -> bool {
        dfa_nfa_intersection_is_empty(candidate, &self.negative_paths)
    }
}

impl Learner {
    /// Creates a learner with an explicit configuration.
    pub fn with_config(config: LearnerConfig) -> Self {
        Learner {
            config,
            pool: EvalPool::sequential(),
            step_policy: None,
        }
    }

    /// Creates a learner with a fixed `k` (formal Algorithm 1).
    pub fn with_fixed_k(k: usize) -> Self {
        Self::with_config(LearnerConfig {
            k: KPolicy::Fixed(k),
            ..LearnerConfig::default()
        })
    }

    /// Fans the per-positive-node SCP searches (Algorithm 1 lines 1–2)
    /// out over `pool`, and routes the line-6 whole-graph evaluation
    /// through the pool's intra-query parallel evaluator
    /// ([`EvalPool::eval_monadic`]). Each SCP thread gets its **own**
    /// [`ScpFinder`] (the memo caches are not shared across threads), and
    /// the outcome — learned query and statistics — is bit-identical to
    /// the sequential learner: SCPs are a pure function of
    /// `(graph, S⁻, node, k)`, results are reassembled in sample order,
    /// and the intra-query evaluator's level merges are deterministic
    /// OR-reductions.
    pub fn with_pool(mut self, pool: EvalPool) -> Self {
        self.pool = match self.step_policy {
            // An explicit with_step_policy survives a later with_pool.
            Some(policy) => pool.with_step_policy(policy),
            None => pool,
        };
        self
    }

    /// Sets the step-kernel policy ([`StepPolicy`], default
    /// [`StepPolicy::Auto`]) applied by every line-6 whole-graph
    /// evaluation this learner issues — the knob behind the
    /// masked-kernel ablation. The learned query and statistics are
    /// bit-identical under every policy; only the per-`(level, symbol)`
    /// step execution (skip / masked / plain kernel) changes. Order-
    /// independent with [`Learner::with_pool`]: the policy is re-applied
    /// to any pool installed later.
    pub fn with_step_policy(mut self, policy: StepPolicy) -> Self {
        self.step_policy = Some(policy);
        self.pool = self.pool.with_step_policy(policy);
        self
    }

    /// The configured evaluation pool.
    pub fn pool(&self) -> &EvalPool {
        &self.pool
    }

    /// Runs Algorithm 1 on `(graph, sample)`.
    ///
    /// Sound with abstain (Definition 3.4): any returned query is
    /// consistent with the sample; `None` means no consistent query could
    /// be built from SCPs of length ≤ k.
    pub fn learn(&self, graph: &GraphDb, sample: &Sample) -> LearnOutcome {
        let start_time = Instant::now();
        let mut stats = LearnStats::default();

        // The negative-side determinization caches depend only on S⁻, so
        // they are shared across all k attempts (and across the positives
        // within each attempt). One finder per fan-out thread; the
        // sequential path keeps exactly one.
        let fan_out = if self.pool.is_parallel() {
            self.pool.threads().min(sample.pos().len()).max(1)
        } else {
            1
        };
        let mut finders: Vec<ScpFinder<'_>> = (0..fan_out)
            .map(|_| ScpFinder::new(graph, sample.neg()))
            .collect();
        // One line-6 evaluation scratch for the whole run: attempts across
        // k share the buffers, so only the first evaluation allocates.
        let mut eval_scratch = IntraScratch::new();
        for k in self.config.k.candidates() {
            stats.k_used = k;
            if let Some(query) = self.attempt(
                graph,
                sample,
                k,
                &mut finders,
                &mut eval_scratch,
                &mut stats,
            ) {
                stats.duration = start_time.elapsed();
                return LearnOutcome {
                    query: Some(query),
                    stats,
                };
            }
        }
        stats.duration = start_time.elapsed();
        LearnOutcome { query: None, stats }
    }

    /// Algorithm 1 lines 1–2 for every positive node: SCPs in sample
    /// order, fanned out over the pool when parallel. Each thread owns
    /// one of `finders` and claims positives **one at a time** from an
    /// atomic cursor — SCP searches vary wildly in cost (a node near the
    /// state budget can dwarf its neighbors), so dynamic claiming keeps
    /// every thread busy where static chunks would serialize a chunk
    /// behind its slowest node. Results carry their index and are
    /// reassembled in sample order; `scp(node, k)` is a pure function of
    /// `(graph, S⁻, node, k)` — the per-finder memo caches only change
    /// how fast it returns — so the fan-out is bit-identical to the
    /// sequential loop.
    fn find_scps(
        &self,
        positives: &[NodeId],
        k: usize,
        finders: &mut [ScpFinder<'_>],
    ) -> Vec<Option<Word>> {
        match self.pool.pool() {
            Some(pool) if finders.len() > 1 && positives.len() > 1 => {
                let cursor = AtomicUsize::new(0);
                let cursor = &cursor;
                let mut parts: Vec<Vec<(usize, Option<Word>)>> =
                    (0..finders.len()).map(|_| Vec::new()).collect();
                pool.scope(|scope| {
                    for (finder, part) in finders.iter_mut().zip(parts.iter_mut()) {
                        scope.spawn(move |_| loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&node) = positives.get(index) else {
                                break;
                            };
                            part.push((index, finder.scp(node, k)));
                        });
                    }
                });
                let mut slots: Vec<Option<Option<Word>>> = vec![None; positives.len()];
                for (index, result) in parts.into_iter().flatten() {
                    slots[index] = Some(result);
                }
                slots
                    .into_iter()
                    .map(|slot| slot.expect("every positive claimed exactly once"))
                    .collect()
            }
            _ => {
                let finder = &mut finders[0];
                positives.iter().map(|&node| finder.scp(node, k)).collect()
            }
        }
    }

    /// One attempt with a fixed `k`; returns the query on success.
    fn attempt(
        &self,
        graph: &GraphDb,
        sample: &Sample,
        k: usize,
        finders: &mut [ScpFinder<'_>],
        eval_scratch: &mut IntraScratch,
        stats: &mut LearnStats,
    ) -> Option<PathQuery> {
        // Lines 1–2: select SCPs against the shared negative-side caches.
        let mut scps: Vec<Word> = Vec::new();
        stats.scps.clear();
        stats.nodes_without_scp.clear();
        for (&node, path) in sample
            .pos()
            .iter()
            .zip(self.find_scps(sample.pos(), k, finders))
        {
            match path {
                Some(path) => {
                    stats.scps.push((node, path.clone()));
                    scps.push(path);
                }
                None => stats.nodes_without_scp.push(node),
            }
        }

        // Line 3: prefix tree acceptor of P.
        let pta = pathlearn_automata::pta::build_pta(&scps, graph.alphabet().len());
        stats.pta_states = pta.num_states();

        // Lines 4–5: generalize by state merging while no negative path is
        // accepted.
        let mut oracle = GraphNegativesOracle {
            negative_paths: graph.paths_nfa(sample.neg()),
        };
        debug_assert!(
            oracle.is_consistent(&pta),
            "PTA of SCPs must be consistent by construction"
        );
        let generalized = generalize(&pta, &mut oracle);
        stats.generalized_states = generalized.num_states();

        // Line 6: does the query select every positive node? One whole-
        // graph monadic evaluation — the single-huge-query shape — so it
        // goes through the pool's intra-query parallel evaluator (the
        // sequential evaluator when the pool is sequential; results are
        // bit-identical either way), with the run's reused scratch.
        let selected = self
            .pool
            .eval_monadic_with(eval_scratch, &generalized, graph);
        if sample
            .pos()
            .iter()
            .any(|&node| !selected.contains(node as usize))
        {
            return None;
        }

        let query = if self.config.prefix_free_output {
            PathQuery::from_dfa(&generalized.make_prefix_free())
        } else {
            PathQuery::from_dfa(&generalized)
        };
        debug_assert!(
            is_consistent_with(&query, graph, sample),
            "learner must be sound: returned query is consistent"
        );
        Some(query)
    }
}

/// Checks that `query` is consistent with `sample` on `graph` (selects all
/// positives, no negatives) — the soundness condition of Definition 3.4.
pub fn is_consistent_with(query: &PathQuery, graph: &GraphDb, sample: &Sample) -> bool {
    let selected = query.eval(graph);
    sample.pos().iter().all(|&n| selected.contains(n as usize))
        && sample.neg().iter().all(|&n| !selected.contains(n as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_automata::Alphabet;
    use pathlearn_graph::graph::figure3_g0;
    use pathlearn_graph::GraphBuilder;

    fn g0_sample(graph: &GraphDb) -> Sample {
        Sample::new()
            .positive(graph.node_id("v1").unwrap())
            .positive(graph.node_id("v3").unwrap())
            .negative(graph.node_id("v2").unwrap())
            .negative(graph.node_id("v7").unwrap())
    }

    #[test]
    fn step_policy_does_not_change_the_learned_query() {
        // The step-kernel policy is pure execution strategy: the learned
        // query (and its abstain/accept verdict) must be identical under
        // every policy, sequential and pooled alike.
        let graph = figure3_g0();
        let sample = g0_sample(&graph);
        let baseline = Learner::with_fixed_k(3).learn(&graph, &sample);
        let baseline_query = baseline.query.expect("consistent query exists");
        for policy in StepPolicy::ALL {
            for threads in [1, 2] {
                let outcome = Learner::with_fixed_k(3)
                    .with_pool(EvalPool::new(threads))
                    .with_step_policy(policy)
                    .learn(&graph, &sample);
                let query = outcome.query.expect("consistent query exists");
                assert!(
                    query.equivalent_language(&baseline_query),
                    "{policy:?} at {threads} threads learned {}",
                    query.display(graph.alphabet())
                );
            }
        }
        // The policy survives in either builder order: with_pool after
        // with_step_policy must not silently reset it.
        let learner = Learner::with_fixed_k(3)
            .with_step_policy(StepPolicy::Plain)
            .with_pool(EvalPool::new(2));
        assert_eq!(learner.pool().step_policy(), StepPolicy::Plain);
        let learner = Learner::with_fixed_k(3)
            .with_pool(EvalPool::new(2))
            .with_step_policy(StepPolicy::Masked);
        assert_eq!(learner.pool().step_policy(), StepPolicy::Masked);
    }

    #[test]
    fn paper_worked_example_learns_ab_star_c() {
        // §3.2 end-to-end: SCPs {abc, c} → PTA (Figure 6a) → merges →
        // (a·b)*·c (Figure 6b).
        let graph = figure3_g0();
        let sample = g0_sample(&graph);
        let outcome = Learner::with_fixed_k(3).learn(&graph, &sample);
        let query = outcome.query.expect("consistent query exists");
        let target = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        assert!(
            query.equivalent_language(&target),
            "learned {}",
            query.display(graph.alphabet())
        );
        // Stats reflect the run: two SCPs, PTA of {abc, c} has 5 states.
        assert_eq!(outcome.stats.scps.len(), 2);
        assert_eq!(outcome.stats.pta_states, 5);
        assert_eq!(outcome.stats.generalized_states, 3);
        assert!(outcome.stats.nodes_without_scp.is_empty());
    }

    #[test]
    fn dynamic_k_escalates_from_two() {
        // ν1's SCP needs k=3; the dynamic policy finds it.
        let graph = figure3_g0();
        let sample = g0_sample(&graph);
        let learner = Learner::with_config(LearnerConfig {
            k: KPolicy::Dynamic { start: 2, max: 4 },
            prefix_free_output: true,
        });
        let outcome = learner.learn(&graph, &sample);
        assert!(outcome.query.is_some());
        assert_eq!(outcome.stats.k_used, 3);
    }

    #[test]
    fn k_too_small_abstains() {
        let graph = figure3_g0();
        let sample = g0_sample(&graph);
        let outcome = Learner::with_fixed_k(2).learn(&graph, &sample);
        // With k=2 the SCP abc of ν1 is invisible; generalizing {c} gives
        // the query c, which does not select ν1 → abstain (null).
        assert!(outcome.query.is_none());
        assert_eq!(outcome.stats.nodes_without_scp.len(), 1);
    }

    #[test]
    fn inconsistent_sample_abstains() {
        // Figure 5: positive node all of whose paths are covered.
        let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(["a", "b"]));
        builder.add_edge("p", "a", "p2");
        builder.add_edge("p2", "b", "p2");
        builder.add_edge("n1", "a", "n1b");
        builder.add_edge("n1b", "b", "n1b");
        builder.add_node("n2");
        let graph = builder.build();
        let sample = Sample::new()
            .positive(graph.node_id("p").unwrap())
            .negative(graph.node_id("n1").unwrap())
            .negative(graph.node_id("n2").unwrap());
        let outcome = Learner::default().learn(&graph, &sample);
        assert!(outcome.query.is_none());
    }

    #[test]
    fn empty_sample_learns_empty_query() {
        let graph = figure3_g0();
        let outcome = Learner::default().learn(&graph, &Sample::new());
        let query = outcome.query.expect("vacuously consistent");
        assert!(query.eval(&graph).is_empty());
    }

    #[test]
    fn no_negatives_learns_epsilon() {
        // With S⁻ = ∅ every SCP is ε and the learned query selects all.
        let graph = figure3_g0();
        let sample = Sample::new().positive(graph.node_id("v5").unwrap());
        let outcome = Learner::default().learn(&graph, &sample);
        let query = outcome.query.unwrap();
        assert_eq!(query.eval(&graph).len(), graph.num_nodes());
    }

    #[test]
    fn figure8_learns_equivalent_query() {
        // §3.3: on a non-characteristic graph the learner returns a query
        // equivalent on the graph (indistinguishable by the user). Graph:
        // + --a--> + --b--> (-) … target (a·b)*·c has no c-edge anywhere;
        // Figure 8: nodes labeled for goal (a·b)*·c, learner returns `a`.
        let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(["a", "b", "c"]));
        builder.add_edge("x1", "a", "x2");
        builder.add_edge("x2", "b", "x1");
        builder.add_edge("x1", "c", "x3");
        builder.add_edge("x2", "a", "x4");
        let graph = builder.build();
        let goal = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        let selected = goal.eval(&graph);
        let mut sample = Sample::new();
        for node in graph.nodes() {
            sample.add(node, selected.contains(node as usize));
        }
        let outcome = Learner::default().learn(&graph, &sample);
        let learned = outcome.query.expect("consistent");
        // Equivalent on this graph even if not language-equal.
        assert_eq!(learned.eval(&graph), selected);
    }

    #[test]
    fn soundness_on_random_samples() {
        // Whatever the learner returns must be consistent (Definition 3.4
        // soundness); abstention is also legal.
        let graph = figure3_g0();
        let goal = PathQuery::parse("(a+b)*·c", graph.alphabet()).unwrap();
        let selected = goal.eval(&graph);
        let mut sample = Sample::new();
        for node in graph.nodes() {
            sample.add(node, selected.contains(node as usize));
        }
        let outcome = Learner::default().learn(&graph, &sample);
        if let Some(query) = outcome.query {
            assert!(is_consistent_with(&query, &graph, &sample));
        }
    }

    #[test]
    fn prefix_free_output_is_prefix_free() {
        let graph = figure3_g0();
        let sample = g0_sample(&graph);
        let outcome = Learner::default().learn(&graph, &sample);
        assert!(outcome.query.unwrap().is_prefix_free());
    }

    #[test]
    fn parallel_scp_fanout_matches_sequential_learner() {
        // The same samples through sequential and {2, 4}-thread learners:
        // learned query, SCP list, and every other stat must be
        // bit-identical (duration aside).
        let graph = figure3_g0();
        let samples = [
            g0_sample(&graph),
            Sample::new()
                .positive(graph.node_id("v1").unwrap())
                .positive(graph.node_id("v3").unwrap())
                .positive(graph.node_id("v5").unwrap())
                .positive(graph.node_id("v6").unwrap())
                .negative(graph.node_id("v2").unwrap()),
            Sample::new().positive(graph.node_id("v5").unwrap()),
            Sample::new(),
        ];
        for sample in &samples {
            let sequential = Learner::default().learn(&graph, sample);
            for threads in [2, 4] {
                let parallel = Learner::default()
                    .with_pool(EvalPool::new(threads))
                    .learn(&graph, sample);
                assert_eq!(
                    parallel.query.as_ref().map(|q| q.eval(&graph)),
                    sequential.query.as_ref().map(|q| q.eval(&graph)),
                    "{threads} threads"
                );
                assert_eq!(parallel.stats.scps, sequential.stats.scps);
                assert_eq!(
                    parallel.stats.nodes_without_scp,
                    sequential.stats.nodes_without_scp
                );
                assert_eq!(parallel.stats.k_used, sequential.stats.k_used);
                assert_eq!(parallel.stats.pta_states, sequential.stats.pta_states);
                assert_eq!(
                    parallel.stats.generalized_states,
                    sequential.stats.generalized_states
                );
            }
        }
    }

    #[test]
    fn stats_duration_is_populated() {
        let graph = figure3_g0();
        let outcome = Learner::default().learn(&graph, &g0_sample(&graph));
        assert!(outcome.stats.duration.as_nanos() > 0);
    }
}
