//! The interactive learning scenario (paper §4).
//!
//! Instead of a fixed sample, the system repeatedly **chooses a node**,
//! asks the user to label it, relearns, and halts once enough knowledge
//! has been accumulated (Figure 9). The modules:
//!
//! * [`certain`] — certain nodes `Cert⁺`/`Cert⁻` and informativeness
//!   (Lemma 4.1), implemented exactly with antichain inclusion (the
//!   problem is PSPACE-complete, Lemma 4.2), plus the practical
//!   *k-informative* approximation of §4.2;
//! * [`strategy`] — the paper's two practical strategies: `kR` (random
//!   k-informative node) and `kS` (k-informative node with the fewest
//!   uncovered k-paths);
//! * [`session`] — the Figure 9 interaction loop with pluggable label
//!   oracles and halt conditions, and the experiment entry point used to
//!   reproduce Table 2.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod certain;
pub mod session;
pub mod strategy;

pub use session::{HaltReason, InteractiveConfig, InteractiveSession, SessionResult};
pub use strategy::StrategyKind;
