//! Node-proposal strategies (paper §4.2).
//!
//! A strategy `Υ` maps `(G, S)` to the next node to present to the user.
//! Because exact informativeness is PSPACE-complete (Lemma 4.2), the
//! paper proposes two practical strategies built on the *k-informative*
//! test:
//!
//! * **kR** — a uniformly random k-informative node;
//! * **kS** — the k-informative node with the **smallest** number of
//!   uncovered k-paths, *"favoring the nodes for which computing the SCPs
//!   is easier"*.
//!
//! Both escalate `k` when no k-informative node exists (§5.1).

use pathlearn_core::Sample;
use pathlearn_graph::{GraphDb, NodeId, ScpFinder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Which strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrategyKind {
    /// `kR`: random k-informative node.
    KRandom,
    /// `kS`: k-informative node with the fewest uncovered k-paths.
    KSmallest,
    /// The *ideal* strategy of §4.2 before its intractability result
    /// (Lemma 4.2): propose only **exactly informative** nodes, decided
    /// with the antichain inclusion algorithm (worst-case exponential —
    /// use on small graphs only; the paper's practical strategies exist
    /// precisely because this one is PSPACE-hard).
    ExactInformative,
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyKind::KRandom => write!(f, "kR"),
            StrategyKind::KSmallest => write!(f, "kS"),
            StrategyKind::ExactInformative => write!(f, "exact"),
        }
    }
}

/// Outcome of one strategy invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Proposal {
    /// Present this node to the user (found with the recorded `k`).
    Node {
        /// The proposed node.
        node: NodeId,
        /// The `k` at which it was found informative.
        k: usize,
    },
    /// No k-informative node exists for any `k ≤ k_max`.
    Exhausted,
}

/// Proposes the next node. `candidates` must be the current unlabeled
/// nodes; the slice is consulted in the given order for `kR` (pre-shuffle
/// it with the session RNG) and exhaustively for `kS`.
///
/// The count cap bounds the per-node work of `kS`; counts above the cap
/// compare equal, which only blurs ties among *highly* informative nodes
/// (the strategy prefers low counts).
// A flat parameter list keeps the strategy entry point trivially callable
// from the session loop and the benches; a params struct would only add
// indirection for two extra integers.
#[allow(clippy::too_many_arguments)]
pub fn propose(
    kind: StrategyKind,
    graph: &GraphDb,
    sample: &Sample,
    candidates: &[NodeId],
    k_start: usize,
    k_max: usize,
    count_cap: usize,
    rng: &mut StdRng,
) -> Proposal {
    if kind == StrategyKind::ExactInformative {
        // Order candidates randomly, return the first exactly-informative
        // one. `k` reported as 0 (the exact test has no bound).
        let mut order: Vec<NodeId> = candidates.to_vec();
        order.shuffle(rng);
        for node in order {
            if crate::certain::is_informative(graph, sample, node) {
                return Proposal::Node { node, k: 0 };
            }
        }
        return Proposal::Exhausted;
    }

    let mut finder = ScpFinder::new(graph, sample.neg());
    for k in k_start..=k_max {
        match kind {
            StrategyKind::ExactInformative => unreachable!("handled above"),
            StrategyKind::KRandom => {
                let mut order: Vec<NodeId> = candidates.to_vec();
                order.shuffle(rng);
                for node in order {
                    if finder.is_k_informative(node, k) {
                        return Proposal::Node { node, k };
                    }
                }
            }
            StrategyKind::KSmallest => {
                let mut best: Option<(usize, NodeId)> = None;
                for &node in candidates {
                    let count = finder.count_uncovered(node, k, count_cap);
                    if count == 0 {
                        continue; // not k-informative
                    }
                    let better = match best {
                        None => true,
                        Some((best_count, _)) => count < best_count,
                    };
                    if better {
                        best = Some((count, node));
                        if count == 1 {
                            break; // cannot do better
                        }
                    }
                }
                if let Some((_, node)) = best {
                    return Proposal::Node { node, k };
                }
            }
        }
    }
    Proposal::Exhausted
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_graph::graph::figure3_g0;
    use rand::SeedableRng;

    fn unlabeled(graph: &GraphDb, sample: &Sample) -> Vec<NodeId> {
        graph.nodes().filter(|&n| !sample.is_labeled(n)).collect()
    }

    #[test]
    fn kr_proposes_some_informative_node() {
        let graph = figure3_g0();
        let sample = Sample::new()
            .negative(graph.node_id("v2").unwrap())
            .negative(graph.node_id("v7").unwrap());
        let mut rng = StdRng::seed_from_u64(7);
        let candidates = unlabeled(&graph, &sample);
        let proposal = propose(
            StrategyKind::KRandom,
            &graph,
            &sample,
            &candidates,
            2,
            4,
            1000,
            &mut rng,
        );
        let Proposal::Node { node, k } = proposal else {
            panic!("expected a node");
        };
        let mut finder = ScpFinder::new(&graph, sample.neg());
        assert!(finder.is_k_informative(node, k));
    }

    #[test]
    fn ks_prefers_fewest_uncovered_paths() {
        let graph = figure3_g0();
        let sample = Sample::new()
            .negative(graph.node_id("v2").unwrap())
            .negative(graph.node_id("v7").unwrap());
        let mut rng = StdRng::seed_from_u64(7);
        let candidates = unlabeled(&graph, &sample);
        let proposal = propose(
            StrategyKind::KSmallest,
            &graph,
            &sample,
            &candidates,
            2,
            4,
            10_000,
            &mut rng,
        );
        let Proposal::Node { node, k } = proposal else {
            panic!("expected a node");
        };
        // Verify minimality over all candidates at that k.
        let mut finder = ScpFinder::new(&graph, sample.neg());
        let chosen = finder.count_uncovered(node, k, 10_000);
        assert!(chosen > 0);
        for &other in &candidates {
            let count = finder.count_uncovered(other, k, 10_000);
            if count > 0 {
                assert!(
                    chosen <= count,
                    "node {node} ({chosen}) vs {other} ({count})"
                );
            }
        }
    }

    #[test]
    fn exact_strategy_proposes_only_informative_nodes() {
        let graph = figure3_g0();
        let sample = Sample::new()
            .positive(graph.node_id("v1").unwrap())
            .positive(graph.node_id("v3").unwrap())
            .negative(graph.node_id("v2").unwrap())
            .negative(graph.node_id("v7").unwrap());
        let mut rng = StdRng::seed_from_u64(5);
        let candidates = unlabeled(&graph, &sample);
        match propose(
            StrategyKind::ExactInformative,
            &graph,
            &sample,
            &candidates,
            2,
            4,
            1000,
            &mut rng,
        ) {
            Proposal::Node { node, .. } => {
                assert!(crate::certain::is_informative(&graph, &sample, node));
                // With this sample, only v6 is informative (certain.rs tests).
                assert_eq!(graph.node_name(node), "v6");
            }
            Proposal::Exhausted => panic!("v6 is informative"),
        }
    }

    #[test]
    fn exact_strategy_exhausts_when_all_certain() {
        // Figure 10-style setup where the only unlabeled nodes are certain.
        use pathlearn_automata::Alphabet;
        use pathlearn_graph::GraphBuilder;
        let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(["a", "b"]));
        builder.add_edge("neg", "a", "sink");
        builder.add_edge("pos", "a", "sink");
        builder.add_edge("pos", "b", "sink");
        builder.add_edge("u", "a", "sink");
        builder.add_edge("u", "b", "sink");
        let graph = builder.build();
        let sample = Sample::new()
            .positive(graph.node_id("pos").unwrap())
            .negative(graph.node_id("neg").unwrap());
        let candidates: Vec<NodeId> = vec![
            graph.node_id("u").unwrap(),    // certain positive
            graph.node_id("sink").unwrap(), // certain negative
        ];
        let mut rng = StdRng::seed_from_u64(5);
        let proposal = propose(
            StrategyKind::ExactInformative,
            &graph,
            &sample,
            &candidates,
            2,
            4,
            1000,
            &mut rng,
        );
        assert_eq!(proposal, Proposal::Exhausted);
    }

    #[test]
    fn exhausted_when_no_informative_nodes() {
        // All nodes' short paths covered: label everything negative except
        // a positive that is itself consistent… simpler: sample covering
        // everything and candidates empty.
        let graph = figure3_g0();
        let sample = Sample::new();
        let mut rng = StdRng::seed_from_u64(1);
        let proposal = propose(
            StrategyKind::KRandom,
            &graph,
            &sample,
            &[],
            2,
            4,
            1000,
            &mut rng,
        );
        assert_eq!(proposal, Proposal::Exhausted);
    }

    #[test]
    fn k_escalation_finds_deeper_informative_nodes() {
        // Build a graph where the only uncovered path has length 3.
        use pathlearn_automata::Alphabet;
        use pathlearn_graph::GraphBuilder;
        let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(["a", "b"]));
        builder.add_edge("x", "a", "x1");
        builder.add_edge("x1", "a", "x2");
        builder.add_edge("x2", "b", "x3");
        // negative covers a, aa (and ε) but not aab:
        builder.add_edge("n", "a", "n1");
        builder.add_edge("n1", "a", "n2");
        let graph = builder.build();
        let sample = Sample::new().negative(graph.node_id("n").unwrap());
        let x = graph.node_id("x").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let proposal = propose(
            StrategyKind::KRandom,
            &graph,
            &sample,
            &[x],
            2,
            4,
            1000,
            &mut rng,
        );
        assert_eq!(proposal, Proposal::Node { node: x, k: 3 });
    }
}
