//! The interaction loop of Figure 9.
//!
//! ```text
//! input: graph G                     sample S := ∅
//! while halt condition not satisfied:
//!     choose node ν w.r.t. strategy Υ          (3)
//!     show ν's neighborhood, ask for its label (4,5)
//!     S := S ∪ {(ν, α)}; propagate; relearn    (6)
//! output: learned query
//! ```
//!
//! The user is abstracted by a [`LabelOracle`]; the experiments simulate
//! her with [`QueryOracle`], which labels nodes according to a goal query
//! (§5.3). The default halt condition is the paper's strongest one —
//! *the learned query selects exactly the same node set as the goal* (an
//! F1 score of 1, "indistinguishable by the user") — with a safety cap on
//! the number of interactions.

use crate::strategy::{propose, Proposal, StrategyKind};
use pathlearn_automata::BitSet;
use pathlearn_core::{EvalPool, KPolicy, Learner, LearnerConfig, PathQuery, Sample};
use pathlearn_graph::{GraphDb, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Supplies labels — the "user" of Figure 9.
pub trait LabelOracle {
    /// Labels a node: `true` = positive, `false` = negative.
    fn label(&mut self, node: NodeId) -> bool;
}

/// Simulated user answering according to a goal query (§5.3 experiments).
#[derive(Clone, Debug)]
pub struct QueryOracle {
    selected: BitSet,
}

impl QueryOracle {
    /// Precomputes the goal query's selection on the graph.
    pub fn new(goal: &PathQuery, graph: &GraphDb) -> Self {
        QueryOracle {
            selected: goal.eval(graph),
        }
    }

    /// The goal's selected node set.
    pub fn selected(&self) -> &BitSet {
        &self.selected
    }
}

impl LabelOracle for QueryOracle {
    fn label(&mut self, node: NodeId) -> bool {
        self.selected.contains(node as usize)
    }
}

/// Configuration of an interactive session.
#[derive(Clone, Copy, Debug)]
pub struct InteractiveConfig {
    /// Node-proposal strategy (`kR` or `kS`).
    pub strategy: StrategyKind,
    /// Initial k for the k-informative test (paper: 2).
    pub k_start: usize,
    /// Maximum k before declaring exhaustion (paper observes ≤ 4, which
    /// is the default; deep k on large graphs makes the k-informative
    /// test exponential).
    pub k_max: usize,
    /// Cap on uncovered-path counting for `kS`.
    pub count_cap: usize,
    /// Safety cap on interactions (0 = number of graph nodes).
    pub max_interactions: usize,
    /// RNG seed (strategies and tie-breaking are fully deterministic
    /// given the seed).
    pub seed: u64,
    /// Learner configuration used after every label.
    pub learner: LearnerConfig,
    /// Worker threads for the per-interaction relearning: the learner's
    /// SCP fan-out and the intra-query parallel line-6 evaluation both
    /// run on an [`EvalPool`] of this size. `1` (the default) is strictly
    /// sequential — no thread is ever spawned — and results are
    /// bit-identical at every thread count.
    pub threads: usize,
}

impl Default for InteractiveConfig {
    fn default() -> Self {
        InteractiveConfig {
            strategy: StrategyKind::KRandom,
            k_start: 2,
            k_max: 4,
            count_cap: 10_000,
            max_interactions: 0,
            seed: 42,
            learner: LearnerConfig {
                k: KPolicy::Dynamic { start: 2, max: 5 },
                prefix_free_output: true,
            },
            threads: 1,
        }
    }
}

/// Why the session stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HaltReason {
    /// The halt condition was satisfied (e.g. goal reached).
    ConditionMet,
    /// No k-informative node remains for any k ≤ k_max.
    NoInformativeNodes,
    /// The interaction cap was hit.
    MaxInteractions,
}

/// One user interaction.
#[derive(Clone, Debug)]
pub struct InteractionRecord {
    /// The node presented to the user.
    pub node: NodeId,
    /// The label the user gave.
    pub label: bool,
    /// The k at which the node was found informative.
    pub k: usize,
    /// Wall-clock time of this round (node choice + relearning) — the
    /// paper's "time between interactions".
    pub duration: Duration,
}

/// Result of a completed session.
#[derive(Clone, Debug)]
pub struct SessionResult {
    /// The accumulated sample.
    pub sample: Sample,
    /// The last learned query (if any learning attempt succeeded).
    pub query: Option<PathQuery>,
    /// Per-interaction records.
    pub interactions: Vec<InteractionRecord>,
    /// Why the loop stopped.
    pub halt: HaltReason,
}

impl SessionResult {
    /// Number of labels the user provided.
    pub fn labels_used(&self) -> usize {
        self.interactions.len()
    }

    /// Labels as a fraction of graph nodes (Table 2's "% of interactions").
    pub fn label_fraction(&self, graph: &GraphDb) -> f64 {
        self.labels_used() as f64 / graph.num_nodes().max(1) as f64
    }

    /// Mean time between interactions (Table 2's last column).
    pub fn mean_interaction_time(&self) -> Duration {
        if self.interactions.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.interactions.iter().map(|r| r.duration).sum();
        total / self.interactions.len() as u32
    }
}

/// The interaction loop (Figure 9).
///
/// ```
/// use pathlearn_core::PathQuery;
/// use pathlearn_graph::graph::figure3_g0;
/// use pathlearn_interactive::session::{InteractiveConfig, InteractiveSession};
///
/// let graph = figure3_g0();
/// let goal = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
/// let session = InteractiveSession::new(&graph, InteractiveConfig::default());
/// // A simulated user labels proposed nodes until the learned query is
/// // indistinguishable from the goal (F1 = 1).
/// let result = session.run_against_goal(&goal);
/// assert!(result.labels_used() <= graph.num_nodes());
/// assert_eq!(result.query.unwrap().eval(&graph), goal.eval(&graph));
/// ```
pub struct InteractiveSession<'g> {
    graph: &'g GraphDb,
    config: InteractiveConfig,
    /// Built once from [`InteractiveConfig::threads`] and shared by every
    /// relearning round of this session.
    pool: EvalPool,
}

impl<'g> InteractiveSession<'g> {
    /// Creates a session on a graph. A [`InteractiveConfig::threads`] > 1
    /// spawns the session's evaluation pool here, once, rather than per
    /// interaction.
    pub fn new(graph: &'g GraphDb, config: InteractiveConfig) -> Self {
        let pool = EvalPool::new(config.threads);
        InteractiveSession {
            graph,
            config,
            pool,
        }
    }

    /// Runs until `halt(learned, sample)` returns `true`, the strategy is
    /// exhausted, or the interaction cap is reached.
    pub fn run(
        &self,
        oracle: &mut dyn LabelOracle,
        mut halt: impl FnMut(Option<&PathQuery>, &Sample) -> bool,
    ) -> SessionResult {
        let cap = if self.config.max_interactions == 0 {
            self.graph.num_nodes()
        } else {
            self.config.max_interactions
        };
        let learner = Learner::with_config(self.config.learner).with_pool(self.pool.clone());
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut sample = Sample::new();
        let mut query: Option<PathQuery> = None;
        let mut interactions = Vec::new();

        if halt(query.as_ref(), &sample) {
            return SessionResult {
                sample,
                query,
                interactions,
                halt: HaltReason::ConditionMet,
            };
        }

        loop {
            if interactions.len() >= cap {
                return SessionResult {
                    sample,
                    query,
                    interactions,
                    halt: HaltReason::MaxInteractions,
                };
            }
            let round_start = Instant::now();

            // (3) choose a node w.r.t. the strategy.
            let candidates: Vec<NodeId> = self
                .graph
                .nodes()
                .filter(|&n| !sample.is_labeled(n))
                .collect();
            let proposal = propose(
                self.config.strategy,
                self.graph,
                &sample,
                &candidates,
                self.config.k_start,
                self.config.k_max,
                self.config.count_cap,
                &mut rng,
            );
            let Proposal::Node { node, k } = proposal else {
                return SessionResult {
                    sample,
                    query,
                    interactions,
                    halt: HaltReason::NoInformativeNodes,
                };
            };

            // (4,5) the user inspects the neighborhood and labels the node.
            let label = oracle.label(node);
            sample.add(node, label);

            // (6) relearn from all labels.
            let outcome = learner.learn(self.graph, &sample);
            if outcome.query.is_some() {
                query = outcome.query;
            }

            interactions.push(InteractionRecord {
                node,
                label,
                k,
                duration: round_start.elapsed(),
            });

            if halt(query.as_ref(), &sample) {
                return SessionResult {
                    sample,
                    query,
                    interactions,
                    halt: HaltReason::ConditionMet,
                };
            }
        }
    }

    /// Runs against a goal query with the paper's strongest halt
    /// condition: stop when the learned query selects **exactly** the
    /// goal's node set (F1 = 1; "the goal query and the learned query are
    /// indistinguishable by the user", §5.3).
    pub fn run_against_goal(&self, goal: &PathQuery) -> SessionResult {
        let goal_selection = goal.eval(self.graph);
        let mut oracle = QueryOracle {
            selected: goal_selection.clone(),
        };
        let graph = self.graph;
        self.run(&mut oracle, move |query, _sample| match query {
            Some(q) => q.eval(graph) == goal_selection,
            None => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_graph::graph::figure3_g0;

    #[test]
    fn interactive_learns_paper_query_on_g0() {
        let graph = figure3_g0();
        let goal = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        for strategy in [StrategyKind::KRandom, StrategyKind::KSmallest] {
            let session = InteractiveSession::new(
                &graph,
                InteractiveConfig {
                    strategy,
                    ..InteractiveConfig::default()
                },
            );
            let result = session.run_against_goal(&goal);
            assert_eq!(result.halt, HaltReason::ConditionMet, "{strategy}");
            let learned = result.query.as_ref().expect("learned a query");
            assert_eq!(learned.eval(&graph), goal.eval(&graph), "{strategy}");
            // Far fewer labels than nodes are needed… on 7 nodes the bound
            // is trivial, but the loop must terminate within the cap.
            assert!(result.labels_used() <= graph.num_nodes());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let graph = figure3_g0();
        let goal = PathQuery::parse("a", graph.alphabet()).unwrap();
        let run = |seed: u64| {
            let session = InteractiveSession::new(
                &graph,
                InteractiveConfig {
                    seed,
                    ..InteractiveConfig::default()
                },
            );
            let result = session.run_against_goal(&goal);
            result
                .interactions
                .iter()
                .map(|r| (r.node, r.label))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn session_is_identical_at_every_thread_count() {
        // The pool only accelerates relearning (SCP fan-out + intra-query
        // line-6 eval); proposals, labels, and the learned query must be
        // bit-identical across thread counts.
        let graph = figure3_g0();
        let goal = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        let run = |threads: usize| {
            let session = InteractiveSession::new(
                &graph,
                InteractiveConfig {
                    threads,
                    ..InteractiveConfig::default()
                },
            );
            let result = session.run_against_goal(&goal);
            (
                result
                    .interactions
                    .iter()
                    .map(|r| (r.node, r.label, r.k))
                    .collect::<Vec<_>>(),
                result.query.map(|q| q.eval(&graph)),
                result.halt,
            )
        };
        let sequential = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), sequential, "{threads} threads");
        }
    }

    #[test]
    fn epsilon_goal_halts_quickly() {
        // Goal ε selects everything; the first positive label yields ε.
        let graph = figure3_g0();
        let goal = PathQuery::parse("eps", graph.alphabet()).unwrap();
        let session = InteractiveSession::new(&graph, InteractiveConfig::default());
        let result = session.run_against_goal(&goal);
        assert_eq!(result.halt, HaltReason::ConditionMet);
        assert_eq!(result.labels_used(), 1);
    }

    #[test]
    fn max_interactions_cap() {
        let graph = figure3_g0();
        let session = InteractiveSession::new(
            &graph,
            InteractiveConfig {
                max_interactions: 2,
                ..InteractiveConfig::default()
            },
        );
        // Halt condition that never fires.
        let mut oracle =
            QueryOracle::new(&PathQuery::parse("a", graph.alphabet()).unwrap(), &graph);
        let result = session.run(&mut oracle, |_, _| false);
        assert_eq!(result.halt, HaltReason::MaxInteractions);
        assert_eq!(result.labels_used(), 2);
    }

    #[test]
    fn session_stats_populate() {
        let graph = figure3_g0();
        let goal = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
        let session = InteractiveSession::new(&graph, InteractiveConfig::default());
        let result = session.run_against_goal(&goal);
        assert!(result.label_fraction(&graph) > 0.0);
        assert!(result.mean_interaction_time() > Duration::ZERO);
        assert!(result.interactions.iter().all(|r| r.k >= 2));
    }
}
