//! Certain and informative nodes (paper §4.2).
//!
//! Given a consistent sample `S`, an unlabeled node is **certain** when
//! labeling it adds no information — every query consistent with `S`
//! agrees on it. Lemma 4.1 characterizes certainty through path-language
//! inclusions:
//!
//! * `ν ∈ Cert⁺(G,S)` iff some `ν' ∈ S⁺` has
//!   `paths_G(ν') ⊆ paths_G(S⁻) ∪ paths_G(ν)`;
//! * `ν ∈ Cert⁻(G,S)` iff `paths_G(ν) ⊆ paths_G(S⁻)`.
//!
//! A node is **informative** iff it is unlabeled and not certain.
//! Deciding informativeness is PSPACE-complete (Lemma 4.2); this module
//! implements the exact checks with the antichain inclusion algorithm and
//! the paper's practical **k-informative** under-approximation (`ν` has an
//! uncovered path of length ≤ k ⇒ `ν ∉ Cert⁻` ⇒ informative, provided it
//! is not certain-positive — see [`is_informative`] for the exact test).

use pathlearn_automata::inclusion::nfa_included_in;
use pathlearn_core::Sample;
use pathlearn_graph::{GraphDb, NodeId, ScpFinder};

/// Exact `ν ∈ Cert⁻(G, S)` (Lemma 4.1(2)): every path of `ν` is covered
/// by the negative examples. Worst-case exponential (PSPACE-complete).
pub fn is_certain_negative(graph: &GraphDb, sample: &Sample, node: NodeId) -> bool {
    let node_paths = graph.paths_nfa(&[node]);
    let negative_paths = graph.paths_nfa(sample.neg());
    nfa_included_in(&node_paths, &negative_paths).is_ok()
}

/// Exact `ν ∈ Cert⁺(G, S)` (Lemma 4.1(1)): some positive's paths are all
/// covered by `S⁻ ∪ {ν}`. Worst-case exponential (PSPACE-complete).
pub fn is_certain_positive(graph: &GraphDb, sample: &Sample, node: NodeId) -> bool {
    let mut union_sources: Vec<NodeId> = sample.neg().to_vec();
    union_sources.push(node);
    let union_paths = graph.paths_nfa(&union_sources);
    sample.pos().iter().any(|&positive| {
        let positive_paths = graph.paths_nfa(&[positive]);
        nfa_included_in(&positive_paths, &union_paths).is_ok()
    })
}

/// Exact informativeness: unlabeled and neither certain-positive nor
/// certain-negative. PSPACE-complete in general (Lemma 4.2); use
/// [`is_k_informative`] on large graphs.
pub fn is_informative(graph: &GraphDb, sample: &Sample, node: NodeId) -> bool {
    !sample.is_labeled(node)
        && !is_certain_negative(graph, sample, node)
        && !is_certain_positive(graph, sample, node)
}

/// The paper's practical test (§4.2): `ν` is **k-informative** iff it has
/// at least one path of length ≤ k not covered by a negative example.
/// k-informative implies `ν ∉ Cert⁻`; the converse may fail for small k.
pub fn is_k_informative(finder: &mut ScpFinder<'_>, node: NodeId, k: usize) -> bool {
    finder.is_k_informative(node, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_automata::Alphabet;
    use pathlearn_graph::graph::figure3_g0;
    use pathlearn_graph::GraphBuilder;

    /// Figure 10 of the paper: two labeled nodes and a certain node.
    /// Reconstruction: negative node covering a·b-ish paths, positive node
    /// selected via b, and an unlabeled node whose only escape is b — it
    /// must be certain-positive (the only prefix-free consistent query is
    /// `b`, which selects it).
    fn figure10() -> (pathlearn_graph::GraphDb, Sample, NodeId) {
        let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(["a", "b"]));
        // negative: covers {ε, a}
        builder.add_edge("neg", "a", "sink");
        // positive: paths {ε, a, b}
        builder.add_edge("pos", "a", "sink");
        builder.add_edge("pos", "b", "sink");
        // unlabeled: paths {ε, a, b}
        builder.add_edge("u", "a", "sink");
        builder.add_edge("u", "b", "sink");
        let graph = builder.build();
        let sample = Sample::new()
            .positive(graph.node_id("pos").unwrap())
            .negative(graph.node_id("neg").unwrap());
        let unlabeled = graph.node_id("u").unwrap();
        (graph, sample, unlabeled)
    }

    #[test]
    fn figure10_certain_positive() {
        let (graph, sample, unlabeled) = figure10();
        // paths(pos) = {ε,a,b} ⊆ paths(neg) ∪ paths(u) = {ε,a} ∪ {ε,a,b}.
        assert!(is_certain_positive(&graph, &sample, unlabeled));
        assert!(!is_certain_negative(&graph, &sample, unlabeled));
        assert!(!is_informative(&graph, &sample, unlabeled));
    }

    #[test]
    fn certain_negative_when_fully_covered() {
        let (graph, sample, _) = figure10();
        let sink = graph.node_id("sink").unwrap();
        // paths(sink) = {ε} ⊆ paths(neg): certain negative… wait, ε is
        // covered by any node, and sink ∈ q(G) only for ε-queries which
        // also select the negative. So sink is certainly negative.
        assert!(is_certain_negative(&graph, &sample, sink));
        assert!(!is_informative(&graph, &sample, sink));
    }

    #[test]
    fn labeled_nodes_are_not_informative() {
        let (graph, sample, _) = figure10();
        let pos = graph.node_id("pos").unwrap();
        let neg = graph.node_id("neg").unwrap();
        assert!(!is_informative(&graph, &sample, pos));
        assert!(!is_informative(&graph, &sample, neg));
    }

    #[test]
    fn g0_informative_nodes_with_paper_sample() {
        let graph = figure3_g0();
        let sample = Sample::new()
            .positive(graph.node_id("v1").unwrap())
            .positive(graph.node_id("v3").unwrap())
            .negative(graph.node_id("v2").unwrap())
            .negative(graph.node_id("v7").unwrap());
        // v4's only path is ε, covered by negatives ⇒ certain negative.
        let v4 = graph.node_id("v4").unwrap();
        assert!(is_certain_negative(&graph, &sample, v4));
        // v5 has paths {ε,a,b} all covered by ν2/ν7 ⇒ certain negative.
        let v5 = graph.node_id("v5").unwrap();
        assert!(is_certain_negative(&graph, &sample, v5));
        // v6 is still informative: the path b·b·a of v6 is not covered by
        // {ν2, ν7}, so a consistent query like c + b·b·a selects v6 while
        // the goal (a·b)*·c does not. (A characteristic sample pins down
        // the *learner's output*, not the label of every node.)
        let v6 = graph.node_id("v6").unwrap();
        assert!(!is_certain_negative(&graph, &sample, v6));
        assert!(is_informative(&graph, &sample, v6));
        // Labeled nodes are never informative.
        for node in sample.pos().iter().chain(sample.neg()) {
            assert!(!is_informative(&graph, &sample, *node));
        }
    }

    #[test]
    fn k_informative_is_sound_for_not_certain_negative() {
        let graph = figure3_g0();
        let sample = Sample::new()
            .negative(graph.node_id("v2").unwrap())
            .negative(graph.node_id("v7").unwrap());
        let mut finder = ScpFinder::new(&graph, sample.neg());
        for node in graph.nodes() {
            for k in 0..=4 {
                if is_k_informative(&mut finder, node, k) {
                    assert!(
                        !is_certain_negative(&graph, &sample, node),
                        "k-informative must imply not Cert⁻ (node {node}, k {k})"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_sample_everything_informative() {
        // With S = ∅, C(G,S) = pq: no node is certain.
        let graph = figure3_g0();
        let sample = Sample::new();
        for node in graph.nodes() {
            // Cert⁻ requires paths(ν) ⊆ paths(∅) = ∅, impossible (ε).
            assert!(!is_certain_negative(&graph, &sample, node));
            // Cert⁺ requires a positive example; none exist.
            assert!(!is_certain_positive(&graph, &sample, node));
            assert!(is_informative(&graph, &sample, node));
        }
    }
}
