//! Scientific-workflow mining (paper §1, Figure 2).
//!
//! A biologist wants all interrelated workflows matching
//! `ProteinPurification · ProteinSeparation* · MassSpectrometry` but
//! labels workflow steps instead of writing the expression. Workflows are
//! naturally node-labeled; as the paper notes, the techniques carry over
//! to edge-labeled graphs seamlessly — we encode each step's label on the
//! edge leading *into the next stage* of the workflow.
//!
//! ```text
//! cargo run --release --example workflow_mining
//! ```

use pathlearn::prelude::*;

/// Builds a set of interrelated workflows as one edge-labeled graph. Each
/// workflow `w` is a chain of module executions; shared modules create
/// cross-workflow links (the "interrelated" part).
fn workflows() -> GraphDb {
    let mut builder = GraphBuilder::new();
    // Workflow 1: purification → separation → separation → mass spec.
    builder.add_edge("w1_s0", "ProteinPurification", "w1_s1");
    builder.add_edge("w1_s1", "ProteinSeparation", "w1_s2");
    builder.add_edge("w1_s2", "ProteinSeparation", "w1_s3");
    builder.add_edge("w1_s3", "MassSpectrometry", "w1_s4");
    // Workflow 2: purification → mass spec (no separation).
    builder.add_edge("w2_s0", "ProteinPurification", "w2_s1");
    builder.add_edge("w2_s1", "MassSpectrometry", "w2_s2");
    // Workflow 3: purification → separation loop → imaging (a dead end
    // for the biologist's pattern).
    builder.add_edge("w3_s0", "ProteinPurification", "w3_s1");
    builder.add_edge("w3_s1", "ProteinSeparation", "w3_s1");
    builder.add_edge("w3_s1", "CellImaging", "w3_s2");
    // Workflow 4: starts with staining — never matches.
    builder.add_edge("w4_s0", "GelStaining", "w4_s1");
    builder.add_edge("w4_s1", "MassSpectrometry", "w4_s2");
    // Workflow 5: purification but ends in imaging — matches the first
    // module yet not the pattern, so the learner cannot stop at
    // `ProteinPurification` alone.
    builder.add_edge("w5_s0", "ProteinPurification", "w5_s1");
    builder.add_edge("w5_s1", "CellImaging", "w5_s2");
    // Cross-workflow link: w3's separation output can feed w1's final
    // mass-spectrometry module.
    builder.add_edge("w3_s1", "ProteinSeparation", "w1_s3");
    builder.build()
}

fn main() {
    let graph = workflows();
    let goal = PathQuery::parse(
        "ProteinPurification · ProteinSeparation* · MassSpectrometry",
        graph.alphabet(),
    )
    .unwrap();
    let goal_selection = goal.eval(&graph);

    let names = |set: &pathlearn::automata::BitSet| {
        let mut v: Vec<&str> = set.iter().map(|n| graph.node_name(n as u32)).collect();
        v.sort();
        v.join(", ")
    };
    println!(
        "Workflow graph: {} steps, {} module executions",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!(
        "Goal pattern selects start steps: {}",
        names(&goal_selection)
    );

    // The biologist labels workflow starting points.
    let sample = Sample::new()
        .positive(graph.node_id("w1_s0").unwrap()) // matches with 2 separations
        .positive(graph.node_id("w2_s0").unwrap()) // matches with 0 separations
        .negative(graph.node_id("w4_s0").unwrap()) // wrong first module
        .negative(graph.node_id("w5_s0").unwrap()) // purification → imaging only
        .negative(graph.node_id("w3_s2").unwrap()); // imaging dead end

    let outcome = Learner::default().learn(&graph, &sample);
    let learned = outcome.query.expect("consistent sample");
    println!("\nLearned pattern: {}", learned.display(graph.alphabet()));
    println!("It selects:      {}", names(&learned.eval(&graph)));

    // The interactive loop converges to the exact pattern.
    let session = InteractiveSession::new(
        &graph,
        InteractiveConfig {
            strategy: StrategyKind::KSmallest,
            ..InteractiveConfig::default()
        },
    );
    let result = session.run_against_goal(&goal);
    let interactive = result.query.clone().expect("goal reachable");
    println!(
        "\nInteractive ({} labels): {}",
        result.labels_used(),
        interactive.display(graph.alphabet())
    );
    assert_eq!(interactive.eval(&graph), goal_selection);
    println!("Selections match the biologist's goal pattern exactly.");
}
