//! Binary and n-ary semantics (paper Appendix B) on the Figure 1 graph.
//!
//! Binary path queries select *pairs* of nodes; the example learns
//! "from which stop can I reach which cinema" from pair examples
//! (Algorithm 2), then an itinerary-shaped ternary query (Algorithm 3).
//!
//! ```text
//! cargo run --release --example binary_queries
//! ```

use pathlearn::core::binary::{learner2, learnern, BinaryLearnerConfig};
use pathlearn::core::sample::SampleN;
use pathlearn::graph::eval::selects_pair;
use pathlearn::prelude::*;

fn figure1() -> GraphDb {
    let mut builder = GraphBuilder::new();
    for (src, label, dst) in [
        ("N1", "tram", "N4"),
        ("N2", "bus", "N1"),
        ("N2", "bus", "N3"),
        ("N6", "bus", "N5"),
        ("N4", "tram", "N5"),
        ("N5", "bus", "N3"),
        ("N4", "cinema", "C1"),
        ("N6", "cinema", "C2"),
        ("N3", "restaurant", "R1"),
        ("N5", "restaurant", "R2"),
    ] {
        builder.add_edge(src, label, dst);
    }
    builder.build()
}

fn main() {
    let graph = figure1();
    let id = |name: &str| graph.node_id(name).unwrap();

    // ----- Binary: (stop, cinema) pairs -------------------------------
    let sample = Sample2::new()
        // N2 reaches C1 (bus·tram·cinema) — wanted.
        .positive(id("N2"), id("C1"))
        // N6 reaches C2 directly — wanted.
        .positive(id("N6"), id("C2"))
        // N3 reaches R1 directly — not a cinema trip.
        .negative(id("N3"), id("R1"))
        // C1 to C1 via the empty path — not a trip at all.
        .negative(id("C1"), id("C1"));

    let query = learner2(&graph, &sample, &BinaryLearnerConfig::default())
        .expect("consistent binary query exists");
    println!("Learned binary query: {}", query.display(graph.alphabet()));
    for (src, dst) in [("N2", "C1"), ("N6", "C2"), ("N3", "R1"), ("N1", "C1")] {
        println!(
            "  selects ({src} → {dst})? {}",
            selects_pair(query.dfa(), &graph, id(src), id(dst))
        );
    }

    // ----- N-ary: stop → intermediate stop → destination itineraries ---
    let mut tuples = SampleN::new(3);
    // N2 → N1 (bus) → C1 (tram·cinema): a cinema trip with one stopover.
    tuples.add(vec![id("N2"), id("N1"), id("C1")], true);
    // N4 → N5 (tram) → N3 (bus): a transport-only itinerary.
    tuples.add(vec![id("N4"), id("N5"), id("N3")], true);
    // A nonsense itinerary through a restaurant.
    tuples.add(vec![id("N3"), id("R1"), id("C1")], false);

    match learnern(&graph, &tuples, &BinaryLearnerConfig::default()) {
        Some(nary) => {
            println!("\nLearned ternary query with components:");
            for (i, component) in nary.components.iter().enumerate() {
                println!("  q{}: {}", i + 1, component.display(graph.alphabet()));
            }
            let good = [id("N2"), id("N1"), id("C1")];
            let bad = [id("N3"), id("R1"), id("C1")];
            println!(
                "  selects (N2, N1, C1)? {}",
                nary.selects_tuple(&graph, &good)
            );
            println!(
                "  selects (N3, R1, C1)? {}",
                nary.selects_tuple(&graph, &bad)
            );
        }
        None => println!("n-ary learner abstained"),
    }
}
