//! Quickstart: the running example of the paper (§1, Figure 1).
//!
//! A geographical graph database: neighborhoods N1..N6 connected by tram
//! and bus lines, with cinemas C1/C2 and restaurants R1/R2 attached. The
//! user wants the neighborhoods from which a cinema is reachable via
//! public transportation — the query `(tram+bus)*·cinema` — but instead
//! of writing it, she labels N2 and N6 positive and N5 negative, and the
//! learner infers the query.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pathlearn::prelude::*;

/// Builds the Figure 1 graph (reconstructed so the paper's stated facts
/// hold: `(tram+bus)*·cinema` selects exactly N1, N2, N4, N6, and no path
/// from N5 reaches a cinema).
fn figure1() -> GraphDb {
    let mut builder = GraphBuilder::new();
    for (src, label, dst) in [
        // Public transportation.
        ("N1", "tram", "N4"),
        ("N2", "bus", "N1"),
        ("N2", "bus", "N3"),
        ("N6", "bus", "N5"),
        ("N4", "tram", "N5"),
        ("N5", "bus", "N3"),
        // Facilities.
        ("N4", "cinema", "C1"),
        ("N6", "cinema", "C2"),
        ("N3", "restaurant", "R1"),
        ("N5", "restaurant", "R2"),
    ] {
        builder.add_edge(src, label, dst);
    }
    builder.build()
}

fn main() {
    let graph = figure1();
    println!(
        "Graph: {} nodes, {} edges over {{{}}}",
        graph.num_nodes(),
        graph.num_edges(),
        graph
            .alphabet()
            .entries()
            .map(|(_, n)| n)
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The goal query of the introduction.
    let goal = PathQuery::parse("(tram+bus)*·cinema", graph.alphabet()).unwrap();
    let goal_selection = goal.eval(&graph);
    let names = |set: &pathlearn::automata::BitSet| {
        let mut v: Vec<&str> = set.iter().map(|n| graph.node_name(n as u32)).collect();
        v.sort();
        v.join(", ")
    };
    println!(
        "Goal (tram+bus)*·cinema selects: {}",
        names(&goal_selection)
    );

    // The user labels a few nodes, exactly as in §1: N2 and N6 positive
    // (cinemas are reachable from them), N5 negative (no path from N5
    // reaches a cinema).
    let sample = Sample::new()
        .positive(graph.node_id("N2").unwrap())
        .positive(graph.node_id("N6").unwrap())
        .negative(graph.node_id("N5").unwrap());
    println!(
        "\nSample: + {{N2, N6}}, - {{N5}}  ({} labels on {} nodes)",
        sample.len(),
        graph.num_nodes()
    );

    let outcome = Learner::default().learn(&graph, &sample);
    match &outcome.query {
        Some(query) => {
            println!("Learned query: {}", query.display(graph.alphabet()));
            println!("It selects:    {}", names(&query.eval(&graph)));
            println!(
                "SCPs used: {:?}",
                outcome
                    .stats
                    .scps
                    .iter()
                    .map(|(node, path)| format!(
                        "{} ⇒ {}",
                        graph.node_name(*node),
                        pathlearn::automata::word::format_word(path, graph.alphabet())
                    ))
                    .collect::<Vec<_>>()
            );
        }
        None => println!("learner abstained (null) — label more nodes"),
    }

    // With a few more labels the interactive loop pins the goal exactly.
    let session = InteractiveSession::new(&graph, InteractiveConfig::default());
    let result = session.run_against_goal(&goal);
    println!(
        "\nInteractive: reached the goal with {} labels ({} of the graph)",
        result.labels_used(),
        format_args!("{:.0}%", 100.0 * result.label_fraction(&graph)),
    );
    if let Some(query) = &result.query {
        println!("Interactive learned: {}", query.display(graph.alphabet()));
        assert_eq!(query.eval(&graph), goal_selection);
    }
}
