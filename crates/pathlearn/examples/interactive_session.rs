//! The interactive scenario (paper §4, Figure 9) on a synthetic graph.
//!
//! Simulates a user who has the goal query `syn1` in mind on a 2,000-node
//! scale-free graph, and shows the interaction loop proposing informative
//! nodes under both strategies (`kR`, `kS`), the labels it collects, and
//! the final learned query — compare with the static baseline, which
//! needs far more labels for the same F1 = 1 (Table 2's message).
//!
//! ```text
//! cargo run --release --example interactive_session
//! ```

use pathlearn::datagen::scale_free::{scale_free_graph, ScaleFreeConfig};
use pathlearn::datagen::workloads::syn_workload;
use pathlearn::eval::static_exp::labels_needed_without_interactions;
use pathlearn::prelude::*;

fn main() {
    let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(2000, 42));
    let workload = syn_workload(&graph);
    let goal = &workload.queries[0]; // syn1: ~1% selectivity
    println!(
        "Graph: {} nodes / {} edges; goal {} = {} (selectivity {:.2}%)",
        graph.num_nodes(),
        graph.num_edges(),
        goal.name,
        goal.query.display(graph.alphabet()),
        100.0 * goal.achieved_selectivity
    );

    // Static baseline: labels needed in a random order for F1 = 1.
    let static_needed = labels_needed_without_interactions(
        &graph,
        &goal.query,
        Default::default(),
        42,
        graph.num_nodes() / 100,
    );
    match static_needed {
        Some(fraction) => println!(
            "Static baseline: F1 = 1 after labeling {:.1}% of the graph",
            100.0 * fraction
        ),
        None => println!("Static baseline: F1 = 1 not reached even with all labels"),
    }

    for strategy in [StrategyKind::KRandom, StrategyKind::KSmallest] {
        let session = InteractiveSession::new(
            &graph,
            InteractiveConfig {
                strategy,
                ..InteractiveConfig::default()
            },
        );
        let result = session.run_against_goal(&goal.query);
        println!(
            "\nStrategy {strategy}: {} labels ({:.2}% of nodes), {:.3}s/interaction",
            result.labels_used(),
            100.0 * result.label_fraction(&graph),
            result.mean_interaction_time().as_secs_f64(),
        );
        let positives = result.sample.pos().len();
        println!(
            "  labels: {positives} positive / {} negative; halt: {:?}",
            result.sample.neg().len(),
            result.halt
        );
        if let Some(query) = &result.query {
            println!("  learned: {}", query.display(graph.alphabet()));
            let same = query.eval(&graph) == goal.query.eval(&graph);
            println!("  selects exactly the goal's nodes: {same}");
        }
    }
}
