//! Integration tests for the `pathlearn` command-line interface, driving
//! the real binary through `std::process::Command`.

use std::io::Write as _;
use std::process::Command;

fn pathlearn_binary() -> &'static str {
    env!("CARGO_BIN_EXE_pathlearn")
}

fn g0_file() -> tempfile::TempPath {
    let mut file = tempfile::Builder::new()
        .prefix("g0")
        .suffix(".txt")
        .tempfile()
        .expect("tempfile");
    let edges = [
        ("v1", "a", "v2"),
        ("v1", "b", "v7"),
        ("v2", "a", "v3"),
        ("v2", "b", "v3"),
        ("v3", "a", "v2"),
        ("v3", "a", "v3"),
        ("v3", "a", "v4"),
        ("v3", "c", "v4"),
        ("v5", "a", "v4"),
        ("v5", "b", "v4"),
        ("v6", "a", "v5"),
        ("v6", "a", "v4"),
        ("v6", "b", "v7"),
        ("v7", "a", "v6"),
        ("v7", "b", "v5"),
    ];
    for (s, l, d) in edges {
        writeln!(file, "{s} {l} {d}").unwrap();
    }
    file.into_temp_path()
}

mod tempfile {
    //! Minimal temp-file helper (no external dependency): creates a file
    //! under `std::env::temp_dir()` that is removed on drop.
    use std::path::{Path, PathBuf};

    pub struct Builder {
        prefix: String,
        suffix: String,
    }

    impl Builder {
        pub fn new() -> Self {
            Builder {
                prefix: String::new(),
                suffix: String::new(),
            }
        }
        pub fn prefix(mut self, p: &str) -> Self {
            self.prefix = p.to_owned();
            self
        }
        pub fn suffix(mut self, s: &str) -> Self {
            self.suffix = s.to_owned();
            self
        }
        pub fn tempfile(self) -> std::io::Result<TempFile> {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos();
            let path = std::env::temp_dir().join(format!(
                "{}-{}-{}{}",
                self.prefix,
                std::process::id(),
                nanos,
                self.suffix
            ));
            let file = std::fs::File::create(&path)?;
            Ok(TempFile { file, path })
        }
    }

    pub struct TempFile {
        file: std::fs::File,
        path: PathBuf,
    }

    impl TempFile {
        pub fn into_temp_path(self) -> TempPath {
            TempPath { path: self.path }
        }
    }

    impl std::io::Write for TempFile {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.file.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.file.flush()
        }
    }

    pub struct TempPath {
        path: PathBuf,
    }

    impl std::ops::Deref for TempPath {
        type Target = Path;
        fn deref(&self) -> &Path {
            &self.path
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

fn run(args: &[&str]) -> (String, String, bool) {
    let output = Command::new(pathlearn_binary())
        .args(args)
        .output()
        .expect("spawn pathlearn");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("interactive"));
}

#[test]
fn stats_reports_graph_shape() {
    let path = g0_file();
    let (stdout, _, ok) = run(&["stats", path.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("nodes:  7"));
    assert!(stdout.contains("edges:  15"));
    assert!(stdout.contains("labels: 3"));
}

#[test]
fn eval_lists_selected_nodes() {
    let path = g0_file();
    let (stdout, _, ok) = run(&["eval", path.to_str().unwrap(), "--query", "(a.b)*.c"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("selects 2 of 7 nodes"));
    assert!(stdout.contains("v1"));
    assert!(stdout.contains("v3"));
}

#[test]
fn learn_reproduces_paper_example() {
    let path = g0_file();
    let (stdout, _, ok) = run(&[
        "learn",
        path.to_str().unwrap(),
        "--pos",
        "v1,v3",
        "--neg",
        "v2,v7",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("learned: (a·b)*·c"), "{stdout}");
    assert!(stdout.contains("SCP v1: a·b·c"));
    assert!(stdout.contains("SCP v3: c"));
}

#[test]
fn learn_abstains_politely_on_inconsistency() {
    // v4 positive but all its paths ({ε}) covered by any negative.
    let path = g0_file();
    let (_, stderr, ok) = run(&[
        "learn",
        path.to_str().unwrap(),
        "--pos",
        "v4",
        "--neg",
        "v5",
    ]);
    assert!(!ok);
    assert!(stderr.contains("abstained"), "{stderr}");
}

#[test]
fn interactive_with_simulated_goal() {
    let path = g0_file();
    let (stdout, _, ok) = run(&[
        "interactive",
        path.to_str().unwrap(),
        "--goal",
        "(a.b)*.c",
        "--strategy",
        "kS",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("learned query: (a·b)*·c"), "{stdout}");
    assert!(stdout.contains("selects: v1, v3"));
}

#[test]
fn serve_runs_a_duplicate_heavy_workload_with_cache_hits() {
    let graph = g0_file();
    let mut queries = tempfile::Builder::new()
        .prefix("queries")
        .suffix(".txt")
        .tempfile()
        .expect("tempfile");
    // Duplicate-heavy: two spellings of (a·b)*·c, one of a, a comment.
    writeln!(queries, "# workload").unwrap();
    writeln!(queries, "(a.b)*.c").unwrap();
    writeln!(queries, "c+a.b.(a.b)*.c").unwrap();
    writeln!(queries, "a").unwrap();
    let queries = queries.into_temp_path();
    let (stdout, stderr, ok) = run(&[
        "serve",
        graph.to_str().unwrap(),
        "--queries",
        queries.to_str().unwrap(),
        "--clients",
        "2",
        "--repeat",
        "4",
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("serving 12 submissions"), "{stdout}");
    // 2 unique languages → 2 misses; everything else reused.
    assert!(stdout.contains("2 misses"), "{stdout}");
    assert!(stdout.contains("(a.b)*.c: 2 of 7 nodes"), "{stdout}");
    assert!(stdout.contains("a: 6 of 7 nodes"), "{stdout}");
    // Equivalent spellings share one canonical key.
    let keys: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("key "))
        .filter(|l| l.contains("of 7 nodes"))
        .filter_map(|l| l.split("key ").nth(1))
        .map(|k| k.trim_end_matches(')'))
        .collect();
    assert_eq!(keys.len(), 3, "{stdout}");
    assert_eq!(keys[0], keys[1], "equivalent spellings share a key");
    assert_ne!(keys[0], keys[2]);
}

#[test]
fn serve_rejects_bad_workloads() {
    let graph = g0_file();
    let (_, stderr, ok) = run(&["serve", graph.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("--queries"), "{stderr}");
    let mut queries = tempfile::Builder::new()
        .prefix("badq")
        .suffix(".txt")
        .tempfile()
        .expect("tempfile");
    writeln!(queries, "a·(").unwrap();
    let queries = queries.into_temp_path();
    let (_, stderr, ok) = run(&[
        "serve",
        graph.to_str().unwrap(),
        "--queries",
        queries.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(
        stderr.contains(":1:"),
        "parse error names the line: {stderr}"
    );
}

#[test]
fn serve_reports_missing_or_oversized_setup_cleanly() {
    // A missing workload file is a diagnostic + nonzero exit, not a
    // panic mid-setup.
    let graph = g0_file();
    let (_, stderr, ok) = run(&[
        "serve",
        graph.to_str().unwrap(),
        "--queries",
        "/nonexistent/workload.txt",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("cannot read workload file"),
        "missing workload diagnostic: {stderr}"
    );
    // An absurd --cache-mb is a clean overflow diagnostic, not a
    // debug-mode arithmetic panic.
    let mut queries = tempfile::Builder::new()
        .prefix("okq")
        .suffix(".txt")
        .tempfile()
        .expect("tempfile");
    writeln!(queries, "a").unwrap();
    let queries = queries.into_temp_path();
    let (_, stderr, ok) = run(&[
        "serve",
        graph.to_str().unwrap(),
        "--queries",
        queries.to_str().unwrap(),
        "--cache-mb",
        "18446744073709551615",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("--cache-mb") && stderr.contains("overflow"),
        "overflow diagnostic: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "setup errors must not panic: {stderr}"
    );
    // --listen and --queries are mutually exclusive.
    let (_, stderr, ok) = run(&[
        "serve",
        graph.to_str().unwrap(),
        "--queries",
        queries.to_str().unwrap(),
        "--listen",
        "127.0.0.1:0",
    ]);
    assert!(!ok);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
}

#[test]
fn serve_listen_answers_framed_tcp_queries() {
    use pathlearn::server::{Client, Response, NO_DEADLINE_MS};
    use std::io::BufRead as _;

    let graph = g0_file();
    let mut child = Command::new(pathlearn_binary())
        .args(["serve", graph.to_str().unwrap(), "--listen", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pathlearn serve --listen");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("address line")
        .expect("read address line");
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {first}"))
        .trim()
        .to_owned();

    let result = std::panic::catch_unwind(move || {
        let mut client = Client::connect(&addr).expect("connect to served port");
        client.ping().expect("ping");
        // Figure 3's (a·b)*·c selects v1 and v3 on G0.
        match client.query_text("(a.b)*.c", NO_DEADLINE_MS).unwrap() {
            Response::Result { bits, .. } => assert_eq!(bits.len(), 2),
            other => panic!("expected RESULT, got {other:?}"),
        }
        let stats = client.stats().expect("stats frame");
        assert!(stats
            .iter()
            .any(|(name, v)| name == "net.queries" && *v >= 1));
    });
    child.kill().ok();
    child.wait().ok();
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn update_rejects_malformed_edge_specs_cleanly() {
    // Edge specs are parsed before any connection is attempted, so the
    // bogus address is never dialed and the diagnostic names the spec.
    let (_, stderr, ok) = run(&["update", "127.0.0.1:1", "--add", "x a"]);
    assert!(!ok);
    assert!(
        stderr.contains("needs exactly `src label dst`") && stderr.contains("x a"),
        "malformed --add diagnostic: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
    let (_, stderr, ok) = run(&["update", "127.0.0.1:1", "--remove", "a b c d"]);
    assert!(!ok);
    assert!(
        stderr.contains("needs exactly `src label dst`"),
        "four-token --remove diagnostic: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn update_reports_unresolvable_server_cleanly() {
    // RFC 2606 reserves .invalid, so resolution fails without touching
    // the network; the failure must be a diagnostic, never a panic.
    let (_, stderr, ok) = run(&[
        "update",
        "does-not-resolve.invalid:4617",
        "--add",
        "v1 a v2",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("cannot connect to does-not-resolve.invalid:4617"),
        "unresolvable-address diagnostic: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn snapshot_subcommand_converts_a_text_graph() {
    let graph = g0_file();
    let out = std::env::temp_dir().join(format!("pathlearn-cli-snap-{}.snap", std::process::id()));
    let (stdout, stderr, ok) = run(&["snapshot", graph.to_str().unwrap(), out.to_str().unwrap()]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("7 nodes"), "{stdout}");
    assert!(stdout.contains("15 edges"), "{stdout}");
    let loaded = pathlearn::graph::GraphDb::load_snapshot(&out).expect("load written snapshot");
    assert_eq!(loaded.num_nodes(), 7);
    assert_eq!(loaded.num_edges(), 15);
    std::fs::remove_file(&out).ok();

    // Wrong arity and stray flags are diagnostics, not panics.
    let (_, stderr, ok) = run(&["snapshot", graph.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("exactly"), "{stderr}");
    let (_, stderr, ok) = run(&["snapshot", graph.to_str().unwrap(), "out", "--force"]);
    assert!(!ok);
    assert!(stderr.contains("no flags"), "{stderr}");
}

#[test]
fn serve_data_dir_recovers_acknowledged_deltas_after_restart() {
    use pathlearn::server::{Client, Response, NO_DEADLINE_MS};
    use std::io::BufRead as _;

    let graph = g0_file();
    let data_dir =
        std::env::temp_dir().join(format!("pathlearn-cli-data-dir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    // --data-dir without --listen is a diagnostic, not a panic.
    let (_, stderr, ok) = run(&[
        "serve",
        graph.to_str().unwrap(),
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--queries",
        "/dev/null",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--data-dir requires --listen"), "{stderr}");

    // Spawns a durable server and collects (child, addr, banner lines
    // printed before the address).
    let spawn_server = |graph: &str, dir: &str| {
        let mut child = Command::new(pathlearn_binary())
            .args(["serve", graph, "--listen", "127.0.0.1:0", "--data-dir", dir])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn durable serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let mut banner = Vec::new();
        let addr = loop {
            let line = lines.next().expect("address line").expect("read line");
            if let Some(a) = line.strip_prefix("listening on ") {
                break a.trim().to_owned();
            }
            banner.push(line);
        };
        (child, addr, banner.join("\n"))
    };

    let (mut child, addr, banner) =
        spawn_server(graph.to_str().unwrap(), data_dir.to_str().unwrap());
    assert!(banner.contains("first run"), "{banner}");
    let result = std::panic::catch_unwind(move || {
        let mut client = Client::connect(&addr).expect("connect to durable server");
        // G0: only v3 has an outgoing c edge.
        match client.query_text("c", NO_DEADLINE_MS).unwrap() {
            Response::Result { bits, .. } => assert_eq!(bits.len(), 1),
            other => panic!("expected RESULT, got {other:?}"),
        }
        match client
            .apply_delta(&[("v1".into(), "c".into(), "v4".into())], &[])
            .unwrap()
        {
            Response::DeltaApplied { .. } => {}
            other => panic!("expected DELTA_APPLIED, got {other:?}"),
        }
    });
    child.kill().ok();
    child.wait().ok();
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }

    // Restart over the same data dir: the acknowledged delta survives
    // the kill, recovered from snapshot + WAL rather than the text file.
    let (mut child, addr, banner) =
        spawn_server(graph.to_str().unwrap(), data_dir.to_str().unwrap());
    assert!(banner.contains("recovered from snapshot"), "{banner}");
    assert!(banner.contains("1 WAL record(s) replayed"), "{banner}");
    let result = std::panic::catch_unwind(move || {
        let mut client = Client::connect(&addr).expect("reconnect after restart");
        match client.query_text("c", NO_DEADLINE_MS).unwrap() {
            Response::Result { bits, .. } => {
                assert_eq!(bits.len(), 2, "v1 --c--> v4 must survive the restart")
            }
            other => panic!("expected RESULT, got {other:?}"),
        }
    });
    child.kill().ok();
    child.wait().ok();
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
    std::fs::remove_dir_all(&data_dir).ok();
}

#[test]
fn unknown_flags_and_files_error_cleanly() {
    let (_, stderr, ok) = run(&["learn", "/nonexistent/graph.txt", "--pos", "x"]);
    assert!(!ok);
    assert!(stderr.contains("error:"));
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}
