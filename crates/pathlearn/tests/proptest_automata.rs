//! Property-based tests for the automata substrate: language-preservation
//! laws that every normalization and product must satisfy, checked
//! against brute-force word enumeration on randomly generated inputs.

use pathlearn::automata::inclusion::{nfa_included_in, nfa_included_in_naive};
use pathlearn::automata::minimize::{minimize, minimize_moore};
use pathlearn::automata::product::{
    nfa_intersection_is_empty, nfa_intersection_shortest, nfa_product,
};
use pathlearn::automata::state_elim::dfa_to_regex;
use pathlearn::automata::word::{canonical_cmp, enumerate_words};
use pathlearn::automata::{determinize::determinize, Dfa, Nfa, Regex, StateId, Symbol};
use proptest::prelude::*;

const ALPHABET: usize = 2;
const MAX_WORD: usize = 5;

/// Strategy: a random NFA description.
fn arb_nfa() -> impl Strategy<Value = Nfa> {
    (
        1usize..6,
        proptest::collection::vec((0u32..6, 0usize..ALPHABET, 0u32..6), 0..14),
        proptest::collection::vec(0u32..6, 0..4),
        proptest::collection::vec(0u32..6, 0..4),
    )
        .prop_map(|(n, edges, initials, finals)| {
            let n = n as u32;
            let mut nfa = Nfa::new(n as usize, ALPHABET);
            nfa.set_initial(0);
            for (from, sym, to) in edges {
                nfa.add_transition(from % n, Symbol::from_index(sym), to % n);
            }
            for i in initials {
                nfa.set_initial(i % n);
            }
            for f in finals {
                nfa.set_final(f % n);
            }
            nfa
        })
}

/// Strategy: a random (partial) DFA description.
fn arb_dfa() -> impl Strategy<Value = Dfa> {
    (
        1usize..7,
        proptest::collection::vec(proptest::option::of(0u32..7), 14),
        proptest::collection::vec(any::<bool>(), 7),
    )
        .prop_map(|(n, table, finals)| {
            let mut dfa = Dfa::new(n, ALPHABET, 0);
            for s in 0..n {
                for a in 0..ALPHABET {
                    if let Some(t) = table[s * ALPHABET + a] {
                        dfa.set_transition(s as StateId, Symbol::from_index(a), t % n as u32);
                    }
                }
                if finals[s] {
                    dfa.set_final(s as StateId);
                }
            }
            dfa
        })
}

/// Strategy: a random regex AST of bounded depth.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        (0usize..ALPHABET).prop_map(|i| Regex::Symbol(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Determinization preserves the language.
    #[test]
    fn determinize_preserves_language(nfa in arb_nfa()) {
        let dfa = determinize(&nfa);
        for word in enumerate_words(ALPHABET, MAX_WORD) {
            prop_assert_eq!(nfa.accepts(&word), dfa.accepts(&word), "{:?}", word);
        }
    }

    /// Minimization preserves the language, is idempotent, and Hopcroft
    /// agrees with Moore.
    #[test]
    fn minimize_laws(dfa in arb_dfa()) {
        let hopcroft = minimize(&dfa);
        let moore = minimize_moore(&dfa);
        prop_assert_eq!(&hopcroft, &moore);
        prop_assert_eq!(&minimize(&hopcroft), &hopcroft);
        for word in enumerate_words(ALPHABET, MAX_WORD) {
            prop_assert_eq!(dfa.accepts(&word), hopcroft.accepts(&word), "{:?}", word);
        }
    }

    /// The minimal DFA is no larger than any equivalent trimmed DFA.
    #[test]
    fn minimize_is_minimal(dfa in arb_dfa()) {
        let minimal = minimize(&dfa);
        prop_assert!(minimal.num_states() <= dfa.trim().num_states().max(1));
    }

    /// Complementation flips membership.
    #[test]
    fn complement_flips(dfa in arb_dfa()) {
        let complement = dfa.complement();
        for word in enumerate_words(ALPHABET, MAX_WORD) {
            prop_assert_ne!(dfa.accepts(&word), complement.accepts(&word));
        }
    }

    /// The prefix-free transform yields a prefix-free language that selects
    /// the same nodes (query equivalence): its language is a subset whose
    /// every member has a prefix in the original — checked via words.
    #[test]
    fn prefix_free_laws(dfa in arb_dfa()) {
        let pf = dfa.make_prefix_free();
        prop_assert!(pf.is_prefix_free());
        for word in enumerate_words(ALPHABET, MAX_WORD) {
            if pf.accepts(&word) {
                prop_assert!(dfa.accepts(&word), "pf ⊆ original, {:?}", word);
            }
            if dfa.accepts(&word) {
                // Some prefix of the word is in the prefix-free language.
                let has_prefix = (0..=word.len()).any(|l| pf.accepts(&word[..l]));
                prop_assert!(has_prefix, "{:?}", word);
            }
        }
    }

    /// Product intersection: emptiness, witness minimality, and language.
    #[test]
    fn product_laws(a in arb_nfa(), b in arb_nfa()) {
        let product = nfa_product(&a, &b);
        let mut expected_min: Option<Vec<Symbol>> = None;
        for word in enumerate_words(ALPHABET, MAX_WORD) {
            let both = a.accepts(&word) && b.accepts(&word);
            prop_assert_eq!(product.accepts(&word), both, "{:?}", word);
            if both && expected_min.is_none() {
                expected_min = Some(word.clone());
            }
        }
        match nfa_intersection_shortest(&a, &b) {
            Some(witness) => {
                prop_assert!(a.accepts(&witness) && b.accepts(&witness));
                prop_assert!(!nfa_intersection_is_empty(&a, &b));
                if let Some(expected) = expected_min {
                    // Witness is canonical-minimal among short words.
                    if witness.len() <= MAX_WORD {
                        prop_assert_eq!(
                            canonical_cmp(&witness, &expected),
                            std::cmp::Ordering::Equal
                        );
                    }
                }
            }
            None => {
                prop_assert!(nfa_intersection_is_empty(&a, &b));
                prop_assert!(expected_min.is_none());
            }
        }
    }

    /// Antichain inclusion agrees with the naive decision and returns
    /// genuine minimal counterexamples.
    #[test]
    fn inclusion_agrees_with_naive(a in arb_nfa(), b in arb_nfa()) {
        match (nfa_included_in(&a, &b), nfa_included_in_naive(&a, &b)) {
            (Ok(()), Ok(())) => {}
            (Err(w1), Err(w2)) => {
                prop_assert!(a.accepts(&w1) && !b.accepts(&w1));
                prop_assert_eq!(canonical_cmp(&w1, &w2), std::cmp::Ordering::Equal);
            }
            (x, y) => prop_assert!(false, "disagreement: {:?} vs {:?}", x, y),
        }
    }

    /// Regex → NFA → DFA → regex round-trips preserve the language.
    #[test]
    fn regex_roundtrip(regex in arb_regex()) {
        let dfa = regex.to_dfa(ALPHABET);
        let back = dfa_to_regex(&dfa).to_dfa(ALPHABET);
        prop_assert!(dfa.equivalent(&back));
        // Spot-check against the NFA semantics too.
        let nfa = regex.to_nfa(ALPHABET);
        for word in enumerate_words(ALPHABET, 4) {
            prop_assert_eq!(nfa.accepts(&word), dfa.accepts(&word), "{:?}", word);
        }
    }

    /// `shortest_accepted` is the canonical minimum of the language.
    #[test]
    fn shortest_accepted_is_minimal(nfa in arb_nfa()) {
        let shortest = nfa.shortest_accepted();
        let brute = enumerate_words(ALPHABET, MAX_WORD)
            .into_iter()
            .find(|w| nfa.accepts(w));
        match (shortest, brute) {
            (Some(s), Some(b)) => {
                prop_assert!(nfa.accepts(&s));
                if s.len() <= MAX_WORD {
                    prop_assert_eq!(canonical_cmp(&s, &b), std::cmp::Ordering::Equal);
                }
            }
            (Some(s), None) => prop_assert!(s.len() > MAX_WORD),
            (None, Some(b)) => prop_assert!(false, "missed accepted word {:?}", b),
            (None, None) => {}
        }
    }

    /// Reversal: w ∈ L(A) iff reverse(w) ∈ L(reverse(A)).
    #[test]
    fn reverse_law(nfa in arb_nfa()) {
        let reversed = nfa.reverse();
        for word in enumerate_words(ALPHABET, 4) {
            let mut mirrored = word.clone();
            mirrored.reverse();
            prop_assert_eq!(nfa.accepts(&word), reversed.accepts(&mirrored));
        }
    }
}
