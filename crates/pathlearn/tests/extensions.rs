//! Integration tests for the repository's extensions beyond the paper's
//! body (DESIGN.md X1–X4): definability, the exact informative strategy,
//! witness-path explanations, and learning on representative subgraph
//! samples (the paper's §6 future-work direction).

use pathlearn::core::definability::{define_set, Definability};
use pathlearn::core::LearnerConfig;
use pathlearn::datagen::scale_free::{scale_free_graph, ScaleFreeConfig};
use pathlearn::datagen::workloads::syn_workload;
use pathlearn::graph::explain::{explain_all, explain_selection};
use pathlearn::graph::sampling::{sample_subgraph, SamplingMethod};
use pathlearn::prelude::*;

/// X1 — definability: the selected set of any query is definable, and the
/// defining query reproduces it exactly.
#[test]
fn definability_of_query_results() {
    let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(300, 42));
    let workload = syn_workload(&graph);
    let goal = &workload.queries[1].query;
    let target: Vec<NodeId> = goal.eval(&graph).iter().map(|n| n as NodeId).collect();
    match define_set(&graph, &target, LearnerConfig::default()) {
        Definability::Definable(query) => {
            assert_eq!(query.eval(&graph), goal.eval(&graph));
        }
        Definability::Unknown => panic!("query results are definable"),
    }
}

/// X2 — the exact informative strategy drives a session to the goal on a
/// small graph, using no more labels than kR needs (it never wastes a
/// question on a certain node).
#[test]
fn exact_strategy_session_on_g0() {
    let graph = pathlearn::graph::graph::figure3_g0();
    let goal = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
    let run = |strategy| {
        let session = InteractiveSession::new(
            &graph,
            InteractiveConfig {
                strategy,
                ..InteractiveConfig::default()
            },
        );
        session.run_against_goal(&goal)
    };
    let exact = run(StrategyKind::ExactInformative);
    assert_eq!(
        exact.query.as_ref().expect("goal reachable").eval(&graph),
        goal.eval(&graph)
    );
    // Exact informativeness implies every asked node was genuinely
    // undetermined at ask time; on G0 the goal is pinned within a handful
    // of labels.
    assert!(exact.labels_used() <= graph.num_nodes());
}

/// X3 — witnesses explain every selected node with a genuine minimal
/// accepted path, across a calibrated workload.
#[test]
fn witnesses_explain_workload_selections() {
    let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(400, 42));
    let workload = syn_workload(&graph);
    for q in &workload.queries {
        let witnesses = explain_all(q.query.dfa(), &graph);
        let selected = q.query.eval(&graph);
        assert_eq!(witnesses.len(), selected.len(), "{}", q.name);
        for (node, witness) in witnesses.iter().take(50) {
            assert!(q.query.dfa().accepts(witness), "{}", q.name);
            assert!(graph.covers(witness, &[*node]), "{}", q.name);
        }
    }
}

/// X3 — witness minimality against brute-force enumeration on G0.
#[test]
fn witnesses_are_minimal_on_g0() {
    let graph = pathlearn::graph::graph::figure3_g0();
    let q = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
    for node in graph.nodes() {
        let brute = graph
            .enumerate_paths(node, 5, 100_000)
            .into_iter()
            .find(|w| q.dfa().accepts(w));
        let witness = explain_selection(q.dfa(), &graph, node);
        match (witness, brute) {
            (Some(w), Some(b)) => assert_eq!(w, b, "node {node}"),
            (None, None) => {}
            (w, b) => panic!("node {node}: {w:?} vs {b:?}"),
        }
    }
}

/// X4 — learn interactively on a forest-fire sample, evaluate the learned
/// query on the full graph: the sample-learned query stays consistent with
/// the goal on the sampled nodes and carries real signal on the rest.
#[test]
fn learning_on_representative_sample_transfers() {
    let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(1200, 42));
    let workload = syn_workload(&graph);
    let goal = &workload.queries[2].query; // densest goal

    let sampled = sample_subgraph(
        &graph,
        300,
        SamplingMethod::ForestFire {
            forward_probability: 0.6,
        },
        7,
    );

    // The goal restricted to the sample (by regex transfer).
    let session = InteractiveSession::new(&sampled.graph, InteractiveConfig::default());
    let result = session.run_against_goal(goal);
    let Some(learned) = result.query else {
        panic!("no query learned on the sample");
    };

    // Evaluate on the FULL graph and compare against the goal.
    let goal_selection = goal.eval(&graph);
    let learned_selection = learned.eval(&graph);
    let confusion =
        pathlearn::eval::metrics::Confusion::from_selections(&goal_selection, &learned_selection);
    // Transfer quality: well above chance. (Exactness is not implied —
    // the sample may miss distinguishing structure; that is the paper's
    // open question, we assert the pipeline works and carries signal.)
    assert!(
        confusion.f1() > 0.5,
        "sample-learned query transfers poorly: F1 {:.3}",
        confusion.f1()
    );
}

/// X4 — sampling preserves the learning substrate: paths of sample nodes
/// are paths of the original nodes, so consistent samples stay consistent.
#[test]
fn sample_consistency_transfers_to_original() {
    let graph = scale_free_graph(&ScaleFreeConfig::paper_synthetic(500, 42));
    let sampled = sample_subgraph(&graph, 150, SamplingMethod::RandomWalk, 11);
    let workload = syn_workload(&graph);
    let goal = &workload.queries[1].query;
    let goal_selection = goal.eval(&graph);

    // A negative on the original graph is still consistent as negative on
    // the sample (fewer paths ⇒ still unselected); positives may flip.
    for node in sampled.graph.nodes().take(100) {
        let original = sampled.original_of(node);
        if !goal_selection.contains(original as usize) {
            assert!(
                !goal.selects(&sampled.graph, node),
                "negative flipped positive in the sample"
            );
        }
    }
}
