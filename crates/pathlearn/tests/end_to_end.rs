//! End-to-end pipeline tests at reduced scale: generators → workload
//! calibration → static experiments → interactive experiments, asserting
//! the qualitative findings of §5 (the "shape" of Figures 11/12 and
//! Table 2) on small synthetic instances so they run inside `cargo test`.

use pathlearn::core::LearnerConfig;
use pathlearn::datagen::sampling::random_sample;
use pathlearn::datagen::scale_free::{scale_free_graph, ScaleFreeConfig};
use pathlearn::datagen::workloads::syn_workload;
use pathlearn::eval::interactive_exp::run_interactive;
use pathlearn::eval::metrics::Confusion;
use pathlearn::eval::static_exp::{labels_needed_without_interactions, run_static, StaticConfig};
use pathlearn::prelude::*;

fn small_synthetic() -> GraphDb {
    scale_free_graph(&ScaleFreeConfig::paper_synthetic(600, 42))
}

#[test]
fn static_f1_increases_with_labels() {
    // Figure 11's qualitative claim: more labels ⇒ (weakly) better F1.
    let graph = small_synthetic();
    let workload = syn_workload(&graph);
    for q in &workload.queries {
        let config = StaticConfig {
            fractions: vec![0.01, 0.30],
            trials: 3,
            seed: 42,
            learner: LearnerConfig::default(),
            threads: 1,
        };
        let points = run_static(&graph, &q.query, &config);
        assert!(
            points[1].mean_f1 >= points[0].mean_f1 - 0.1,
            "{}: F1 degraded hard with more labels ({:.3} -> {:.3})",
            q.name,
            points[0].mean_f1,
            points[1].mean_f1
        );
        assert!(
            points[1].mean_f1 > 0.5,
            "{}: {:.3}",
            q.name,
            points[1].mean_f1
        );
    }
}

#[test]
fn learned_queries_are_consistent_classifiers() {
    // Learned queries score perfect precision/recall on their own sample.
    let graph = small_synthetic();
    let workload = syn_workload(&graph);
    let goal = &workload.queries[1].query;
    let selection = goal.eval(&graph);
    let sample = random_sample(&graph, &selection, 0.1, 3);
    let outcome = Learner::default().learn(&graph, &sample);
    let learned = outcome.query.expect("consistent sample");
    let confusion = Confusion::from_selections(&selection, &learned.eval(&graph));
    // On the labeled nodes themselves, zero mistakes by soundness:
    let learned_sel = learned.eval(&graph);
    for &p in sample.pos() {
        assert!(learned_sel.contains(p as usize));
    }
    for &n in sample.neg() {
        assert!(!learned_sel.contains(n as usize));
    }
    // Overall F1 is meaningful (well above chance).
    assert!(confusion.f1() > 0.3, "F1 {:.3}", confusion.f1());
}

#[test]
fn interactive_beats_static_labels_on_synthetic() {
    // Table 2's headline: interactions reduce labels needed for F1 = 1.
    let graph = small_synthetic();
    let workload = syn_workload(&graph);
    let goal = &workload.queries[2].query; // densest: easiest to pin down
    let static_fraction = labels_needed_without_interactions(
        &graph,
        goal,
        LearnerConfig::default(),
        42,
        graph.num_nodes() / 100,
    );
    let row = run_interactive(
        &graph,
        "syn3-small",
        goal,
        pathlearn::interactive::StrategyKind::KRandom,
        42,
        LearnerConfig::default(),
        1.0,
    );
    assert!(row.reached_goal, "interactive session must reach the goal");
    if let Some(static_fraction) = static_fraction {
        assert!(
            row.label_fraction <= static_fraction + 1e-9,
            "interactive {} vs static {}",
            row.label_fraction,
            static_fraction
        );
    }
}

#[test]
fn both_strategies_reach_goal_and_record_times() {
    let graph = small_synthetic();
    let workload = syn_workload(&graph);
    let goal = &workload.queries[2].query;
    for strategy in [
        pathlearn::interactive::StrategyKind::KRandom,
        pathlearn::interactive::StrategyKind::KSmallest,
    ] {
        let row = run_interactive(
            &graph,
            "syn3-small",
            goal,
            strategy,
            42,
            LearnerConfig::default(),
            1.0,
        );
        assert!(row.reached_goal, "{strategy}");
        assert!(row.labels > 0);
        assert!(row.mean_interaction_time.as_nanos() > 0);
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let graph = small_synthetic();
        let workload = syn_workload(&graph);
        let goal = &workload.queries[0].query;
        let selection = goal.eval(&graph);
        let sample = random_sample(&graph, &selection, 0.05, 9);
        let outcome = Learner::default().learn(&graph, &sample);
        outcome
            .query
            .map(|q| format!("{}", q.display(graph.alphabet())))
    };
    assert_eq!(run(), run());
}

#[test]
fn graph_io_roundtrip_preserves_learning() {
    // Serialize a graph, re-parse it, and learn the same query.
    let graph = small_synthetic();
    let text = pathlearn::graph::io::write_graph(&graph).unwrap();
    let reparsed = pathlearn::graph::io::parse_graph(&text).unwrap();
    assert_eq!(reparsed.num_nodes(), graph.num_nodes());
    assert_eq!(reparsed.num_edges(), graph.num_edges());

    let workload = syn_workload(&graph);
    let goal = &workload.queries[1];
    // Transfer the query onto the reparsed graph's alphabet by regex text.
    let printed = goal.query.display(graph.alphabet()).to_string();
    let transferred = PathQuery::parse(&printed.replace('ε', "eps"), reparsed.alphabet()).unwrap();
    // Node names are preserved, so selections must correspond 1:1.
    let original = goal.query.eval(&graph);
    let roundtrip = transferred.eval(&reparsed);
    for node in graph.nodes() {
        let name = graph.node_name(node);
        let mapped = reparsed.node_id(name).unwrap();
        assert_eq!(
            original.contains(node as usize),
            roundtrip.contains(mapped as usize),
            "node {name}"
        );
    }
}
