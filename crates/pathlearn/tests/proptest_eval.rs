//! Property-based tests for the label-partitioned CSR kernels and the
//! level-synchronous frontier evaluators: on random graphs and random
//! regex queries, the new fast paths must agree exactly with the naive
//! references and with the seed's queue-based algorithm.

use pathlearn::automata::BitSet;
use pathlearn::graph::binary::paths2_nfa;
use pathlearn::graph::eval::{
    eval_binary_from, eval_monadic, eval_monadic_naive, eval_monadic_queued, selects_pair,
};
use pathlearn::graph::ScpFinder;
use pathlearn::prelude::*;
use proptest::prelude::*;

const LABELS: [&str; 3] = ["a", "b", "c"];

/// Strategy: a random small graph over {a, b, c}, possibly disconnected,
/// with self-loops and parallel labels.
fn arb_graph() -> impl Strategy<Value = GraphDb> {
    (
        1usize..9,
        proptest::collection::vec((0u32..9, 0usize..3, 0u32..9), 0..24),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
            for i in 0..n {
                builder.add_node(&format!("n{i}"));
            }
            let n = n as u32;
            for (src, sym, dst) in edges {
                builder.add_edge_ids(src % n, Symbol::from_index(sym), dst % n);
            }
            builder.build()
        })
}

/// Strategy: a random regex AST over {a, b, c} including ε and stars.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        (0usize..3).prop_map(|i| Regex::Symbol(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
}

/// Strategy: a node subset given as a bitmask over up to 9 nodes.
fn arb_mask() -> impl Strategy<Value = u32> {
    0u32..512
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `step_frontier` preserves the semantics of the seed's `step_set`:
    /// per-node successor/predecessor union over the chosen symbol.
    #[test]
    fn step_frontier_matches_per_node_reference(
        graph in arb_graph(),
        mask in arb_mask(),
        sym in 0usize..3,
    ) {
        let n = graph.num_nodes();
        let sym = Symbol::from_index(sym);
        let frontier = BitSet::from_indices(n, (0..n).filter(|&i| mask & (1 << i) != 0));
        let mut fwd_ref = BitSet::new(n);
        let mut bwd_ref = BitSet::new(n);
        for node in frontier.iter() {
            for &(_, t) in graph.successors(node as NodeId, sym) {
                fwd_ref.insert(t as usize);
            }
            for &(_, s) in graph.predecessors(node as NodeId, sym) {
                bwd_ref.insert(s as usize);
            }
        }
        prop_assert_eq!(&graph.step_set(&frontier, sym), &fwd_ref);
        prop_assert_eq!(&graph.step_frontier(&frontier, sym), &fwd_ref);
        prop_assert_eq!(&graph.step_frontier_back(&frontier, sym), &bwd_ref);
        // The sparse kernel agrees with the dense one.
        let sparse: Vec<NodeId> = frontier.iter().map(|i| i as NodeId).collect();
        let stepped = graph.step_sparse(&sparse, sym);
        prop_assert_eq!(
            BitSet::from_indices(n, stepped.iter().map(|&t| t as usize)),
            fwd_ref
        );
    }

    /// The frontier evaluator agrees with both the per-node forward
    /// product reference and the seed's queued backward BFS.
    #[test]
    fn eval_monadic_agrees_with_references(graph in arb_graph(), regex in arb_regex()) {
        let dfa = regex.to_dfa(3);
        let fast = eval_monadic(&dfa, &graph);
        prop_assert_eq!(&fast, &eval_monadic_naive(&dfa, &graph));
        prop_assert_eq!(&fast, &eval_monadic_queued(&dfa, &graph));
    }

    /// Binary-semantics evaluation agrees with the per-pair forward
    /// product (paths2 NFA intersection emptiness) reference.
    #[test]
    fn eval_binary_agrees_with_product_reference(
        graph in arb_graph(),
        regex in arb_regex(),
        source in 0u32..9,
    ) {
        let dfa = regex.to_dfa(3);
        let source = source % graph.num_nodes() as u32;
        let ends = eval_binary_from(&dfa, &graph, source);
        for target in graph.nodes() {
            let nfa = paths2_nfa(&graph, source, target);
            let expected =
                !pathlearn::automata::product::dfa_nfa_intersection_is_empty(&dfa, &nfa);
            prop_assert_eq!(
                ends.contains(target as usize),
                expected,
                "{} -> {}",
                source,
                target
            );
            prop_assert_eq!(selects_pair(&dfa, &graph, source, target), expected);
        }
    }

    /// SCP search on the interned-frontier representation still matches
    /// naive canonical enumeration (guards the seen-set rework).
    #[test]
    fn scp_interning_matches_naive(
        graph in arb_graph(),
        negmask in arb_mask(),
        k in 0usize..4,
    ) {
        let negatives: Vec<NodeId> = (0..graph.num_nodes() as u32)
            .filter(|&i| negmask & (1 << i) != 0)
            .collect();
        let mut finder = ScpFinder::new(&graph, &negatives);
        for node in graph.nodes() {
            let fast = finder.scp(node, k);
            let slow = pathlearn::graph::scp::scp_naive(&graph, node, &negatives, k);
            prop_assert_eq!(fast, slow, "node {}", node);
        }
    }
}
