//! Theorem 3.5 at integration scale (experiment E11 of DESIGN.md §4):
//! for a corpus of target queries, the characteristic instance makes
//! `learner` identify the target exactly with `k = 2·size(q)+1`, and the
//! guarantee survives consistent extension and graph embedding.

use pathlearn::core::theory::characteristic_instance;
use pathlearn::prelude::*;

const CORPUS: &[(&str, &[&str])] = &[
    ("(a·b)*·c", &["a", "b", "c"]),
    ("a·b·c", &["a", "b", "c"]),
    ("a*·b", &["a", "b"]),
    ("a·(b+c)", &["a", "b", "c"]),
    ("(a+b)·c", &["a", "b", "c"]),
    ("(b·a)*·a", &["a", "b"]),
    ("a", &["a", "b"]),
    ("(a+b)·(a+b)·c", &["a", "b", "c"]),
    ("a·a·a", &["a", "b"]),
    ("(a+b)*·c·c", &["a", "b", "c"]),
    ("b·(a+b)·(a+b)*", &["a", "b", "c"]),
    ("(a·a)*·b", &["a", "b"]),
    ("c·(a·b + b·a)", &["a", "b", "c"]),
    ("(a+b+c)·(a+b)·c", &["a", "b", "c"]),
];

#[test]
fn theorem_3_5_corpus_identification() {
    for (expr, labels) in CORPUS {
        let alphabet = Alphabet::from_labels(labels.iter().copied());
        let target = PathQuery::parse(expr, &alphabet).unwrap().prefix_free();
        let instance = characteristic_instance(&target, &alphabet).unwrap();
        let learner = Learner::with_fixed_k(instance.required_k);
        let outcome = learner.learn(&instance.graph, &instance.sample);
        let learned = outcome
            .query
            .unwrap_or_else(|| panic!("abstained on {expr}"));
        assert!(
            learned.equivalent_language(&target),
            "{expr}: learned {}",
            learned.display(&alphabet)
        );
    }
}

/// Definition 3.4(2) requires identification from every consistent
/// extension of CS: add every remaining node with its goal label.
#[test]
fn identification_from_fully_labeled_characteristic_graph() {
    for (expr, labels) in CORPUS.iter().take(8) {
        let alphabet = Alphabet::from_labels(labels.iter().copied());
        let target = PathQuery::parse(expr, &alphabet).unwrap().prefix_free();
        let instance = characteristic_instance(&target, &alphabet).unwrap();
        let selection = target.eval(&instance.graph);
        let mut sample = instance.sample.clone();
        for node in instance.graph.nodes() {
            if !sample.is_labeled(node) {
                sample.add(node, selection.contains(node as usize));
            }
        }
        let learned = Learner::with_fixed_k(instance.required_k)
            .learn(&instance.graph, &sample)
            .query
            .unwrap_or_else(|| panic!("abstained on {expr}"));
        assert!(
            learned.equivalent_language(&target),
            "{expr}: learned {}",
            learned.display(&alphabet)
        );
    }
}

/// §3.3: "a graph that contains a subgraph with a characteristic sample
/// is also characteristic" — embed the instance next to disconnected
/// decoys labeled consistently.
#[test]
fn characteristic_subgraph_embedding() {
    let alphabet = Alphabet::from_labels(["a", "b", "c"]);
    let target = PathQuery::parse("(a·b)*·c", &alphabet)
        .unwrap()
        .prefix_free();
    let instance = characteristic_instance(&target, &alphabet).unwrap();

    // Rebuild the instance inside a bigger graph with decoy components.
    let mut builder = GraphBuilder::with_alphabet(alphabet.clone());
    for node in instance.graph.nodes() {
        builder.add_node(instance.graph.node_name(node));
    }
    for (src, sym, dst) in instance.graph.edges() {
        let s = builder.add_node(instance.graph.node_name(src));
        let d = builder.add_node(instance.graph.node_name(dst));
        builder.add_edge_ids(s, sym, d);
    }
    // Decoys: an a-cycle and an isolated node.
    builder.add_edge("decoy1", "a", "decoy2");
    builder.add_edge("decoy2", "a", "decoy1");
    builder.add_node("decoy3");
    let big = builder.build();

    // Transfer the characteristic labels by name; label decoys with the
    // goal's verdict (consistent extension).
    let goal_selection = target.eval(&big);
    let mut sample = Sample::new();
    for &node in instance.sample.pos() {
        sample.add(big.node_id(instance.graph.node_name(node)).unwrap(), true);
    }
    for &node in instance.sample.neg() {
        sample.add(big.node_id(instance.graph.node_name(node)).unwrap(), false);
    }
    for name in ["decoy1", "decoy2", "decoy3"] {
        let node = big.node_id(name).unwrap();
        sample.add(node, goal_selection.contains(node as usize));
    }

    let learned = Learner::with_fixed_k(instance.required_k)
        .learn(&big, &sample)
        .query
        .expect("still learnable in the embedding");
    assert!(learned.equivalent_language(&target));
}

/// The k bound matters: with k below the SCP length of some positive, the
/// learner either abstains or still returns something consistent — never
/// an inconsistent query (soundness under mis-parameterization).
#[test]
fn soundness_under_small_k() {
    let alphabet = Alphabet::from_labels(["a", "b", "c"]);
    let target = PathQuery::parse("(a·b)*·c", &alphabet)
        .unwrap()
        .prefix_free();
    let instance = characteristic_instance(&target, &alphabet).unwrap();
    for k in 0..instance.required_k {
        let outcome = Learner::with_fixed_k(k).learn(&instance.graph, &instance.sample);
        if let Some(query) = outcome.query {
            let selected = query.eval(&instance.graph);
            for &p in instance.sample.pos() {
                assert!(selected.contains(p as usize), "k={k}");
            }
            for &n in instance.sample.neg() {
                assert!(!selected.contains(n as usize), "k={k}");
            }
        }
    }
}

/// Dynamic-k (the experiments' policy) also identifies the corpus, without
/// being told 2n+1.
#[test]
fn dynamic_k_identifies_corpus() {
    for (expr, labels) in CORPUS.iter().take(8) {
        let alphabet = Alphabet::from_labels(labels.iter().copied());
        let target = PathQuery::parse(expr, &alphabet).unwrap().prefix_free();
        let instance = characteristic_instance(&target, &alphabet).unwrap();
        let learner = Learner::with_config(LearnerConfig {
            k: pathlearn::core::KPolicy::Dynamic {
                start: 2,
                max: instance.required_k.max(4),
            },
            prefix_free_output: true,
        });
        let learned = learner
            .learn(&instance.graph, &instance.sample)
            .query
            .unwrap_or_else(|| panic!("abstained on {expr}"));
        assert!(
            learned.equivalent_language(&target),
            "{expr}: learned {}",
            learned.display(&alphabet)
        );
    }
}
