//! Property-based tests for the graph and learning layers: SCP minimality,
//! evaluation correctness, learner soundness, RPNI identification, and the
//! certain-node lemmas, all on randomly generated graphs and samples.

use pathlearn::automata::char_sample::characteristic_sample;
use pathlearn::automata::rpni::rpni;
use pathlearn::automata::word::canonical_cmp;
use pathlearn::core::consistency::is_consistent;
use pathlearn::core::theory::characteristic_instance;
use pathlearn::graph::eval::{eval_monadic, eval_monadic_naive};
use pathlearn::graph::scp::scp_naive;
use pathlearn::graph::ScpFinder;
use pathlearn::interactive::certain::{is_certain_negative, is_informative};
use pathlearn::prelude::*;
use proptest::prelude::*;

const LABELS: [&str; 3] = ["a", "b", "c"];

/// Strategy: a random small graph over {a, b, c}.
fn arb_graph() -> impl Strategy<Value = GraphDb> {
    (
        2usize..8,
        proptest::collection::vec((0u32..8, 0usize..3, 0u32..8), 1..18),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
            for i in 0..n {
                builder.add_node(&format!("n{i}"));
            }
            let n = n as u32;
            for (src, sym, dst) in edges {
                builder.add_edge_ids(src % n, Symbol::from_index(sym), dst % n);
            }
            builder.build()
        })
}

/// Strategy: a labeling of up to `n` nodes (node, is_positive).
fn arb_labels() -> impl Strategy<Value = Vec<(u32, bool)>> {
    proptest::collection::vec((0u32..8, any::<bool>()), 0..6)
}

fn build_sample(graph: &GraphDb, labels: &[(u32, bool)]) -> Sample {
    let mut sample = Sample::new();
    for &(node, positive) in labels {
        let node = node % graph.num_nodes() as u32;
        if !sample.is_labeled(node) {
            sample.add(node, positive);
        }
    }
    sample
}

/// Strategy: a random prefix-free-able regex over {a, b, c}.
fn arb_query_regex() -> impl Strategy<Value = Regex> {
    let leaf = (0usize..3).prop_map(|i| Regex::Symbol(Symbol::from_index(i)));
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.prop_map(|r| Regex::concat(vec![Regex::star(r.clone()), r])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SCP search agrees with naive canonical enumeration.
    #[test]
    fn scp_matches_naive(graph in arb_graph(), labels in arb_labels(), k in 0usize..4) {
        let sample = build_sample(&graph, &labels);
        let mut finder = ScpFinder::new(&graph, sample.neg());
        for node in graph.nodes() {
            let fast = finder.scp(node, k);
            let slow = scp_naive(&graph, node, sample.neg(), k);
            match (fast, slow) {
                (Some(f), Some(s)) => {
                    prop_assert_eq!(canonical_cmp(&f, &s), std::cmp::Ordering::Equal)
                }
                (None, None) => {}
                (f, s) => prop_assert!(false, "node {}: {:?} vs {:?}", node, f, s),
            }
        }
    }

    /// Backward product evaluation agrees with per-node forward search.
    #[test]
    fn eval_matches_naive(graph in arb_graph(), regex in arb_query_regex()) {
        let dfa = regex.to_dfa(3);
        prop_assert_eq!(eval_monadic(&dfa, &graph), eval_monadic_naive(&dfa, &graph));
    }

    /// Soundness with abstain (Definition 3.4(1)): whatever the learner
    /// returns is consistent with the sample.
    #[test]
    fn learner_is_sound(graph in arb_graph(), labels in arb_labels()) {
        let sample = build_sample(&graph, &labels);
        let outcome = Learner::default().learn(&graph, &sample);
        if let Some(query) = outcome.query {
            let selected = query.eval(&graph);
            for &p in sample.pos() {
                prop_assert!(selected.contains(p as usize));
            }
            for &n in sample.neg() {
                prop_assert!(!selected.contains(n as usize));
            }
        }
    }

    /// When the user labels consistently with a goal query and every node
    /// is labeled, the learner (if it answers) returns a query that
    /// selects exactly the goal's set — the Figure 8 guarantee.
    #[test]
    fn fully_labeled_goal_yields_equivalent_selection(
        graph in arb_graph(),
        regex in arb_query_regex(),
    ) {
        let goal = PathQuery::from_regex(&regex, 3);
        let selection = goal.eval(&graph);
        let mut sample = Sample::new();
        for node in graph.nodes() {
            sample.add(node, selection.contains(node as usize));
        }
        let outcome = Learner::default().learn(&graph, &sample);
        if let Some(query) = outcome.query {
            prop_assert_eq!(query.eval(&graph), selection);
        }
    }

    /// RPNI identifies random targets from their characteristic samples
    /// (the [35] guarantee our Theorem 3.5 reduction relies on).
    #[test]
    fn rpni_identifies_random_targets(regex in arb_query_regex()) {
        let target = regex.to_dfa(3);
        prop_assume!(!target.language_is_empty());
        let words = characteristic_sample(&target);
        let learned = rpni(&words.pos, &words.neg, 3);
        prop_assert!(
            learned.equivalent(&target),
            "target {:?}", regex
        );
    }

    /// Theorem 3.5 on random prefix-free targets: the characteristic
    /// instance makes the graph learner identify the target.
    #[test]
    fn theorem_3_5_random_targets(regex in arb_query_regex()) {
        let alphabet = Alphabet::from_labels(LABELS);
        let target = PathQuery::from_regex(&regex, 3).prefix_free();
        prop_assume!(!target.dfa().language_is_empty());
        prop_assume!(!target.dfa().accepts(&[]));
        let instance = characteristic_instance(&target, &alphabet).unwrap();
        let learned = Learner::with_fixed_k(instance.required_k)
            .learn(&instance.graph, &instance.sample)
            .query;
        match learned {
            Some(q) => prop_assert!(
                q.equivalent_language(&target),
                "learned {} for target {}",
                q.display(&alphabet),
                target.display(&alphabet)
            ),
            None => prop_assert!(false, "abstained on characteristic instance"),
        }
    }

    /// Lemma 4.1 coherence: a certain-negative node is never k-informative,
    /// and informative nodes can always be labeled either way while keeping
    /// the sample consistent.
    #[test]
    fn certain_nodes_coherence(graph in arb_graph(), labels in arb_labels()) {
        let sample = build_sample(&graph, &labels);
        prop_assume!(is_consistent(&graph, &sample));
        let mut finder = ScpFinder::new(&graph, sample.neg());
        for node in graph.nodes() {
            if sample.is_labeled(node) {
                continue;
            }
            if is_certain_negative(&graph, &sample, node) {
                for k in 0..4 {
                    prop_assert!(!finder.is_k_informative(node, k));
                }
            }
            if is_informative(&graph, &sample, node) {
                // Both extensions stay consistent (Lemma A.1 split).
                let as_pos = sample.clone().positive(node);
                let as_neg = sample.clone().negative(node);
                prop_assert!(is_consistent(&graph, &as_pos), "node {}", node);
                prop_assert!(is_consistent(&graph, &as_neg), "node {}", node);
            }
        }
    }

    /// The interactive session terminates and, when it halts on the
    /// condition, the learned query matches the goal's selection.
    #[test]
    fn interactive_session_terminates(graph in arb_graph(), regex in arb_query_regex()) {
        let goal = PathQuery::from_regex(&regex, 3);
        let session = InteractiveSession::new(&graph, InteractiveConfig::default());
        let result = session.run_against_goal(&goal);
        prop_assert!(result.labels_used() <= graph.num_nodes());
        if result.halt == pathlearn::interactive::HaltReason::ConditionMet {
            let learned = result.query.expect("condition met implies a query");
            prop_assert_eq!(learned.eval(&graph), goal.eval(&graph));
        }
    }
}
