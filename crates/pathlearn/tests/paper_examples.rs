//! Integration tests reproducing every worked example in the paper's body
//! (experiments E7–E10 of DESIGN.md §4).

use pathlearn::core::consistency::{check_consistency, is_consistent};
use pathlearn::graph::graph::figure3_g0;
use pathlearn::interactive::certain::{is_certain_negative, is_certain_positive};
use pathlearn::prelude::*;

fn g0_paper_sample(graph: &GraphDb) -> Sample {
    Sample::new()
        .positive(graph.node_id("v1").unwrap())
        .positive(graph.node_id("v3").unwrap())
        .negative(graph.node_id("v2").unwrap())
        .negative(graph.node_id("v7").unwrap())
}

/// §2's statements about G0: matches of `aba`, query selections, the
/// infinite path language of ν1.
#[test]
fn section2_facts_about_g0() {
    let graph = figure3_g0();
    let alphabet = graph.alphabet();
    let v1 = graph.node_id("v1").unwrap();
    let v3 = graph.node_id("v3").unwrap();
    let v4 = graph.node_id("v4").unwrap();

    // aba ∈ paths(ν1) and ∈ paths(ν3); matching sequences exist.
    let aba = alphabet.parse_word("a b a").unwrap();
    assert!(graph.covers(&aba, &[v1]));
    assert!(graph.covers(&aba, &[v3]));

    // paths(ν1) is infinite; paths(ν5) is finite.
    assert!(graph.has_infinite_paths(v1));
    assert!(!graph.has_infinite_paths(graph.node_id("v5").unwrap()));

    // Query selections (§2).
    let query_a = PathQuery::parse("a", alphabet).unwrap();
    let selected = query_a.eval(&graph);
    assert_eq!(selected.len(), 6);
    assert!(!selected.contains(v4 as usize));

    let abc = PathQuery::parse("(a·b)*·c", alphabet).unwrap();
    let selected = abc.eval(&graph);
    assert_eq!(
        selected.iter().collect::<Vec<_>>(),
        vec![v1 as usize, v3 as usize]
    );

    let bbcc = PathQuery::parse("b·b·c·c", alphabet).unwrap();
    assert!(bbcc.eval(&graph).is_empty());
}

/// §3.1's consistency example: S⁺={ν1,ν3}, S⁻={ν2,ν7} is consistent,
/// witnessed by queries like (a·b)*·c and c + a·b·c.
#[test]
fn section31_consistency_example() {
    let graph = figure3_g0();
    let sample = g0_paper_sample(&graph);
    assert!(is_consistent(&graph, &sample));
    for expr in ["(a·b)*·c", "c + a·b·c"] {
        let q = PathQuery::parse(expr, graph.alphabet()).unwrap();
        let selected = q.eval(&graph);
        for &p in sample.pos() {
            assert!(selected.contains(p as usize), "{expr} must select ν{p}");
        }
        for &n in sample.neg() {
            assert!(
                !selected.contains(n as usize),
                "{expr} must not select ν{n}"
            );
        }
    }
}

/// §3.2's full worked example (E7): SCP selection, the PTA of Figure 6(a),
/// the merge sequence, and the learned query (a·b)*·c of Figure 6(b).
#[test]
fn section32_worked_example() {
    let graph = figure3_g0();
    let alphabet = graph.alphabet();
    let sample = g0_paper_sample(&graph);

    let outcome = Learner::with_fixed_k(3).learn(&graph, &sample);
    let stats = &outcome.stats;

    // P = {abc, c}.
    let scps: Vec<_> = stats.scps.iter().map(|(_, w)| w.clone()).collect();
    assert!(scps.contains(&alphabet.parse_word("a b c").unwrap()));
    assert!(scps.contains(&alphabet.parse_word("c").unwrap()));

    // Figure 6(a): the PTA has 5 states (ε, a, c, ab, abc).
    assert_eq!(stats.pta_states, 5);
    // Figure 6(b): generalization reaches the 3-state DFA.
    assert_eq!(stats.generalized_states, 3);

    let learned = outcome.query.expect("consistent");
    let target = PathQuery::parse("(a·b)*·c", alphabet).unwrap();
    assert!(learned.equivalent_language(&target));
}

/// §3.2's merge justifications: merging ε/a accepts b·c, which is covered
/// by ν2; merging ε/c accepts ε, covered by both negatives.
#[test]
fn section32_merge_blockers() {
    let graph = figure3_g0();
    let alphabet = graph.alphabet();
    let v2 = graph.node_id("v2").unwrap();
    let v7 = graph.node_id("v7").unwrap();
    let bc = alphabet.parse_word("b c").unwrap();
    assert!(graph.covers(&bc, &[v2]));
    // ε is covered by any node.
    assert!(graph.covers(&[], &[v2]));
    assert!(graph.covers(&[], &[v7]));
    // …but b·c is *not* a path of ν7 (no c reachable from ν7):
    assert!(!graph.covers(&bc, &[v7]));
}

/// Figure 5 (E8): an inconsistent sample — the positive's paths are all
/// covered — makes the learner abstain and the exact check say so.
#[test]
fn figure5_inconsistency() {
    let mut builder = GraphBuilder::new();
    builder.add_edge("pos", "a", "pos_b");
    builder.add_edge("pos_b", "b", "pos_b");
    builder.add_edge("neg1", "a", "neg1_b");
    builder.add_edge("neg1_b", "b", "neg1_b");
    builder.add_node("neg2");
    let graph = builder.build();
    let sample = Sample::new()
        .positive(graph.node_id("pos").unwrap())
        .negative(graph.node_id("neg1").unwrap())
        .negative(graph.node_id("neg2").unwrap());

    assert!(!is_consistent(&graph, &sample));
    assert!(check_consistency(&graph, &sample).is_err());
    let outcome = Learner::default().learn(&graph, &sample);
    assert!(outcome.query.is_none(), "learner must abstain (null)");
}

/// §3.3 / Figure 8 (E9): on a graph with no characteristic sample for the
/// goal, the learner returns an *equivalent* query — indistinguishable by
/// the user (same selected set).
#[test]
fn figure8_equivalent_query() {
    let mut builder = GraphBuilder::new();
    // A small graph where (a·b)*·c collapses: label everything w.r.t.
    // the goal; the learner's answer must select the same set.
    builder.add_edge("x1", "a", "x2");
    builder.add_edge("x2", "b", "x1");
    builder.add_edge("x1", "c", "x3");
    builder.add_edge("x2", "a", "x4");
    let graph = builder.build();
    let goal = PathQuery::parse("(a·b)*·c", graph.alphabet()).unwrap();
    let goal_selection = goal.eval(&graph);
    let mut sample = Sample::new();
    for node in graph.nodes() {
        sample.add(node, goal_selection.contains(node as usize));
    }
    let learned = Learner::default()
        .learn(&graph, &sample)
        .query
        .expect("consistent");
    assert_eq!(learned.eval(&graph), goal_selection);
}

/// Figure 10 (E10): a node that is certain (labeling it adds nothing) —
/// and labeling it contrary to its certain label is inconsistent.
#[test]
fn figure10_certain_node() {
    let mut builder = GraphBuilder::new();
    builder.add_edge("neg", "a", "sink");
    builder.add_edge("pos", "a", "sink");
    builder.add_edge("pos", "b", "sink");
    builder.add_edge("u", "a", "sink");
    builder.add_edge("u", "b", "sink");
    let graph = builder.build();
    let pos = graph.node_id("pos").unwrap();
    let neg = graph.node_id("neg").unwrap();
    let unlabeled = graph.node_id("u").unwrap();
    let sample = Sample::new().positive(pos).negative(neg);

    assert!(is_certain_positive(&graph, &sample, unlabeled));
    assert!(!is_certain_negative(&graph, &sample, unlabeled));

    // Lemma A.1 consequence: labeling a Cert⁺ node negative yields an
    // inconsistent sample.
    let contradictory = sample.clone().negative(unlabeled);
    assert!(!is_consistent(&graph, &contradictory));
    // Labeling it positive stays consistent.
    let confirming = sample.positive(unlabeled);
    assert!(is_consistent(&graph, &confirming));
}

/// The geographical example of §1/Figure 1: the goal `(tram+bus)*·cinema`
/// selects N1, N2, N4, N6 and the interactive loop reaches an equivalent
/// query.
#[test]
fn figure1_geographical_example() {
    let mut builder = GraphBuilder::new();
    for (src, label, dst) in [
        ("N1", "tram", "N4"),
        ("N2", "bus", "N1"),
        ("N2", "bus", "N3"),
        ("N4", "cinema", "C1"),
        ("N6", "cinema", "C2"),
        ("N3", "restaurant", "R1"),
        ("N5", "restaurant", "R2"),
        ("N6", "bus", "N5"),
        ("N4", "tram", "N5"),
        ("N5", "bus", "N3"),
    ] {
        builder.add_edge(src, label, dst);
    }
    let graph = builder.build();
    let goal = PathQuery::parse("(tram+bus)*·cinema", graph.alphabet()).unwrap();
    let selected = goal.eval(&graph);
    let mut names: Vec<&str> = selected.iter().map(|n| graph.node_name(n as u32)).collect();
    names.sort();
    // §1: q selects N1, N2, N4 and N6 (through tram/bus paths to cinema).
    assert_eq!(names, vec!["N1", "N2", "N4", "N6"]);

    let session = InteractiveSession::new(&graph, InteractiveConfig::default());
    let result = session.run_against_goal(&goal);
    assert_eq!(result.query.expect("goal reachable").eval(&graph), selected);
}
