//! # pathlearn — learning path queries on graph databases
//!
//! A from-scratch Rust reproduction of *Learning Path Queries on Graph
//! Databases* (Bonifati, Ciucanu, Lemay — EDBT 2015). This meta-crate
//! re-exports the public API of the workspace:
//!
//! * [`automata`] — NFAs/DFAs, regexes, RPNI, antichain inclusion;
//! * [`graph`] — the graph database, `paths_G` machinery, RPQ evaluation,
//!   SCP search;
//! * [`core`] — the paper's learning algorithms (Algorithms 1–3),
//!   consistency checking, characteristic graphs (Theorem 3.5);
//! * [`interactive`] — the interactive scenario of §4 (certain nodes,
//!   `kR`/`kS` strategies, the Figure 9 loop);
//! * [`datagen`] — synthetic graph generators and the paper's workloads;
//! * [`eval`] — experiment runners and metrics for §5;
//! * [`server`] — the concurrent RPQ serving layer: canonical result
//!   cache, query coalescing, admission scheduling over the eval pool.
//!
//! ## Quickstart
//!
//! ```
//! use pathlearn::prelude::*;
//!
//! // The geographical graph of Figure 1.
//! let mut builder = GraphBuilder::new();
//! for (src, label, dst) in [
//!     ("N1", "tram", "N4"), ("N2", "bus", "N1"), ("N2", "bus", "N3"),
//!     ("N3", "bus", "N2"), ("N4", "cinema", "C1"), ("N6", "cinema", "C2"),
//! ] {
//!     builder.add_edge(src, label, dst);
//! }
//! let graph = builder.build();
//!
//! // Positive examples: nodes from which a cinema is reachable by
//! // public transport; negative: the cinema node itself.
//! let sample = Sample::new()
//!     .positive(graph.node_id("N2").unwrap())
//!     .positive(graph.node_id("N6").unwrap())
//!     .negative(graph.node_id("C1").unwrap());
//!
//! let learner = Learner::default();
//! let outcome = learner.learn(&graph, &sample);
//! let query = outcome.query.expect("a consistent query exists");
//! // Sound with abstain: the learned query is consistent with the sample.
//! let selected = query.eval(&graph);
//! assert!(selected.contains(graph.node_id("N2").unwrap() as usize));
//! assert!(selected.contains(graph.node_id("N6").unwrap() as usize));
//! assert!(!selected.contains(graph.node_id("C1").unwrap() as usize));
//! ```

pub use pathlearn_automata as automata;
pub use pathlearn_core as core;
pub use pathlearn_datagen as datagen;
pub use pathlearn_eval as eval;
pub use pathlearn_graph as graph;
pub use pathlearn_interactive as interactive;
pub use pathlearn_server as server;

/// Convenience re-exports of the most common types.
pub mod prelude {
    pub use pathlearn_automata::{Alphabet, Dfa, Nfa, Regex, Symbol, Word};
    pub use pathlearn_core::{
        query::PathQuery,
        sample::{Sample, Sample2},
        Learner, LearnerConfig,
    };
    pub use pathlearn_graph::{EvalPool, GraphBuilder, GraphDb, NodeId};
    pub use pathlearn_interactive::{
        session::{InteractiveConfig, InteractiveSession},
        strategy::StrategyKind,
    };
    pub use pathlearn_server::{QueryService, ServeConfig, ServeStats, Served};
}
