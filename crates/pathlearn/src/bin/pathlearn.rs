//! `pathlearn` — command-line interface to the library.
//!
//! ```text
//! pathlearn eval <graph.txt> --query "(a·b)*·c"
//!     Evaluate a path query; prints the selected nodes.
//!
//! pathlearn learn <graph.txt> --pos v1,v3 --neg v2,v7 [--k N] [--threads T]
//!     Learn a query from labeled nodes (Algorithm 1); prints the regex.
//!
//! pathlearn interactive <graph.txt> [--goal "(a·b)*·c"] [--strategy kR|kS]
//!                       [--threads T]
//!     Run the Figure 9 loop. With --goal, a simulated user answers; without,
//!     *you* are the user: the tool shows each proposed node's neighborhood
//!     and asks for +/-.
//!
//! `--threads` sizes the evaluation pool (SCP fan-out + intra-query
//! parallel evaluation); results are identical at every thread count.
//!
//! pathlearn serve <graph.txt> --queries <file> [--clients N] [--threads T]
//!                 [--repeat R] [--cache-mb M] [--strategy auto|forward|backward|bidirectional]
//!     Run the serving layer over a query workload file (one regex per
//!     line, `#` comments): canonical result cache + coalescing over N
//!     client threads. Prints per-query selections and cache/throughput
//!     stats, including per-strategy evaluation counts (the whole-query
//!     planner picks forward/backward/bidirectional per query under
//!     `auto`, the default; forcing a direction never changes results,
//!     only speed).
//!
//! pathlearn serve <graph.txt> --listen ADDR [--threads T] [--cache-mb M]
//!                 [--data-dir DIR] [--checkpoint-every N]
//!     Serve the graph over TCP with the framed binary protocol
//!     (pathlearn-server::proto): deadlines, load shedding, graceful
//!     drain. Prints `listening on <addr>` (with the real port for
//!     `:0`) and runs until killed. With `--data-dir`, the served
//!     graph is durable: DIR holds a versioned snapshot plus a
//!     write-ahead log, every `update` is fsynced before it is
//!     acknowledged, and a restart recovers exactly the acknowledged
//!     state (the text graph is only parsed on the first run, to seed
//!     the snapshot). `--checkpoint-every` caps WAL growth: past N
//!     records the WAL is folded into a fresh snapshot (default 1024).
//!
//! pathlearn snapshot <graph.txt> <out.snap>
//!     Convert a text graph to the versioned binary snapshot format
//!     (pathlearn-graph::graph::snapshot). `serve --data-dir` loads a
//!     snapshot much faster than re-parsing text, and the strict
//!     decoder rejects any damaged file with a diagnostic.
//!
//! pathlearn update <ADDR> [--add \"src label dst\"]... [--remove \"src label dst\"]...
//!     Patch a live `pathlearn serve --listen` server over TCP with an
//!     edge delta (removals apply before additions). Unlike restarting
//!     the server on a new file, a delta invalidates only the cache
//!     entries whose queries can see the touched labels — everything
//!     else keeps serving as hits, and established fingerprints keep
//!     resolving.
//!
//! pathlearn stats <graph.txt>
//!     Graph statistics (nodes, edges, labels, degree distribution).
//! ```
//!
//! Graph files are the line format of `pathlearn-graph::io`:
//! `src label dst` per edge, `node NAME` for isolated nodes, `#` comments.

use pathlearn::graph::io::parse_graph;
use pathlearn::graph::neighborhood::neighborhood;
use pathlearn::interactive::session::LabelOracle;
use pathlearn::prelude::*;
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `pathlearn help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        "eval" => eval_command(&args[1..]),
        "learn" => learn_command(&args[1..]),
        "interactive" => interactive_command(&args[1..]),
        "serve" => serve_command(&args[1..]),
        "snapshot" => snapshot_command(&args[1..]),
        "update" => update_command(&args[1..]),
        "stats" => stats_command(&args[1..]),
        other => Err(format!("unknown command `{other}`")),
    }
}

const HELP: &str = "\
pathlearn — learning path queries on graph databases (EDBT 2015)

USAGE:
  pathlearn eval <graph.txt> --query <REGEX>
  pathlearn learn <graph.txt> --pos A,B --neg C,D [--k N] [--threads T]
  pathlearn interactive <graph.txt> [--goal <REGEX>] [--strategy kR|kS] [--seed N] [--threads T]
  pathlearn serve <graph.txt> --queries <file> [--clients N] [--threads T] [--repeat R] [--cache-mb M] [--strategy auto|forward|backward|bidirectional]
  pathlearn serve <graph.txt> --listen ADDR [--admin ADDR2] [--threads T] [--cache-mb M] [--strategy ...] [--data-dir DIR] [--checkpoint-every N]
  pathlearn snapshot <graph.txt> <out.snap>
  pathlearn update <ADDR> [--add \"src label dst\"]... [--remove \"src label dst\"]...
  pathlearn stats <graph.txt>
";

struct Options {
    graph_path: String,
    flags: Vec<(String, String)>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut graph_path = None;
    let mut flags = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = iter
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name.to_owned(), value.clone()));
        } else if graph_path.is_none() {
            graph_path = Some(arg.clone());
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    Ok(Options {
        graph_path: graph_path.ok_or("missing graph file argument")?,
        flags,
    })
}

impl Options {
    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All values of a repeatable flag, in the order given.
    fn flag_all<'a>(&'a self, name: &str) -> Vec<&'a str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn load_graph(&self) -> Result<GraphDb, String> {
        let text = std::fs::read_to_string(&self.graph_path)
            .map_err(|e| format!("cannot read {}: {e}", self.graph_path))?;
        parse_graph(&text).map_err(|e| e.to_string())
    }

    /// The `--threads` flag, defaulting to `default` (the evaluation-pool
    /// size; 1 = sequential).
    fn threads(&self, default: usize) -> Result<usize, String> {
        self.flag("threads")
            .map(|t| {
                t.parse::<usize>()
                    .map_err(|_| "--threads needs an integer".to_owned())
            })
            .transpose()
            .map(|t| t.unwrap_or(default).max(1))
    }

    fn node_list(&self, graph: &GraphDb, name: &str) -> Result<Vec<NodeId>, String> {
        let Some(list) = self.flag(name) else {
            return Ok(Vec::new());
        };
        list.split(',')
            .filter(|s| !s.is_empty())
            .map(|n| {
                graph
                    .node_id(n.trim())
                    .ok_or_else(|| format!("unknown node `{n}`"))
            })
            .collect()
    }
}

fn eval_command(args: &[String]) -> Result<(), String> {
    let options = parse_options(args)?;
    let graph = options.load_graph()?;
    let expr = options.flag("query").ok_or("missing --query")?;
    let query = PathQuery::parse(expr, graph.alphabet()).map_err(|e| e.to_string())?;
    let selected = query.eval(&graph);
    println!(
        "query {} selects {} of {} nodes ({:.2}%):",
        query.display(graph.alphabet()),
        selected.len(),
        graph.num_nodes(),
        100.0 * query.selectivity(&graph)
    );
    let mut names: Vec<&str> = selected
        .iter()
        .map(|n| graph.node_name(n as NodeId))
        .collect();
    names.sort();
    for name in names {
        println!("  {name}");
    }
    Ok(())
}

fn learn_command(args: &[String]) -> Result<(), String> {
    let options = parse_options(args)?;
    let graph = options.load_graph()?;
    let pos = options.node_list(&graph, "pos")?;
    let neg = options.node_list(&graph, "neg")?;
    if pos.is_empty() && neg.is_empty() {
        return Err("need at least one of --pos/--neg".into());
    }
    let sample = Sample::from_parts(pos, neg);
    let learner = match options.flag("k") {
        Some(k) => Learner::with_fixed_k(k.parse().map_err(|_| "--k needs an integer")?),
        None => Learner::default(),
    };
    let learner = learner.with_pool(EvalPool::new(options.threads(1)?));
    let outcome = learner.learn(&graph, &sample);
    match outcome.query {
        Some(query) => {
            println!("learned: {}", query.display(graph.alphabet()));
            println!("size:    {} states (canonical DFA)", query.size());
            let selected = query.eval(&graph);
            let mut names: Vec<&str> = selected
                .iter()
                .map(|n| graph.node_name(n as NodeId))
                .collect();
            names.sort();
            println!("selects: {}", names.join(", "));
            for (node, path) in &outcome.stats.scps {
                println!(
                    "SCP {}: {}",
                    graph.node_name(*node),
                    pathlearn::automata::word::format_word(path, graph.alphabet())
                );
            }
            Ok(())
        }
        None => Err(
            "learner abstained (null): the sample is inconsistent or needs \
                     longer SCPs — label more nodes or raise --k"
                .into(),
        ),
    }
}

fn serve_command(args: &[String]) -> Result<(), String> {
    use pathlearn::server::{QueryService, ServeConfig, Served};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let options = parse_options(args)?;
    let cache_mb = options
        .flag("cache-mb")
        .map(|m| {
            m.parse::<usize>()
                .map_err(|_| "--cache-mb needs an integer")
        })
        .transpose()?
        .unwrap_or(64);
    // Checked: a huge --cache-mb must be a clean diagnostic, not a
    // debug-mode shift-overflow panic mid-setup.
    let cache_bytes = cache_mb
        .checked_mul(1 << 20)
        .ok_or_else(|| format!("--cache-mb {cache_mb} overflows the byte budget"))?;
    let strategy = match options.flag("strategy").unwrap_or("auto") {
        "auto" => pathlearn::graph::Strategy::Auto,
        "forward" => pathlearn::graph::Strategy::Forward,
        "backward" => pathlearn::graph::Strategy::Backward,
        "bidirectional" | "bidi" => pathlearn::graph::Strategy::Bidirectional,
        other => {
            return Err(format!(
                "unknown strategy `{other}` (auto/forward/backward/bidirectional)"
            ))
        }
    };
    let config = ServeConfig {
        threads: options.threads(1)?,
        cache: pathlearn::server::CacheConfig {
            capacity_bytes: cache_bytes,
        },
        strategy,
        ..ServeConfig::default()
    };

    let checkpoint_every = options
        .flag("checkpoint-every")
        .map(|n| {
            n.parse::<usize>()
                .map_err(|_| "--checkpoint-every needs an integer")
        })
        .transpose()?
        .unwrap_or(1024);

    if let Some(addr) = options.flag("listen") {
        if options.flag("queries").is_some() {
            return Err("--listen and --queries are mutually exclusive: \
                 --listen serves network clients, --queries drives a local workload"
                .into());
        }
        // Bind the admin surface before recovery: a deployment's health
        // checks can connect during WAL replay and see `503 recovering`
        // until the front door is up and content sources are installed.
        let admin = options
            .flag("admin")
            .map(|admin_addr| {
                pathlearn::server::AdminServer::bind(admin_addr)
                    .map_err(|e| format!("cannot bind admin address {admin_addr}: {e}"))
            })
            .transpose()?;
        let service = match options.flag("data-dir") {
            Some(dir) => {
                // Durable mode: the graph of record lives in DIR as
                // snapshot + WAL. The text file only seeds the first
                // run — a restart must recover the acknowledged state
                // even if the text file has since changed or vanished.
                let recovered =
                    pathlearn::server::Persistence::recover(dir, checkpoint_every, || {
                        options.load_graph()
                    })
                    .map_err(|e| format!("cannot recover data dir {dir}: {e}"))?;
                let report = &recovered.report;
                let source = match report.source {
                    pathlearn::server::wal::RecoverySource::Snapshot => "snapshot",
                    pathlearn::server::wal::RecoverySource::Fallback => {
                        "text graph (first run, snapshot seeded)"
                    }
                };
                println!(
                    "data dir {dir}: recovered from {source}, {} WAL record(s) replayed{}{}",
                    report.wal_records_replayed,
                    if report.torn_bytes_dropped > 0 {
                        format!(
                            ", {} torn byte(s) dropped from an unacknowledged final record",
                            report.torn_bytes_dropped
                        )
                    } else {
                        String::new()
                    },
                    if report.checkpointed {
                        ", checkpointed"
                    } else {
                        ""
                    }
                );
                let service = QueryService::new(recovered.graph, config);
                service.attach_persistence(recovered.persistence);
                service
            }
            None => QueryService::new(options.load_graph()?, config),
        };
        let durable = service.is_durable();
        let server =
            pathlearn::server::Server::bind(service, addr, pathlearn::server::NetConfig::default())
                .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        if let Some(admin) = &admin {
            admin.set_sources(server.admin_sources());
            println!(
                "admin surface on http://{} (/metrics, /healthz, /slow)",
                admin.local_addr()
            );
        }
        println!("listening on {}", server.local_addr());
        println!(
            "protocol: framed binary v1 (see pathlearn-server::proto); {}stop with ^C",
            if durable {
                "deltas are fsynced before acknowledgment; "
            } else {
                ""
            }
        );
        // Flush so child-process supervisors see the address line
        // immediately even through a pipe.
        std::io::stdout().flush().ok();
        loop {
            std::thread::park();
        }
    }

    if options.flag("data-dir").is_some() {
        return Err("--data-dir requires --listen: durability attaches to the \
             live TCP server, not a one-shot local workload"
            .into());
    }
    let graph = options.load_graph()?;
    let queries_path = options.flag("queries").ok_or("missing --queries")?;
    let text = std::fs::read_to_string(queries_path)
        .map_err(|e| format!("cannot read workload file {queries_path}: {e}"))?;
    let mut queries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let query = PathQuery::parse(line, graph.alphabet())
            .map_err(|e| format!("{queries_path}:{}: {e}", lineno + 1))?;
        queries.push((line.to_owned(), query.dfa().clone()));
    }
    if queries.is_empty() {
        return Err(format!("{queries_path} contains no queries"));
    }
    let clients = options
        .flag("clients")
        .map(|c| c.parse::<usize>().map_err(|_| "--clients needs an integer"))
        .transpose()?
        .unwrap_or(1)
        .max(1);
    let repeat = options
        .flag("repeat")
        .map(|r| r.parse::<usize>().map_err(|_| "--repeat needs an integer"))
        .transpose()?
        .unwrap_or(1)
        .max(1);
    let num_nodes = graph.num_nodes();
    let service = Arc::new(QueryService::new(graph, config));

    // The workload: the query list cycled `repeat` times, drained by the
    // client threads from one atomic cursor.
    let total = queries.len() * repeat;
    println!(
        "serving {} submissions ({} unique lines x {repeat}) over {clients} client thread(s), {}-wide eval pool",
        total,
        queries.len(),
        service.threads()
    );
    println!(
        "cache budget: {cache_mb} MiB ≈ {} results on this graph",
        service.cache_capacity_results()
    );
    let cursor = AtomicUsize::new(0);
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let service = service.clone();
            let cursor = &cursor;
            let queries = &queries;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    return;
                }
                service.query_monadic(&queries[i % queries.len()].1);
            });
        }
    });
    let wall = started.elapsed();
    // Snapshot counters BEFORE the per-query report below, so the
    // printed hit/miss numbers describe exactly the driven workload
    // (the report pass issues its own lookups).
    let stats = service.stats();
    let (entries, bytes) = service.cache_usage();

    // Per-query report: normally each entry is still a cache hit; with
    // a tight --cache-mb an evicted one is re-evaluated here.
    for (line, dfa) in &queries {
        let response = service.query_monadic(dfa);
        let marker = match response.served {
            Served::Hit => "cached",
            _ => "evaluated",
        };
        println!(
            "  {line}: {} of {} nodes ({marker}, canonical |Q| = {}, key {:016x})",
            response.result.len(),
            num_nodes,
            response.canonical_states,
            response.fingerprint
        );
    }
    println!(
        "served {total} in {:.3}s ({:.0} queries/s)",
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64().max(1e-9)
    );
    println!(
        "cache: {} hits, {} misses, {} coalesced, hit rate {:.1}% ({} entries, {} KiB resident)",
        stats.hits,
        stats.misses,
        stats.coalesced,
        100.0 * stats.hit_rate(),
        entries,
        bytes / 1024
    );
    println!(
        "evals: {} sequential, {} intra-query, {} batched; {:.3}s total eval time",
        stats.sequential_evals,
        stats.intra_evals,
        stats.batch_evals,
        stats.eval_ns_total as f64 / 1e9
    );
    println!(
        "planner: {} forward, {} backward, {} bidirectional",
        stats.forward_evals, stats.backward_evals, stats.bidirectional_evals
    );
    Ok(())
}

/// `pathlearn snapshot <graph.txt> <out.snap>`: parse a text graph and
/// write it as a versioned binary snapshot. Takes exactly two
/// positionals (the shared option parser handles one, so this command
/// parses its own) and no flags.
fn snapshot_command(args: &[String]) -> Result<(), String> {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(format!("snapshot takes no flags, got `{flag}`"));
    }
    let [input, output] = args else {
        return Err("snapshot needs exactly `<graph.txt> <out.snap>`".into());
    };
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let graph = parse_graph(&text).map_err(|e| e.to_string())?;
    graph
        .save_snapshot(output)
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    let bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {output}: {} nodes, {} edges, {} labels ({bytes} bytes)",
        graph.num_nodes(),
        graph.num_edges(),
        graph.alphabet().len()
    );
    Ok(())
}

/// `pathlearn update <ADDR> --add "src label dst" --remove "src label dst"`:
/// send one `DELTA` frame to a live server. Names are resolved
/// server-side, so a typo comes back as a `BAD_DELTA` diagnostic and the
/// served graph stays untouched.
fn update_command(args: &[String]) -> Result<(), String> {
    use pathlearn::server::Response;

    let options = parse_options(args).map_err(|e| match e.as_str() {
        "missing graph file argument" => "missing server address argument".to_owned(),
        _ => e,
    })?;
    let addr = &options.graph_path; // positional slot doubles as ADDR here
    let parse_edges = |flag: &str| -> Result<Vec<(String, String, String)>, String> {
        options
            .flag_all(flag)
            .into_iter()
            .map(|spec| {
                let mut parts = spec.split_whitespace();
                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                    (Some(src), Some(label), Some(dst), None) => {
                        Ok((src.to_owned(), label.to_owned(), dst.to_owned()))
                    }
                    _ => Err(format!(
                        "--{flag} needs exactly `src label dst`, got `{spec}`"
                    )),
                }
            })
            .collect()
    };
    let add = parse_edges("add")?;
    let remove = parse_edges("remove")?;
    if add.is_empty() && remove.is_empty() {
        return Err("need at least one --add/--remove edge".into());
    }

    let mut client = pathlearn::server::Client::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    match client
        .apply_delta(&add, &remove)
        .map_err(|e| format!("delta roundtrip failed: {e}"))?
    {
        Response::DeltaApplied {
            invalidated,
            compacted,
            delta_edges,
            ..
        } => {
            println!(
                "applied: +{} -{} edge(s); {invalidated} cache entries invalidated",
                add.len(),
                remove.len()
            );
            if compacted {
                println!("overlay compacted into the base graph");
            } else {
                println!("overlay now {delta_edges} pending edge(s)");
            }
            Ok(())
        }
        Response::Error { code, message, .. } => {
            Err(format!("server rejected: {code:?}: {message}"))
        }
        other => Err(format!("unexpected reply: {other:?}")),
    }
}

fn stats_command(args: &[String]) -> Result<(), String> {
    let options = parse_options(args)?;
    let graph = options.load_graph()?;
    println!("nodes:  {}", graph.num_nodes());
    println!("edges:  {}", graph.num_edges());
    println!("labels: {}", graph.alphabet().len());
    let mut label_counts: Vec<(usize, &str)> = graph
        .alphabet()
        .entries()
        .map(|(sym, name)| {
            let count = graph.edges().filter(|&(_, s, _)| s == sym).count();
            (count, name)
        })
        .collect();
    label_counts.sort_unstable_by(|a, b| b.cmp(a));
    for (count, name) in label_counts.iter().take(10) {
        println!("  {name}: {count} edges");
    }
    let max_out = graph
        .nodes()
        .map(|n| graph.out_degree(n))
        .max()
        .unwrap_or(0);
    println!("max out-degree: {max_out}");
    Ok(())
}

/// Oracle that asks the human at the terminal.
struct StdinOracle<'g> {
    graph: &'g GraphDb,
    radius: usize,
}

impl LabelOracle for StdinOracle<'_> {
    fn label(&mut self, node: NodeId) -> bool {
        let hood = neighborhood(self.graph, node, self.radius, true);
        println!(
            "\n── proposed node: {} ── ({} nodes / {} edges within distance {})",
            self.graph.node_name(node),
            hood.fragment.num_nodes(),
            hood.fragment.num_edges(),
            self.radius
        );
        for (src, sym, dst) in hood.fragment.edges() {
            println!(
                "    {} --{}--> {}",
                hood.fragment.node_name(src),
                hood.fragment.alphabet().name(sym),
                hood.fragment.node_name(dst)
            );
        }
        loop {
            print!("label {} [+/-]: ", self.graph.node_name(node));
            std::io::stdout().flush().ok();
            let mut line = String::new();
            if std::io::stdin().lock().read_line(&mut line).is_err() {
                return false;
            }
            match line.trim() {
                "+" | "y" | "yes" => return true,
                "-" | "n" | "no" => return false,
                other => println!("  (got `{other}`; answer + or -)"),
            }
        }
    }
}

fn interactive_command(args: &[String]) -> Result<(), String> {
    let options = parse_options(args)?;
    let graph = options.load_graph()?;
    let strategy = match options.flag("strategy").unwrap_or("kR") {
        "kR" | "kr" => StrategyKind::KRandom,
        "kS" | "ks" => StrategyKind::KSmallest,
        "exact" => StrategyKind::ExactInformative,
        other => return Err(format!("unknown strategy `{other}` (kR/kS/exact)")),
    };
    let seed = options
        .flag("seed")
        .map(|s| s.parse().map_err(|_| "--seed needs an integer"))
        .transpose()?
        .unwrap_or(42);
    let config = InteractiveConfig {
        strategy,
        seed,
        threads: options.threads(InteractiveConfig::default().threads)?,
        ..InteractiveConfig::default()
    };
    let session = InteractiveSession::new(&graph, config);

    let result = match options.flag("goal") {
        Some(expr) => {
            let goal = PathQuery::parse(expr, graph.alphabet()).map_err(|e| e.to_string())?;
            println!(
                "simulating a user with goal {} …",
                goal.display(graph.alphabet())
            );
            session.run_against_goal(&goal)
        }
        None => {
            println!("you are the user: label proposed nodes with + or -.");
            println!("(the session stops when no informative node remains)");
            let mut oracle = StdinOracle {
                graph: &graph,
                radius: 2,
            };
            session.run(&mut oracle, |_, _| false)
        }
    };

    println!(
        "\nsession over after {} labels ({:?})",
        result.labels_used(),
        result.halt
    );
    match &result.query {
        Some(query) => {
            println!("learned query: {}", query.display(graph.alphabet()));
            let selected = query.eval(&graph);
            let mut names: Vec<&str> = selected
                .iter()
                .map(|n| graph.node_name(n as NodeId))
                .collect();
            names.sort();
            println!("selects: {}", names.join(", "));
        }
        None => println!("no query learned"),
    }
    Ok(())
}
