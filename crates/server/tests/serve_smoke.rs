//! End-to-end smoke gate for the serving layer — the suite CI names in
//! both `PATHLEARN_THREADS` legs.
//!
//! Spawns the service in-process, fires a **duplicate-heavy** query mix
//! at it from client-thread counts {1, 4} crossed with evaluation-pool
//! widths {1, 4, `PATHLEARN_THREADS`} (the env leg comes in through
//! [`ServeConfig::from_env`], so each CI matrix leg covers a distinct
//! configuration), and asserts the acceptance contract:
//!
//! * every served answer is **bit-identical** to the direct sequential
//!   evaluators (`eval_monadic` / `eval_binary_from`);
//! * the measured **hit rate is > 0** on the duplicate-heavy mix (in
//!   fact ≥ the duplication factor's floor, since canonicalization also
//!   folds the syntactic variants);
//! * **coalescing** of concurrent duplicate submissions is observed:
//!   within-batch dedup deterministically, and cross-thread in-flight
//!   coalescing under an eval holdoff that keeps the window open.

use pathlearn_automata::{Alphabet, BitSet, Dfa, Regex, Symbol};
use pathlearn_graph::eval::{eval_binary_from, eval_monadic};
use pathlearn_graph::{GraphBuilder, GraphDb};
use pathlearn_server::{QueryService, ServeConfig, Served};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A 200-node multi-word graph so frontiers straddle block boundaries
/// and the intra-query threshold can be crossed.
fn ring_graph(n: usize) -> GraphDb {
    let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(["a", "b", "c"]));
    let first = builder.add_nodes("n", n);
    for i in 0..n as u32 {
        let next = first + (i + 1) % n as u32;
        builder.add_edge_ids(first + i, Symbol::from_index(i as usize % 3), next);
        if i % 5 == 0 {
            builder.add_edge_ids(first + i, Symbol::from_index(2), first + (i + 7) % n as u32);
        }
    }
    builder.build()
}

/// The duplicate-heavy mix: each base expression plus an equivalent
/// syntactic variant, the whole list repeated `repeat` times.
fn workload(graph: &GraphDb, repeat: usize) -> Vec<Dfa> {
    let pairs = [
        ("a·(b·c)", "(a·b)·c"),
        ("(a+b)*·c", "(b+a)*·c"),
        ("c·a*", "c·a*·(a·a)*"),
        ("a", "a+a"),
        ("(a·b)*·c", "c+a·b·(a·b)*·c"),
    ];
    let mut dfas = Vec::new();
    for _ in 0..repeat {
        for (base, variant) in pairs {
            for expr in [base, variant] {
                dfas.push(
                    Regex::parse(expr, graph.alphabet())
                        .unwrap()
                        .to_dfa(graph.alphabet().len()),
                );
            }
        }
    }
    dfas
}

/// Drives `clients` threads over the workload via an atomic cursor and
/// returns the served results in workload order.
fn drive(service: &Arc<QueryService>, queries: &[Dfa], clients: usize) -> Vec<Arc<BitSet>> {
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Arc<BitSet>>> = vec![None; queries.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..clients {
            let service = service.clone();
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        return mine;
                    }
                    mine.push((i, service.query_monadic(&queries[i]).result));
                }
            }));
        }
        for handle in handles {
            for (i, result) in handle.join().unwrap() {
                slots[i] = Some(result);
            }
        }
    });
    slots.into_iter().map(Option::unwrap).collect()
}

#[test]
fn duplicate_heavy_mix_is_bit_identical_with_positive_hit_rate() {
    let graph = ring_graph(200);
    let queries = workload(&graph, 3);
    let expected: Vec<BitSet> = queries.iter().map(|q| eval_monadic(q, &graph)).collect();
    // Pool widths {1, 4} plus the `PATHLEARN_THREADS` leg CI is running
    // us under (via `ServeConfig::from_env`), so the two matrix legs
    // genuinely exercise different pool widths here.
    let env_threads = ServeConfig::from_env().threads.min(8);
    let mut pool_widths = vec![1usize, 4];
    if !pool_widths.contains(&env_threads) {
        pool_widths.push(env_threads);
    }
    for pool_threads in pool_widths {
        for clients in [1usize, 4] {
            let service = Arc::new(QueryService::new(
                graph.clone(),
                ServeConfig {
                    threads: pool_threads,
                    // Exercise both scheduling modes across the matrix.
                    intra_query_node_threshold: if pool_threads > 1 { 100 } else { 4096 },
                    ..ServeConfig::default()
                },
            ));
            let results = drive(&service, &queries, clients);
            for (i, (served, direct)) in results.iter().zip(&expected).enumerate() {
                assert_eq!(
                    **served, *direct,
                    "query {i} differs at pool {pool_threads} × clients {clients}"
                );
            }
            let stats = service.stats();
            assert!(
                stats.hit_rate() > 0.0,
                "no reuse at pool {pool_threads} × clients {clients}: {stats:?}"
            );
            // 5 unique languages in a 30-submission mix: at most 5
            // evaluations, so ≥ 25 submissions were reused.
            assert!(stats.misses <= 5, "unexpected misses: {stats:?}");
            assert_eq!(stats.reused() + stats.misses, queries.len() as u64);
        }
    }
}

#[test]
fn batch_api_coalesces_and_matches_direct_eval() {
    let graph = ring_graph(200);
    let queries = workload(&graph, 2);
    let service = QueryService::new(
        graph.clone(),
        ServeConfig {
            threads: 4,
            ..ServeConfig::default()
        },
    );
    let results = service.query_monadic_batch(&queries);
    for (i, (served, query)) in results.iter().zip(&queries).enumerate() {
        assert_eq!(**served, eval_monadic(query, &graph), "batch slot {i}");
    }
    let stats = service.stats();
    // One submitted batch: 5 unique languages evaluated, every other
    // position folded within the batch — deterministically.
    assert_eq!(stats.misses, 5);
    assert_eq!(stats.batch_deduped, queries.len() as u64 - 5);
    assert_eq!(stats.batch_evals, 5);
    assert!(stats.hit_rate() > 0.5);
}

#[test]
fn concurrent_clients_coalesce_in_flight_duplicates() {
    let graph = ring_graph(200);
    let service = Arc::new(QueryService::new(
        graph.clone(),
        ServeConfig {
            // Keep the in-flight window open long enough that the
            // barrier-released duplicates reliably land inside it.
            eval_holdoff: Duration::from_millis(150),
            ..ServeConfig::default()
        },
    ));
    let query = Regex::parse("(a+b)*·c", graph.alphabet())
        .unwrap()
        .to_dfa(3);
    let expected = eval_monadic(&query, &graph);
    let clients = 4;
    let barrier = Arc::new(std::sync::Barrier::new(clients));
    let expected = &expected;
    let served: Vec<Served> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let service = service.clone();
                let barrier = barrier.clone();
                let query = query.clone();
                scope.spawn(move || {
                    barrier.wait();
                    let response = service.query_monadic(&query);
                    assert_eq!(*response.result, *expected);
                    response.served
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let evaluated = served
        .iter()
        .filter(|s| matches!(s, Served::Evaluated { .. }))
        .count();
    assert_eq!(evaluated, 1, "exactly one client paid the evaluation");
    let stats = service.stats();
    assert_eq!(stats.misses, 1);
    assert!(
        stats.coalesced >= 1,
        "expected in-flight coalescing with the holdoff open: {stats:?}"
    );
}

#[test]
fn binary_serving_matches_direct_eval_across_sources() {
    let graph = ring_graph(120);
    let service = QueryService::new(graph.clone(), ServeConfig::default());
    let query = Regex::parse("a·b·c", graph.alphabet()).unwrap().to_dfa(3);
    for source in graph.nodes().step_by(11) {
        let response = service.query_binary_from(&query, source);
        assert_eq!(
            *response.result,
            eval_binary_from(&query, &graph, source),
            "source {source}"
        );
    }
    // Replay: every source is its own cache entry, all hits now.
    for source in graph.nodes().step_by(11) {
        assert_eq!(
            service.query_binary_from(&query, source).served,
            Served::Hit
        );
    }
    assert!(service.stats().hit_rate() > 0.0);
}
