//! Telemetry gate — named by CI in both `PATHLEARN_THREADS` legs.
//!
//! Pins the observability contract end to end: `STATS` frames are the
//! sorted registry snapshot with every legacy key intact, per-query
//! traces agree bit-for-bit with the `Served` records the client saw,
//! and the admin surface serves a parseable Prometheus exposition,
//! a `/healthz` that flips to `draining` on shutdown, and a `/slow`
//! log that captures threshold-gated traces.

use pathlearn_automata::{CanonicalQuery, Regex, Symbol};
use pathlearn_graph::{GraphBuilder, GraphDb};
use pathlearn_server::{
    AdminServer, CacheConfig, Client, NetConfig, QueryService, Response, ServeConfig, Server,
    NO_DEADLINE_MS,
};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A ring with chords — multi-word frontiers, multi-level BFS.
fn ring_graph(n: usize) -> GraphDb {
    let mut builder =
        GraphBuilder::with_alphabet(pathlearn_automata::Alphabet::from_labels(["a", "b", "c"]));
    let first = builder.add_nodes("n", n);
    for i in 0..n as u32 {
        let next = first + (i + 1) % n as u32;
        builder.add_edge_ids(first + i, Symbol::from_index(i as usize % 3), next);
        if i % 5 == 0 {
            builder.add_edge_ids(first + i, Symbol::from_index(2), first + (i + 7) % n as u32);
        }
    }
    builder.build()
}

fn canonical(graph: &GraphDb, expr: &str) -> CanonicalQuery {
    let dfa = Regex::parse(expr, graph.alphabet())
        .unwrap()
        .to_dfa(graph.alphabet().len());
    CanonicalQuery::new(&dfa)
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("counter {name} missing"))
        .1
}

/// Minimal HTTP/1.0 GET against the admin surface: status code + body.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read admin reply");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// The pre-registry `STATS` frame key set: every name a v4 client (or
/// `bench_serve` snapshot) may look up by string. The registry
/// migration must keep all of them answering.
const LEGACY_KEYS: [&str; 36] = [
    "serve.hits",
    "serve.misses",
    "serve.coalesced",
    "serve.batch_deduped",
    "serve.invalidations",
    "serve.deltas_applied",
    "serve.label_invalidations",
    "serve.subsumption_reuses",
    "serve.compactions",
    "serve.sequential_evals",
    "serve.intra_evals",
    "serve.batch_evals",
    "serve.forward_evals",
    "serve.backward_evals",
    "serve.bidirectional_evals",
    "serve.eval_ns_total",
    "serve.deadline_exceeded",
    "serve.cancelled",
    "cache.hits",
    "cache.misses",
    "cache.insertions",
    "cache.evictions",
    "cache.rejected",
    "cache.invalidated",
    "cache.bytes_used",
    "cache.bytes_budget",
    "net.accepted",
    "net.refused",
    "net.active_connections",
    "net.queries",
    "net.shed",
    "net.deadline_replies",
    "net.draining_replies",
    "net.malformed",
    "net.io_errors",
    "net.queue_depth",
];

#[test]
fn stats_counters_are_sorted_and_keep_every_legacy_key() {
    let budget_bytes = 512 * 1024;
    let config = ServeConfig {
        cache: CacheConfig {
            capacity_bytes: budget_bytes,
        },
        ..ServeConfig::from_env()
    };
    let service = QueryService::new(ring_graph(60), config);
    let server =
        Server::bind(service, "127.0.0.1:0", NetConfig::default()).expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();
    for expr in ["(a+b)*·c", "a·b", "c*", "a·b"] {
        match client.query_text(expr, NO_DEADLINE_MS).unwrap() {
            Response::Result { .. } => {}
            other => panic!("expected RESULT, got {other:?}"),
        }
    }

    let stats = client.stats().unwrap();
    let keys: Vec<&str> = stats.iter().map(|(name, _)| name.as_str()).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "STATS keys must arrive sorted");
    sorted.dedup();
    assert_eq!(sorted.len(), keys.len(), "STATS keys must be unique");

    for name in LEGACY_KEYS {
        assert!(keys.contains(&name), "legacy key {name} vanished");
    }
    // Histogram-derived keys preserve the legacy latency names and add
    // the new eval/queue-wait families.
    for name in [
        "net.latency_count",
        "net.latency_p50_ns",
        "net.latency_p99_ns",
        "serve.queue_wait_count",
        "serve.queue_wait_p50_ns",
        "serve.queue_wait_p99_ns",
        "eval.level_count",
        "eval.level_p50_ns",
        "eval.frontier_count",
        "eval.frontier_p50_nodes",
        "wal.records_logged",
        "wal.checkpoints",
        "wal.checkpoint_failures",
        "cache.entries",
    ] {
        assert!(keys.contains(&name), "new key {name} missing");
    }

    // Regression: `cache.bytes_budget` must report the configured
    // byte budget (the old wiring swapped the `cache_usage()` tuple,
    // reporting entry count as bytes_used and resident bytes as the
    // budget — the real budget was never emitted).
    assert_eq!(counter(&stats, "cache.bytes_budget"), budget_bytes as u64);
    assert!(counter(&stats, "cache.entries") >= 1, "results were cached");
    assert!(
        counter(&stats, "cache.bytes_used") >= counter(&stats, "cache.entries"),
        "resident bytes count at least one byte per entry"
    );

    assert_eq!(counter(&stats, "net.queries"), 4);
    assert!(counter(&stats, "serve.hits") >= 1, "repeat query hits");
    assert_eq!(counter(&stats, "serve.queue_wait_count"), 4);
    assert!(
        counter(&stats, "net.latency_count") >= 4,
        "every answered query lands a latency sample"
    );
    assert!(
        counter(&stats, "eval.level_count") >= 1,
        "evaluations record per-level samples by default"
    );
}

#[test]
fn traces_are_consistent_with_served_outcomes() {
    let graph = ring_graph(80);
    let config = ServeConfig {
        // Capture everything: the slow log gates on total wall time,
        // and zero admits every trace.
        slow_query_threshold: Duration::ZERO,
        ..ServeConfig::from_env()
    };
    let service = QueryService::new(graph.clone(), config);
    let query = canonical(&graph, "(a+b)*·c");
    let fingerprint = query.fingerprint();

    let response = service.query_monadic_canonical(query.clone());
    let telemetry = service.telemetry();
    let traces = telemetry.traces.recent();
    let trace = traces
        .iter()
        .find(|t| t.fingerprint == fingerprint && t.outcome == "evaluated")
        .expect("evaluated trace recorded");

    assert_eq!(trace.kind, "monadic");
    assert_ne!(trace.mode, "-", "an evaluation names its mode");
    assert_ne!(trace.strategy, "-", "an evaluation names its strategy");
    assert_eq!(
        trace.result_bits,
        response.result.len() as u64,
        "trace popcount must match the answer the client saw"
    );
    assert_eq!(trace.canonical_states as usize, response.canonical_states);

    // Span offsets are monotonic and non-overlapping, and stay inside
    // the trace's total window.
    let mut cursor = 0u64;
    for span in &trace.spans {
        assert!(
            span.start_ns >= cursor,
            "span {} starts at {} before previous end {}",
            span.name,
            span.start_ns,
            cursor
        );
        cursor = span.start_ns + span.dur_ns;
    }
    assert!(cursor <= trace.total_ns, "spans exceed the trace window");
    let names: Vec<&str> = trace.spans.iter().map(|span| span.name).collect();
    for expected in ["cache_probe", "plan", "eval", "publish"] {
        assert!(
            names.contains(&expected),
            "span {expected} missing: {names:?}"
        );
    }

    // Level samples are sequential sub-intervals of the evaluation, so
    // their nanos sum within the trace total.
    assert!(
        !trace.levels.is_empty(),
        "eval-level sampling is on by default"
    );
    let level_sum: u64 = trace.levels.iter().map(|level| level.nanos).sum();
    assert!(
        level_sum <= trace.total_ns,
        "level nanos {level_sum} exceed trace total {}",
        trace.total_ns
    );

    // A replay is a cache hit: same bits, hit-shaped trace.
    let replay = service.query_monadic_canonical(query);
    assert_eq!(replay.result, response.result, "hit must be bit-identical");
    let traces = telemetry.traces.recent();
    let hit = traces
        .iter()
        .find(|t| t.fingerprint == fingerprint && t.outcome == "hit")
        .expect("hit trace recorded");
    assert_eq!(hit.result_bits, response.result.len() as u64);
    assert_eq!((hit.mode, hit.strategy), ("-", "-"));
    assert!(hit.levels.is_empty(), "hits evaluate nothing");

    // Threshold zero: the slow log captured both outcomes.
    let slow = telemetry.traces.slow();
    assert!(slow
        .iter()
        .any(|t| t.fingerprint == fingerprint && t.outcome == "evaluated"));
    assert!(slow
        .iter()
        .any(|t| t.fingerprint == fingerprint && t.outcome == "hit"));
}

#[test]
fn admin_surface_serves_metrics_health_and_slow_and_flips_on_drain() {
    let config = ServeConfig {
        slow_query_threshold: Duration::ZERO,
        ..ServeConfig::from_env()
    };
    let service = QueryService::new(ring_graph(60), config);
    let mut server =
        Server::bind(service, "127.0.0.1:0", NetConfig::default()).expect("bind ephemeral port");
    let admin = AdminServer::bind("127.0.0.1:0").expect("bind admin port");

    // Before sources are installed every endpoint reports recovering.
    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!((status, body.trim()), (503, "recovering"));

    admin.set_sources(server.admin_sources());

    let mut client = Client::connect(server.local_addr()).unwrap();
    for expr in ["(a+b)*·c", "a·b", "a·b"] {
        match client.query_text(expr, NO_DEADLINE_MS).unwrap() {
            Response::Result { .. } => {}
            other => panic!("expected RESULT, got {other:?}"),
        }
    }
    let stats = client.stats().unwrap();

    // /healthz while serving: 200, phase line first, detail after.
    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!(status, 200, "serving phase answers 200: {body}");
    assert_eq!(body.lines().next(), Some("serving"));
    assert!(
        body.contains("durable false"),
        "plain service is not durable"
    );
    assert!(body.contains("queue_depth "), "health carries queue detail");

    // /metrics: parse every line of the exposition.
    let (status, exposition) = http_get(admin.local_addr(), "/metrics");
    assert_eq!(status, 200);
    assert!(!exposition.is_empty(), "exposition must not be empty");
    let mut type_names = Vec::new();
    for line in exposition.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line names a metric");
            let kind = parts.next().expect("TYPE line names a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE kind {kind}"
            );
            type_names.push(name.to_owned());
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line {line:?} must be `name value`"));
        assert!(!series.is_empty());
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("value {value:?} in {line:?} must be an integer"));
    }
    let mut deduped = type_names.clone();
    deduped.sort();
    deduped.dedup();
    assert_eq!(deduped.len(), type_names.len(), "duplicate TYPE names");

    // Every STATS counter is present in the exposition under its
    // sanitized name (histogram-derived quantile/count keys map to the
    // `{name}_{unit}` bucket series instead, covered just below).
    for (key, _) in &stats {
        if key.contains("_p50_") || key.contains("_p99_") || key.ends_with("_count") {
            continue;
        }
        let flat = key.replace('.', "_");
        assert!(
            exposition
                .lines()
                .any(|line| line.starts_with(&format!("{flat} "))),
            "STATS key {key} has no exposition sample {flat}"
        );
    }
    for series in [
        "net_latency_ns",
        "serve_queue_wait_ns",
        "eval_level_ns",
        "eval_frontier_nodes",
    ] {
        assert!(
            exposition.contains(&format!("{series}_bucket{{le=\"+Inf\"}}")),
            "histogram series {series} missing its +Inf bucket"
        );
        assert!(exposition.contains(&format!("{series}_count ")));
    }

    // /slow: threshold zero captured the queries, newest first.
    let (status, slow) = http_get(admin.local_addr(), "/slow");
    assert_eq!(status, 200);
    assert!(
        slow.contains("outcome=evaluated"),
        "slow log misses evals: {slow}"
    );
    assert!(slow.contains("outcome=hit"), "slow log misses hits: {slow}");
    assert!(slow.contains("span"), "slow traces render their spans");

    // Unknown path and non-GET are rejected without killing the admin.
    let (status, _) = http_get(admin.local_addr(), "/nope");
    assert_eq!(status, 404);

    // Shutdown drains the front door; the health source holds the
    // shared state by Arc and must now report draining with 503.
    server.shutdown();
    let (status, body) = http_get(admin.local_addr(), "/healthz");
    assert_eq!(status, 503, "draining answers 503: {body}");
    assert_eq!(body.lines().next(), Some("draining"));
}
