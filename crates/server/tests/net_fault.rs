//! Fault-injection suite for the TCP front door — the acceptance gate
//! of the hardened-serving work, named by CI in both
//! `PATHLEARN_THREADS` legs.
//!
//! Misbehaving clients throw truncated frames, oversized length
//! prefixes, garbage bytes, mid-query disconnects, slow-loris writers
//! and zero-deadline queries at the server **while a well-behaved
//! client runs a real workload on the same port**. The assertions are
//! the availability contract:
//!
//! * the well-behaved client's answers stay **bit-identical** to the
//!   direct sequential evaluator throughout the abuse;
//! * every fault is answered with the documented frame (or a clean
//!   disconnect) — never a hang, never a torn frame;
//! * the `STATS` counters account for the abuse (`net.malformed`,
//!   `net.io_errors`, `net.deadline_replies`);
//! * the server still answers on a fresh connection afterwards and
//!   shuts down cleanly.

use pathlearn_automata::Symbol;
use pathlearn_graph::eval::eval_monadic;
use pathlearn_graph::{GraphBuilder, GraphDb};
use pathlearn_server::{
    Client, ErrorCode, NetConfig, QueryService, Response, ServeConfig, Server, NO_DEADLINE_MS,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn ring_graph(n: usize) -> GraphDb {
    let mut builder =
        GraphBuilder::with_alphabet(pathlearn_automata::Alphabet::from_labels(["a", "b", "c"]));
    let first = builder.add_nodes("n", n);
    for i in 0..n as u32 {
        let next = first + (i + 1) % n as u32;
        builder.add_edge_ids(first + i, Symbol::from_index(i as usize % 3), next);
        if i % 5 == 0 {
            builder.add_edge_ids(first + i, Symbol::from_index(2), first + (i + 7) % n as u32);
        }
    }
    builder.build()
}

fn direct_monadic(graph: &GraphDb, expr: &str) -> pathlearn_automata::BitSet {
    let dfa = pathlearn_automata::Regex::parse(expr, graph.alphabet())
        .unwrap()
        .to_dfa(graph.alphabet().len());
    eval_monadic(&dfa, graph)
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("counter {name} missing"))
        .1
}

/// Expects the server to close the connection (any read error / EOF)
/// shortly, rather than hanging.
fn assert_disconnected(client: &mut Client) {
    client
        .set_timeouts(Some(Duration::from_secs(5)), None)
        .unwrap();
    let mut closed = false;
    for _ in 0..2 {
        match client.read_response() {
            Ok(Response::Error { .. }) => continue, // the goodbye frame
            Ok(other) => panic!("expected disconnect, got {other:?}"),
            Err(_) => {
                closed = true;
                break;
            }
        }
    }
    assert!(closed, "server should have closed the connection");
}

#[test]
fn each_fault_is_answered_and_the_connection_is_closed() {
    let net_config = NetConfig {
        read_timeout: Duration::from_millis(300),
        ..NetConfig::default()
    };
    let server = Server::bind(
        QueryService::new(ring_graph(30), ServeConfig::default()),
        "127.0.0.1:0",
        net_config,
    )
    .unwrap();
    let addr = server.local_addr();

    // Oversized length prefix: OVERSIZE error frame, then close.
    let mut client = Client::connect(addr).unwrap();
    client.send_raw(&(10_000_000u32).to_le_bytes()).unwrap();
    client
        .set_timeouts(Some(Duration::from_secs(5)), None)
        .unwrap();
    match client.read_response().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Oversize),
        other => panic!("expected OVERSIZE, got {other:?}"),
    }
    assert_disconnected(&mut client);

    // Garbage payload under a valid length prefix: BAD_VERSION (the
    // first payload byte is not the protocol version), then close.
    let mut client = Client::connect(addr).unwrap();
    client.send_raw(&4u32.to_le_bytes()).unwrap();
    client.send_raw(&[0xff, 0xfe, 0xfd, 0xfc]).unwrap();
    match client.read_response().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadVersion),
        other => panic!("expected BAD_VERSION, got {other:?}"),
    }
    assert_disconnected(&mut client);

    // A response opcode sent as a request: BAD_OPCODE.
    let mut client = Client::connect(addr).unwrap();
    let mut payload = vec![1u8, 0x81];
    payload.extend_from_slice(&7u64.to_le_bytes());
    client
        .send_raw(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    client.send_raw(&payload).unwrap();
    match client.read_response().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadOpcode),
        other => panic!("expected BAD_OPCODE, got {other:?}"),
    }
    assert_disconnected(&mut client);

    // Truncated body (header only, opcode QUERY): MALFORMED.
    let mut client = Client::connect(addr).unwrap();
    let mut payload = vec![1u8, 0x01];
    payload.extend_from_slice(&9u64.to_le_bytes());
    client
        .send_raw(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    client.send_raw(&payload).unwrap();
    match client.read_response().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected MALFORMED, got {other:?}"),
    }
    assert_disconnected(&mut client);

    // Slow loris: a frame that promises 100 bytes and delivers 2. The
    // 300ms read timeout must reclaim the connection.
    let mut client = Client::connect(addr).unwrap();
    client.send_raw(&100u32.to_le_bytes()).unwrap();
    client.send_raw(&[1u8, 0x01]).unwrap();
    assert_disconnected(&mut client);

    // Mid-query disconnect: send a full query frame, vanish before
    // reading the reply. The server must absorb the dead socket.
    {
        let mut client = Client::connect(addr).unwrap();
        let request = pathlearn_server::Request::Query {
            request_id: 1,
            kind: pathlearn_server::WireKind::Monadic,
            deadline_ms: NO_DEADLINE_MS,
            query: pathlearn_server::QueryRef::Text("(a+b)*·c".to_owned()),
        };
        let payload = request.encode();
        let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&payload);
        client.send_raw(&framed).unwrap();
        // Drop without reading: the reply hits a closed socket.
    }

    // After all of it, the server still serves correctly.
    std::thread::sleep(Duration::from_millis(400));
    let graph = ring_graph(30);
    let expected = direct_monadic(&graph, "(a+b)*·c");
    let mut client = Client::connect(addr).unwrap();
    match client.query_text("(a+b)*·c", NO_DEADLINE_MS).unwrap() {
        Response::Result { bits, .. } => assert_eq!(bits, expected),
        other => panic!("expected RESULT, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert!(
        counter(&stats, "net.malformed") >= 4,
        "oversize + garbage + bad opcode + truncated body all count"
    );
    assert!(
        counter(&stats, "net.io_errors") >= 1,
        "the slow-loris timeout counts as an i/o reclaim"
    );
}

/// The headline availability test: sustained abuse from several
/// attacker threads while a well-behaved client keeps getting
/// bit-identical answers on the same port.
#[test]
fn availability_under_sustained_abuse() {
    let graph = ring_graph(60);
    let exprs = ["(a+b)*·c", "a·(b·c)", "c·a*", "a", "b·c"];
    let expected: Vec<_> = exprs.iter().map(|e| direct_monadic(&graph, e)).collect();

    let net_config = NetConfig {
        read_timeout: Duration::from_millis(200),
        ..NetConfig::default()
    };
    let mut server = Server::bind(
        QueryService::new(graph, ServeConfig::default()),
        "127.0.0.1:0",
        net_config,
    )
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        // Attacker 1: garbage byte streams, reconnecting in a loop.
        scope.spawn(move || {
            for i in 0..15u32 {
                if let Ok(mut stream) = TcpStream::connect(addr) {
                    let junk = vec![(i % 251) as u8; 4 + (i as usize % 32)];
                    let _ = stream.write_all(&(junk.len() as u32).to_le_bytes());
                    let _ = stream.write_all(&junk);
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        });
        // Attacker 2: oversized prefixes and truncated frames.
        scope.spawn(move || {
            for i in 0..15u32 {
                if let Ok(mut stream) = TcpStream::connect(addr) {
                    if i % 2 == 0 {
                        let _ = stream.write_all(&u32::MAX.to_le_bytes());
                    } else {
                        let _ = stream.write_all(&64u32.to_le_bytes());
                        let _ = stream.write_all(&[1u8, 0x01, 3]);
                        // …and vanish mid-frame.
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        });
        // Attacker 3: zero-deadline queries (legal frames, hopeless
        // budgets) and mid-query disconnects.
        scope.spawn(move || {
            for i in 0..15u32 {
                if let Ok(mut client) = Client::connect(addr) {
                    if i % 2 == 0 {
                        match client.query_text("(a+b)*·c", 0) {
                            Ok(Response::Deadline { .. }) => {}
                            Ok(other) => panic!("0ms budget got {other:?}"),
                            Err(_) => {} // server mid-shutdown of abuse peers
                        }
                    } else {
                        let request = pathlearn_server::Request::Query {
                            request_id: u64::from(i),
                            kind: pathlearn_server::WireKind::Monadic,
                            deadline_ms: NO_DEADLINE_MS,
                            query: pathlearn_server::QueryRef::Text("a".to_owned()),
                        };
                        let payload = request.encode();
                        let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
                        framed.extend_from_slice(&payload);
                        let _ = client.send_raw(&framed);
                        // Drop without reading the reply.
                    }
                }
                std::thread::sleep(Duration::from_millis(8));
            }
        });

        // The well-behaved client: every answer bit-identical, no
        // errors, while the attackers hammer the same port.
        let mut client = Client::connect(addr).unwrap();
        client
            .set_timeouts(Some(Duration::from_secs(10)), Some(Duration::from_secs(10)))
            .unwrap();
        for round in 0..8 {
            for (expr, want) in exprs.iter().zip(&expected) {
                match client.query_text(expr, NO_DEADLINE_MS).unwrap() {
                    Response::Result { bits, .. } => {
                        assert_eq!(&bits, want, "round {round}: {expr} diverged under abuse")
                    }
                    other => panic!("round {round}: {expr} got {other:?}"),
                }
            }
        }
    });

    // The abuse is all accounted for, and the server drains cleanly.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert!(counter(&stats, "net.malformed") >= 10);
    assert!(counter(&stats, "net.deadline_replies") >= 1);
    assert_eq!(
        counter(&stats, "serve.deadline_exceeded"),
        counter(&stats, "net.deadline_replies"),
        "every wire DEADLINE maps to one service-side verdict"
    );
    drop(client);
    server.shutdown();
}
