//! Net-level edge-delta gate — `DELTA` frames over the wire, named by
//! CI in both `PATHLEARN_THREADS` legs.
//!
//! What this pins, end to end through a real TCP connection:
//!
//! - a `DELTA` frame patches the served graph and answers
//!   `DELTA_APPLIED`; post-delta query bits are **bit-identical** to a
//!   direct evaluation of the compacted patched graph;
//! - invalidation is **label-aware**: cached entries whose live
//!   alphabet is disjoint from the touched labels survive as hits, and
//!   only intersecting entries re-evaluate;
//! - unlike a rebuild, a delta **retains** the fingerprint registry
//!   (the node set and alphabet are frozen) and does not drain;
//! - unknown node or label names answer `ERROR(BAD_DELTA)` without
//!   disturbing the served graph or killing the connection.

use pathlearn_automata::Symbol;
use pathlearn_graph::eval::eval_monadic;
use pathlearn_graph::{GraphBuilder, GraphDb};
use pathlearn_server::{
    Client, ErrorCode, NetConfig, Response, ServeConfig, Server, WireServed, NO_DEADLINE_MS,
};

/// A ring with chords over {a, b, c} — node names are `n0..n{N-1}`.
fn ring_graph(n: usize) -> GraphDb {
    let mut builder =
        GraphBuilder::with_alphabet(pathlearn_automata::Alphabet::from_labels(["a", "b", "c"]));
    let first = builder.add_nodes("n", n);
    for i in 0..n as u32 {
        let next = first + (i + 1) % n as u32;
        builder.add_edge_ids(first + i, Symbol::from_index(i as usize % 3), next);
        if i % 5 == 0 {
            builder.add_edge_ids(first + i, Symbol::from_index(2), first + (i + 7) % n as u32);
        }
    }
    builder.build()
}

fn direct_monadic(graph: &GraphDb, expr: &str) -> pathlearn_automata::BitSet {
    let dfa = pathlearn_automata::Regex::parse(expr, graph.alphabet())
        .unwrap()
        .to_dfa(graph.alphabet().len());
    eval_monadic(&dfa, graph)
}

fn serve(graph: GraphDb) -> Server {
    let service = pathlearn_server::QueryService::new(graph, ServeConfig::from_env());
    Server::bind(service, "127.0.0.1:0", NetConfig::default()).expect("bind ephemeral port")
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("counter {name} missing"))
        .1
}

fn result_bits(response: Response) -> (pathlearn_automata::BitSet, u64, WireServed) {
    match response {
        Response::Result {
            bits,
            fingerprint,
            served,
            ..
        } => (bits, fingerprint, served),
        other => panic!("expected RESULT, got {other:?}"),
    }
}

fn wire(src: &str, label: &str, dst: &str) -> (String, String, String) {
    (src.to_owned(), label.to_owned(), dst.to_owned())
}

#[test]
fn delta_frame_patches_the_graph_and_spares_disjoint_cache_entries() {
    let graph = ring_graph(60);
    let server = serve(graph.clone());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Prime the cache: one entry that the delta will touch (live
    // alphabet {a}) and one it must spare (live alphabet {b}).
    let (a_before, a_fp, _) = result_bits(client.query_text("a·a", NO_DEADLINE_MS).unwrap());
    let (b_before, b_fp, _) = result_bits(client.query_text("b·b", NO_DEADLINE_MS).unwrap());

    // Rewire an `a` chord: remove a ring edge, add a shortcut. The
    // expected post-delta bits come from a direct evaluation of the
    // compacted patched graph — the wire must be bit-identical to it.
    let add = [wire("n0", "a", "n30")];
    let remove = [wire("n0", "a", "n1")];
    let a0 = graph.node_id("n0").unwrap();
    let a1 = graph.node_id("n1").unwrap();
    let a30 = graph.node_id("n30").unwrap();
    let sym_a = graph.alphabet().symbol("a").unwrap();
    let patched = graph
        .with_delta(&[(a0, sym_a, a30)], &[(a0, sym_a, a1)])
        .unwrap()
        .compact();
    let a_after = direct_monadic(&patched, "a·a");
    let b_after = direct_monadic(&patched, "b·b");
    assert_ne!(a_before, a_after, "the delta must change the a·a answer");
    assert_eq!(b_before, b_after, "b·b must be untouched by an a-delta");

    match client.apply_delta(&add, &remove).unwrap() {
        Response::DeltaApplied {
            invalidated,
            delta_edges,
            ..
        } => {
            assert_eq!(invalidated, 1, "exactly the a·a entry dies");
            assert_eq!(delta_edges, 2, "one addition + one removal pending");
        }
        other => panic!("expected DELTA_APPLIED, got {other:?}"),
    }

    // The spared entry is still a cache hit, reachable through the
    // *retained* fingerprint registry — a rebuild would have cleared
    // both the cache and the registry.
    let (bits, _, served) = result_bits(client.query_fingerprint(b_fp, NO_DEADLINE_MS).unwrap());
    assert_eq!(bits, b_before);
    assert_eq!(served, WireServed::Hit, "disjoint live alphabet survives");

    // The touched entry re-evaluates against the patched graph and is
    // bit-identical to the direct eval of its compaction.
    let (bits, _, served) = result_bits(client.query_fingerprint(a_fp, NO_DEADLINE_MS).unwrap());
    assert_eq!(
        bits, a_after,
        "post-delta bits must match the compacted rebuild"
    );
    assert_ne!(served, WireServed::Hit, "the touched entry was invalidated");

    let stats = client.stats().unwrap();
    assert_eq!(counter(&stats, "serve.deltas_applied"), 1);
    assert_eq!(counter(&stats, "serve.label_invalidations"), 1);
    assert_eq!(counter(&stats, "cache.invalidated"), 1);
    assert_eq!(
        counter(&stats, "serve.invalidations"),
        0,
        "a delta is not a rebuild"
    );
}

#[test]
fn bad_delta_names_reject_without_disturbing_the_graph() {
    let graph = ring_graph(20);
    let server = serve(graph.clone());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let expected = direct_monadic(&graph, "a·b");

    // Unknown node: the whole batch is rejected atomically.
    match client.apply_delta(&[wire("nope", "a", "n1")], &[]).unwrap() {
        Response::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::BadDelta);
            assert!(message.contains("nope"), "diagnostic names the offender");
        }
        other => panic!("expected BAD_DELTA for unknown node, got {other:?}"),
    }
    // Unknown label, and on the removal side this time.
    match client.apply_delta(&[], &[wire("n0", "zzz", "n1")]).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadDelta),
        other => panic!("expected BAD_DELTA for unknown label, got {other:?}"),
    }

    // The connection survives and the served graph is untouched.
    client.ping().expect("connection survives BAD_DELTA");
    let (bits, _, _) = result_bits(client.query_text("a·b", NO_DEADLINE_MS).unwrap());
    assert_eq!(bits, expected, "a rejected delta must not patch anything");
    let stats = client.stats().unwrap();
    assert_eq!(counter(&stats, "serve.deltas_applied"), 0);
}

#[test]
fn deltas_accumulate_and_an_empty_delta_is_a_noop() {
    let graph = ring_graph(30);
    let server = serve(graph.clone());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Two deltas in sequence: remove an edge, then put it back. The
    // final answers must match the original graph bit-for-bit.
    let expected = direct_monadic(&graph, "(a+c)*");
    match client.apply_delta(&[], &[wire("n0", "a", "n1")]).unwrap() {
        Response::DeltaApplied { .. } => {}
        other => panic!("expected DELTA_APPLIED, got {other:?}"),
    }
    match client.apply_delta(&[wire("n0", "a", "n1")], &[]).unwrap() {
        Response::DeltaApplied { .. } => {}
        other => panic!("expected DELTA_APPLIED, got {other:?}"),
    }
    let (bits, _, _) = result_bits(client.query_text("(a+c)*", NO_DEADLINE_MS).unwrap());
    assert_eq!(bits, expected, "remove-then-add must round-trip the graph");

    // An empty delta applies, touches nothing and invalidates nothing.
    match client.apply_delta(&[], &[]).unwrap() {
        Response::DeltaApplied { invalidated, .. } => assert_eq!(invalidated, 0),
        other => panic!("expected DELTA_APPLIED, got {other:?}"),
    }
    let (_, _, served) = result_bits(client.query_text("(a+c)*", NO_DEADLINE_MS).unwrap());
    assert_eq!(served, WireServed::Hit, "an empty delta spares the cache");

    let stats = client.stats().unwrap();
    assert_eq!(counter(&stats, "serve.deltas_applied"), 3);
}
