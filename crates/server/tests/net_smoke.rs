//! TCP front-door smoke gate — the happy paths plus the drain/rebuild
//! race, named by CI in both `PATHLEARN_THREADS` legs.
//!
//! Every test binds an ephemeral port (`127.0.0.1:0`), so the suite's
//! tests run concurrently without coordination.

use pathlearn_automata::Symbol;
use pathlearn_graph::eval::{eval_binary_from, eval_monadic};
use pathlearn_graph::{GraphBuilder, GraphDb};
use pathlearn_server::{
    Client, ErrorCode, NetConfig, Response, ServeConfig, Server, WireServed, NO_DEADLINE_MS,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A ring with chords — multi-word frontiers, both labels reachable.
fn ring_graph(n: usize) -> GraphDb {
    let mut builder =
        GraphBuilder::with_alphabet(pathlearn_automata::Alphabet::from_labels(["a", "b", "c"]));
    let first = builder.add_nodes("n", n);
    for i in 0..n as u32 {
        let next = first + (i + 1) % n as u32;
        builder.add_edge_ids(first + i, Symbol::from_index(i as usize % 3), next);
        if i % 5 == 0 {
            builder.add_edge_ids(first + i, Symbol::from_index(2), first + (i + 7) % n as u32);
        }
    }
    builder.build()
}

/// Same alphabet, different shape — rebuild tests need the two graphs
/// to disagree on query answers.
fn line_graph(n: usize) -> GraphDb {
    let mut builder =
        GraphBuilder::with_alphabet(pathlearn_automata::Alphabet::from_labels(["a", "b", "c"]));
    let first = builder.add_nodes("m", n);
    for i in 0..(n as u32 - 1) {
        builder.add_edge_ids(first + i, Symbol::from_index(0), first + i + 1);
    }
    builder.build()
}

fn direct_monadic(graph: &GraphDb, expr: &str) -> pathlearn_automata::BitSet {
    let dfa = pathlearn_automata::Regex::parse(expr, graph.alphabet())
        .unwrap()
        .to_dfa(graph.alphabet().len());
    eval_monadic(&dfa, graph)
}

fn serve(graph: GraphDb, serve_config: ServeConfig, net_config: NetConfig) -> Server {
    let service = pathlearn_server::QueryService::new(graph, serve_config);
    Server::bind(service, "127.0.0.1:0", net_config).expect("bind ephemeral port")
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("counter {name} missing"))
        .1
}

#[test]
fn roundtrip_is_bit_identical_and_fingerprints_reuse_the_cache() {
    let graph = ring_graph(60);
    let server = serve(graph.clone(), ServeConfig::from_env(), NetConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();

    for expr in ["(a+b)*·c", "a·(b·c)", "c·a*"] {
        let expected = direct_monadic(&graph, expr);
        let response = client.query_text(expr, NO_DEADLINE_MS).unwrap();
        let (bits, fingerprint) = match response {
            Response::Result {
                bits, fingerprint, ..
            } => (bits, fingerprint),
            other => panic!("expected RESULT for {expr}, got {other:?}"),
        };
        assert_eq!(bits, expected, "wire bits differ from direct eval ({expr})");

        // The text submission established the fingerprint; replaying it
        // must hit the result cache and stay bit-identical.
        match client
            .query_fingerprint(fingerprint, NO_DEADLINE_MS)
            .unwrap()
        {
            Response::Result { bits, served, .. } => {
                assert_eq!(bits, expected);
                assert_eq!(served, WireServed::Hit, "fingerprint replay should hit");
            }
            other => panic!("expected RESULT for fingerprint replay, got {other:?}"),
        }
    }

    // Binary semantics from a concrete source.
    let dfa = pathlearn_automata::Regex::parse("a·b", graph.alphabet())
        .unwrap()
        .to_dfa(graph.alphabet().len());
    let expected = eval_binary_from(&dfa, &graph, 0);
    match client.query_text_binary("a·b", 0, NO_DEADLINE_MS).unwrap() {
        Response::Result { bits, .. } => assert_eq!(bits, expected),
        other => panic!("expected binary RESULT, got {other:?}"),
    }

    let stats = client.stats().unwrap();
    assert!(counter(&stats, "net.queries") >= 5);
    assert!(counter(&stats, "serve.hits") >= 3);
    assert_eq!(counter(&stats, "net.malformed"), 0);
}

#[test]
fn parse_and_fingerprint_errors_fail_the_request_not_the_connection() {
    let server = serve(ring_graph(20), ServeConfig::default(), NetConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    match client.query_text("((", NO_DEADLINE_MS).unwrap() {
        Response::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::Parse);
            assert!(!message.is_empty(), "parse errors carry a diagnostic");
        }
        other => panic!("expected parse ERROR, got {other:?}"),
    }
    client.ping().expect("connection survives a parse error");

    match client
        .query_fingerprint(0xdead_beef, NO_DEADLINE_MS)
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownFingerprint),
        other => panic!("expected UNKNOWN_FINGERPRINT, got {other:?}"),
    }
    client
        .ping()
        .expect("connection survives an unknown fingerprint");
}

#[test]
fn zero_deadline_queries_get_deadline_frames_and_count() {
    let server = serve(ring_graph(40), ServeConfig::default(), NetConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    for _ in 0..3 {
        match client.query_text("(a+b)*·c", 0).unwrap() {
            Response::Deadline { .. } => {}
            other => panic!("a 0ms budget must answer DEADLINE, got {other:?}"),
        }
    }
    // The budget dies before admission, so nothing was evaluated or
    // cached — a follow-up unbounded query still works and misses.
    match client.query_text("(a+b)*·c", NO_DEADLINE_MS).unwrap() {
        Response::Result { .. } => {}
        other => panic!("expected RESULT, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(counter(&stats, "net.deadline_replies"), 3);
    assert_eq!(counter(&stats, "serve.deadline_exceeded"), 3);
}

#[test]
fn overloaded_queue_sheds_with_a_retry_hint() {
    // One worker, queue watermark 1, and a 300ms publication holdoff:
    // the first query occupies the worker, the second the queue, and
    // later arrivals must shed.
    let serve_config = ServeConfig {
        eval_holdoff: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let net_config = NetConfig {
        queue_depth: 1,
        eval_workers: 1,
        retry_after_ms: 77,
        ..NetConfig::default()
    };
    let server = serve(ring_graph(30), serve_config, net_config);
    let addr = server.local_addr();

    // Distinct expressions so no submission coalesces away.
    let exprs = ["a", "b", "c", "a·b", "b·c", "c·a"];
    let shed = AtomicUsize::new(0);
    let answered = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (i, expr) in exprs.iter().enumerate() {
            let shed = &shed;
            let answered = &answered;
            scope.spawn(move || {
                // Stagger slightly so arrival order is roughly i-order,
                // but all land inside the first eval's holdoff window.
                std::thread::sleep(Duration::from_millis(5 * i as u64));
                let mut client = Client::connect(addr).unwrap();
                match client.query_text(expr, NO_DEADLINE_MS).unwrap() {
                    Response::Result { .. } => {
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                    Response::Shed { retry_after_ms, .. } => {
                        // The hint scales with occupancy: here at most
                        // 1 queued + 1 running on 1 worker, so between
                        // 1× and 2× the 77ms base.
                        assert!(
                            (77..=154).contains(&retry_after_ms),
                            "depth-1 shed hint {retry_after_ms} outside [77, 154]"
                        );
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("expected RESULT or SHED, got {other:?}"),
                }
            });
        }
    });
    assert_eq!(
        shed.load(Ordering::Relaxed) + answered.load(Ordering::Relaxed),
        exprs.len()
    );
    assert!(
        shed.load(Ordering::Relaxed) >= 1,
        "watermark 1 with a 300ms holdoff must shed at least one of six near-simultaneous queries"
    );
    assert!(
        answered.load(Ordering::Relaxed) >= 2,
        "the worker and the queue slot must still answer"
    );
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        counter(&stats, "net.shed") as usize,
        shed.load(Ordering::Relaxed)
    );
}

/// Satellite: the SHED backoff hint scales with queue occupancy — a
/// deeper queue yields a hint ≥ the shallow queue's, because clients
/// bouncing off a four-deep backlog should wait at least as long as
/// clients bouncing off a one-deep one. With `queue_depth: 4` on one
/// worker, any shed observes occupancy ≥ 4, so its hint is ≥ 4× the
/// base — strictly above the depth-1 test's [77, 154] envelope — and
/// never exceeds the [`pathlearn_server::net::MAX_RETRY_AFTER_MS`] cap.
#[test]
fn deeper_queue_yields_a_larger_retry_hint() {
    let serve_config = ServeConfig {
        eval_holdoff: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let net_config = NetConfig {
        queue_depth: 4,
        eval_workers: 1,
        retry_after_ms: 77,
        ..NetConfig::default()
    };
    let server = serve(ring_graph(30), serve_config, net_config);
    let addr = server.local_addr();

    // Nine distinct expressions: 1 running + 4 queued occupy the
    // server for the 300ms holdoff, the rest must shed.
    let exprs = ["a", "b", "c", "a·b", "b·c", "c·a", "a·a", "b·b", "c·c"];
    let shed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (i, expr) in exprs.iter().enumerate() {
            let shed = &shed;
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(5 * i as u64));
                let mut client = Client::connect(addr).unwrap();
                match client.query_text(expr, NO_DEADLINE_MS).unwrap() {
                    Response::Result { .. } => {}
                    Response::Shed { retry_after_ms, .. } => {
                        // occupancy ∈ [4, 5] on 1 worker: 4–5 backlog
                        // rounds of the 77ms base.
                        assert!(
                            (308..=385).contains(&retry_after_ms),
                            "depth-4 shed hint {retry_after_ms} outside [308, 385]"
                        );
                        assert!(
                            retry_after_ms > 154,
                            "a deeper queue must hint ≥ the shallow queue's ceiling"
                        );
                        assert!(retry_after_ms <= pathlearn_server::net::MAX_RETRY_AFTER_MS);
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("expected RESULT or SHED, got {other:?}"),
                }
            });
        }
    });
    assert!(
        shed.load(Ordering::Relaxed) >= 1,
        "nine near-simultaneous queries against 1 worker + depth 4 must shed at least one"
    );
}

/// Satellite: a rebuild racing in-flight work never serves old-epoch
/// results to post-rebuild frames, mid-drain frames get a retryable
/// DRAINING, and the pre-rebuild fingerprint registry is cleared.
#[test]
fn rebuild_racing_inflight_work_drains_and_serves_only_new_epoch_results() {
    let old_graph = ring_graph(60);
    let new_graph = line_graph(60);
    let expr = "a·a";
    let old_expected = direct_monadic(&old_graph, expr);
    let new_expected = direct_monadic(&new_graph, expr);
    assert_ne!(old_expected, new_expected, "graphs must disagree on {expr}");

    let serve_config = ServeConfig {
        // Keep the pre-rebuild evaluation in flight across the drain.
        eval_holdoff: Duration::from_millis(400),
        ..ServeConfig::default()
    };
    let server = serve(old_graph, serve_config, NetConfig::default());
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        // Client A: admitted pre-drain; its eval finishes instantly and
        // sits in the 400ms publication holdoff. Drain either lets it
        // publish (old-graph bits — correct for a pre-rebuild frame) or
        // cancels it into a retryable DRAINING. Never a torn result.
        let a = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.query_text(expr, NO_DEADLINE_MS).unwrap()
        });
        std::thread::sleep(Duration::from_millis(100));

        // Client B fires while the drain is in progress.
        let b = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.query_text(expr, NO_DEADLINE_MS).unwrap()
        });
        std::thread::sleep(Duration::from_millis(50));
        server.rebuild_graph(line_graph(60));

        let mut client = Client::connect(addr).unwrap();
        let old_fingerprint = match a.join().unwrap() {
            Response::Result {
                bits, fingerprint, ..
            } => {
                assert_eq!(
                    bits, old_expected,
                    "a pre-rebuild frame that publishes must carry old-graph bits"
                );
                Some(fingerprint)
            }
            Response::Draining { .. } => None,
            other => panic!("pre-rebuild frame got {other:?}"),
        };
        match b.join().unwrap() {
            // B raced the drain window: either it slipped in before the
            // drain began (old bits), or it was drained/cancelled.
            Response::Result { bits, .. } => assert_eq!(bits, old_expected),
            Response::Draining { .. } => {}
            other => panic!("mid-drain frame got {other:?}"),
        }
        // The registry was cleared with the epoch: a pre-rebuild
        // fingerprint no longer resolves until re-established by text
        // (checked *before* the text resubmission below re-registers
        // the same digest).
        if let Some(fingerprint) = old_fingerprint {
            match client
                .query_fingerprint(fingerprint, NO_DEADLINE_MS)
                .unwrap()
            {
                Response::Error { code, .. } => {
                    assert_eq!(code, ErrorCode::UnknownFingerprint)
                }
                other => panic!("stale fingerprint got {other:?}"),
            }
        }
        // Post-rebuild frames see only new-graph results, as misses.
        match client.query_text(expr, NO_DEADLINE_MS).unwrap() {
            Response::Result { bits, served, .. } => {
                assert_eq!(
                    bits, new_expected,
                    "post-rebuild frame must see the new graph, never the old cache"
                );
                assert_ne!(
                    served,
                    WireServed::Hit,
                    "the rebuild cleared the cache; this must be a fresh evaluation"
                );
            }
            other => panic!("post-rebuild frame got {other:?}"),
        }
        let stats = client.stats().unwrap();
        assert_eq!(counter(&stats, "serve.invalidations"), 1);
    });
}

#[test]
fn graceful_shutdown_answers_inflight_work_exactly_once() {
    let graph = ring_graph(50);
    let expected = direct_monadic(&graph, "(a+b)*·c");
    let serve_config = ServeConfig {
        eval_holdoff: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let mut server = serve(graph, serve_config, NetConfig::default());
    let addr = server.local_addr();

    let inflight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query_text("(a+b)*·c", NO_DEADLINE_MS).unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();

    // The in-flight frame got exactly one reply: its result (eval
    // finished before the drain) or a retryable DRAINING.
    match inflight.join().unwrap() {
        Response::Result { bits, .. } => assert_eq!(bits, expected),
        Response::Draining { .. } => {}
        other => panic!("in-flight frame got {other:?}"),
    }
    // The listener is gone: new connections are refused or die
    // immediately without a valid frame.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut client) => {
            assert!(client.ping().is_err(), "a drained server must not serve");
        }
    }
}

#[test]
fn connection_cap_refuses_with_busy() {
    let net_config = NetConfig {
        max_connections: 1,
        ..NetConfig::default()
    };
    let server = serve(ring_graph(10), ServeConfig::default(), net_config);
    let mut first = Client::connect(server.local_addr()).unwrap();
    first.ping().unwrap();

    let mut second = Client::connect(server.local_addr()).unwrap();
    second
        .set_timeouts(Some(Duration::from_secs(5)), None)
        .unwrap();
    match second.read_response() {
        Ok(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Busy),
        Ok(other) => panic!("expected BUSY, got {other:?}"),
        // The refused socket may already be closed by the time we read.
        Err(_) => {}
    }
    // The resident connection is unaffected.
    first.ping().unwrap();
}
