//! Crash-recovery differential suite — kill-and-recover is never a
//! wrong answer.
//!
//! The durability contract (ISSUE 9): for **any** sequence of
//! acknowledged delta batches, a process that dies and recovers from
//! its data directory (snapshot + WAL replay) serves **bit-identical**
//! results to a process that never crashed. This suite drives random
//! (graph, batch-sequence, query) triples through both lifecycles with
//! simulated kill points:
//!
//! * the WAL holds acknowledged batches the snapshot does not (the
//!   stale-snapshot case — checkpoint threshold set high);
//! * the checkpoint fired mid-sequence (threshold 0 or 2), so
//!   recovery starts from a fresh snapshot with an empty or short WAL;
//! * the final WAL record is **torn** — the process died mid-append,
//!   leaving a header whose extent crosses EOF or a record whose
//!   digest fails at EOF. That batch was never acknowledged, so
//!   recovery must drop it silently and keep everything before it.
//!
//! Identity is asserted at the strongest level available: the
//! recovered graph's snapshot encoding equals the never-crashed
//! service's graph encoding byte for byte, and served query bits match.

use pathlearn_automata::{Alphabet, Dfa, Regex, Symbol};
use pathlearn_graph::{GraphBuilder, GraphDb, NodeId};
use pathlearn_server::wal::{Persistence, WAL_FILE};
use pathlearn_server::{QueryService, ServeConfig};
use proptest::prelude::*;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const LABELS: [&str; 3] = ["a", "b", "c"];

type Edge = (NodeId, Symbol, NodeId);
type RawEdge = (u32, usize, u32);
type RawBatch = (Vec<RawEdge>, Vec<RawEdge>);

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "pathlearn-recovery-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn arb_graph() -> impl Strategy<Value = GraphDb> {
    (
        1usize..10,
        proptest::collection::vec((0u32..10, 0usize..3, 0u32..10), 0..25),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
            for i in 0..n {
                builder.add_node(&format!("n{i}"));
            }
            let n = n as u32;
            for (src, sym, dst) in edges {
                builder.add_edge_ids(src % n, Symbol::from_index(sym), dst % n);
            }
            builder.build()
        })
}

fn arb_batches() -> impl Strategy<Value = Vec<RawBatch>> {
    let edge = (0u32..10, 0usize..3, 0u32..10);
    proptest::collection::vec(
        (
            proptest::collection::vec(edge.clone(), 0..6),
            proptest::collection::vec(edge, 0..6),
        ),
        0..6,
    )
}

fn arb_query() -> impl Strategy<Value = Dfa> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        (0usize..3).prop_map(|i| Regex::Symbol(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
    .prop_map(|regex| regex.to_dfa(3))
}

fn fix(n: u32, edges: &[RawEdge]) -> Vec<Edge> {
    edges
        .iter()
        .map(|&(s, sym, d)| (s % n, Symbol::from_index(sym), d % n))
        .collect()
}

/// Appends a torn record to the WAL — what a mid-append crash leaves
/// behind. Kind 1: a header whose declared extent crosses EOF. Kind 2:
/// a structurally complete record whose digest is garbage. Either way
/// the batch it would have carried was never acknowledged.
fn tear_wal(dir: &std::path::Path, kind: usize) {
    let path = dir.join(WAL_FILE);
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
        .expect("open wal for tearing");
    match kind {
        1 => {
            // Declares a 100-byte payload, supplies 6.
            file.write_all(&100u32.to_le_bytes()).unwrap();
            file.write_all(&0xdeadbeefu64.to_le_bytes()).unwrap();
            file.write_all(&[1, 2, 3, 4, 5, 6]).unwrap();
        }
        2 => {
            // A full empty-batch record (payload `0 adds, 0 removes`)
            // under a wrong digest — bits of the tail were lost.
            file.write_all(&8u32.to_le_bytes()).unwrap();
            file.write_all(&0x1234_5678_9abc_def0u64.to_le_bytes())
                .unwrap();
            file.write_all(&[0u8; 8]).unwrap();
        }
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The kill-and-recover differential: apply a random prefix of
    /// random batches durably, kill the process (drop), optionally
    /// tear the WAL's tail, recover — and the recovered service is
    /// bit-identical to one that applied the same prefix and never
    /// crashed. Swept across checkpoint thresholds so recovery starts
    /// variously from a stale snapshot + long WAL, a fresh snapshot +
    /// empty WAL, and everything between.
    #[test]
    fn recovery_is_bit_identical_to_the_uninterrupted_service(
        base in arb_graph(),
        batches in arb_batches(),
        query in arb_query(),
        kill in 0usize..8,
        threshold in prop_oneof![Just(0usize), Just(2usize), Just(1 << 20)],
        tear in 0usize..3,
    ) {
        let dir = scratch_dir();
        let n = base.num_nodes() as u32;
        let kill = kill % (batches.len() + 1);

        // The durable lifecycle: recover (first run seeds the
        // snapshot), apply `kill` batches through the WAL, then die.
        {
            let recovered = {
                let base = base.clone();
                Persistence::recover(&dir, threshold, move || Ok(base))
                    .expect("first-run recovery")
            };
            let durable = QueryService::new(recovered.graph, ServeConfig::default());
            durable.attach_persistence(recovered.persistence);
            for (add, remove) in &batches[..kill] {
                durable
                    .apply_delta_durable(&fix(n, add), &fix(n, remove))
                    .expect("durable apply");
            }
            // Process dies here: nothing is flushed beyond what
            // apply_delta_durable already fsynced.
        }
        if tear > 0 {
            tear_wal(&dir, tear);
        }

        // The uninterrupted reference: same batches, no persistence.
        let reference = QueryService::new(base.clone(), ServeConfig::default());
        for (add, remove) in &batches[..kill] {
            reference
                .apply_delta(&fix(n, add), &fix(n, remove))
                .expect("reference apply");
        }

        // Recovery: the fallback must not run (the snapshot exists),
        // and the recovered graph encodes identically to the
        // reference's — same nodes, same alphabet, same edge set.
        let recovered = Persistence::recover(&dir, threshold, || {
            Err("recovery after a crash must come from snapshot + WAL".into())
        })
        .expect("post-crash recovery");
        prop_assert_eq!(
            recovered.graph.snapshot_bytes(),
            reference.graph().snapshot_bytes(),
            "recovered graph must be bit-identical to the never-crashed graph"
        );

        // And the *served* bits match: a client cannot tell the
        // revived service from one that never died.
        let revived = QueryService::new(recovered.graph, ServeConfig::default());
        prop_assert_eq!(
            &*revived.query_monadic(&query).result,
            &*reference.query_monadic(&query).result
        );
        for source in base.nodes() {
            prop_assert_eq!(
                &*revived.query_binary_from(&query, source).result,
                &*reference.query_binary_from(&query, source).result
            );
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Recovering twice in a row (crash during recovery's own
    /// checkpoint window) changes nothing: recovery is idempotent.
    #[test]
    fn recovery_is_idempotent(
        base in arb_graph(),
        batches in arb_batches(),
        threshold in prop_oneof![Just(0usize), Just(1 << 20)],
    ) {
        let dir = scratch_dir();
        let n = base.num_nodes() as u32;
        {
            let recovered = {
                let base = base.clone();
                Persistence::recover(&dir, threshold, move || Ok(base)).expect("seed")
            };
            let durable = QueryService::new(recovered.graph, ServeConfig::default());
            durable.attach_persistence(recovered.persistence);
            for (add, remove) in &batches {
                durable
                    .apply_delta_durable(&fix(n, add), &fix(n, remove))
                    .expect("durable apply");
            }
        }
        let first = Persistence::recover(&dir, threshold, || Err("no fallback".into()))
            .expect("first recovery");
        let first_bytes = first.graph.snapshot_bytes();
        drop(first);
        let second = Persistence::recover(&dir, threshold, || Err("no fallback".into()))
            .expect("second recovery");
        prop_assert_eq!(second.graph.snapshot_bytes(), first_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deterministic anchor: the exact kill point named by the issue —
/// acknowledged batches in the WAL, snapshot still at the seed image,
/// plus a torn final record — recovers to the acknowledged state.
#[test]
fn stale_snapshot_plus_torn_tail_recovers_acknowledged_state() {
    let dir = scratch_dir();
    let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
    builder.add_edge("x", "a", "y");
    builder.add_edge("y", "b", "z");
    let base = builder.build();
    let a = base.alphabet().symbol("a").unwrap();
    let (x, y, z) = (
        base.node_id("x").unwrap(),
        base.node_id("y").unwrap(),
        base.node_id("z").unwrap(),
    );

    {
        let recovered = {
            let base = base.clone();
            Persistence::recover(&dir, 1 << 20, move || Ok(base)).expect("seed")
        };
        let durable = QueryService::new(recovered.graph, ServeConfig::default());
        durable.attach_persistence(recovered.persistence);
        durable
            .apply_delta_durable(&[(x, a, z)], &[])
            .expect("ack 1");
        durable
            .apply_delta_durable(&[(z, a, x)], &[(x, a, y)])
            .expect("ack 2");
    }
    tear_wal(&dir, 1);

    let recovered = Persistence::recover(&dir, 1 << 20, || Err("no fallback".into()))
        .expect("recover over torn tail");
    assert_eq!(recovered.report.wal_records_replayed, 2);
    assert!(recovered.report.torn_bytes_dropped > 0);
    let expected = base
        .with_delta(&[(x, a, z)], &[])
        .unwrap()
        .with_delta(&[(z, a, x)], &[(x, a, y)])
        .unwrap()
        .compact();
    assert_eq!(recovered.graph.snapshot_bytes(), expected.snapshot_bytes());
    std::fs::remove_dir_all(&dir).ok();
}
