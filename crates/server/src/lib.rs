//! # pathlearn-server — the concurrent RPQ serving layer
//!
//! The crates below this one answer *one query at a time*; this crate is
//! the subsystem that turns them into a **service**: many client threads
//! submitting regular path queries against a shared graph, with
//! redundant work removed at three levels —
//!
//! 1. **canonicalization** — every submission is minimized to its
//!    canonical DFA ([`pathlearn_automata::CanonicalQuery`]), so
//!    syntactically different but equivalent queries are one unit of
//!    work and one cache entry;
//! 2. **result caching** — evaluated answers live in a byte-budgeted
//!    [`ResultCache`] with GDSF cost-aware eviction (what survives
//!    pressure is what is expensive to recompute per byte kept);
//! 3. **coalescing** — duplicate submissions that arrive while an
//!    equivalent query is evaluating block on its in-flight ticket
//!    instead of re-evaluating (and duplicates inside one batch fold
//!    deterministically).
//!
//! Admitted queries are scheduled over the existing
//! [`pathlearn_graph::EvalPool`]: batch fan-out for multi-query
//! submissions, intra-query parallel evaluation for single big-graph
//! queries, plain sequential evaluation below the size threshold — see
//! [`service`] for the heuristic. Results are **bit-identical** to the
//! direct evaluators in every mode and at every thread count (this
//! crate's smoke tests re-assert the pool's contract end-to-end).
//!
//! Cache invalidation is wired to graph rebuilds:
//! [`QueryService::rebuild_graph`] swaps the graph, clears the cache and
//! bumps an epoch that keeps straggler evaluations of the old graph from
//! repopulating it.
//!
//! The **network front door** is [`net`]: a hardened stdlib-TCP server
//! speaking the framed binary protocol of [`proto`] — length-prefixed
//! versioned frames, per-connection read/write timeouts, a bounded
//! admission queue with load shedding, cooperative per-BFS-level query
//! deadlines, and graceful drain on shutdown and graph rebuild.
//!
//! The CLI front doors are `pathlearn serve` (in-process) and
//! `pathlearn serve --listen ADDR` (TCP, crate `pathlearn`); the
//! throughput/hit-rate harness is `bench_serve` (crate
//! `pathlearn-bench`, snapshot committed as `BENCH_serve.json`), which
//! doubles as a TCP client via `--listen`.
//!
//! **Durability** is [`wal`]: a data directory pairing a versioned
//! binary snapshot of the graph with an append-only, digest-checked
//! write-ahead log of delta batches — fsynced before `DELTA_APPLIED`
//! is answered, replayed on restart, and folded back into a fresh
//! snapshot once the log outgrows a checkpoint threshold. `pathlearn
//! serve --data-dir DIR` turns it on.
//!
//! **Observability** is [`telemetry`]: every `serve.*` / `cache.*` /
//! `net.*` / `wal.*` / `eval.*` number flows through one
//! [`MetricsRegistry`] (the `STATS` wire frame and [`ServeStats`] are
//! views over it); per-query [`QueryTrace`]s record wall-clock spans,
//! admission-queue wait and per-BFS-level samples into a recent-trace
//! ring plus a threshold-gated slow-query log; and the text admin
//! surface ([`AdminServer`], `pathlearn serve --listen ADDR --admin
//! ADDR2`) serves `/metrics` (Prometheus text), `/healthz` (readiness)
//! and `/slow` (recent slow traces) over plain HTTP.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod net;
pub mod proto;
pub mod service;
pub mod telemetry;
pub mod wal;

pub use cache::{CacheConfig, CacheKey, CacheStats, QueryKind, ResultCache};
pub use net::{Client, NetConfig, NetStats, Server};
pub use proto::{ErrorCode, QueryRef, Request, Response, WireKind, WireServed, NO_DEADLINE_MS};
pub use service::{
    DeltaApplied, DeltaCommitError, EvalMode, QueryResponse, QueryService, ServeConfig, ServeStats,
    Served,
};
pub use telemetry::{
    AdminServer, AdminSources, Counter, Gauge, HealthPhase, HealthReport, Histogram,
    MetricsRegistry, QueryTrace, Telemetry, TraceBuilder, TraceSink, TraceSpan,
};
pub use wal::{Persistence, RecoverError, Recovered, RecoveryReport, Wal, WalError};
