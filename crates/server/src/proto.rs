//! The framed binary wire protocol of the TCP front door.
//!
//! ## Frame layout
//!
//! Every message in both directions is one **frame**: a little-endian
//! `u32` payload length followed by that many payload bytes. The payload
//! begins with a fixed header —
//!
//! ```text
//! [u32 len] [u8 version] [u8 opcode] [u64 request_id] [body …]
//!  frame     must be 1    see below   echoed verbatim
//! ```
//!
//! — and the body depends on the opcode. All integers are little-endian;
//! strings are a `u16` length followed by UTF-8 bytes. The server caps
//! request frames at [`NetConfig::max_frame_len`](crate::net::NetConfig)
//! (default [`DEFAULT_MAX_FRAME_LEN`]) and answers an oversized length
//! prefix with an [`ErrorCode::Oversize`] error frame before closing —
//! a length-prefixed stream cannot resynchronize after a framing
//! violation, so framing-level errors always close the connection, while
//! semantic errors (an unparseable regex, an unknown fingerprint) only
//! fail the request.
//!
//! ## Requests
//!
//! | opcode | name | body |
//! |---|---|---|
//! | `0x01` | `QUERY` | `u8 kind` (0 monadic, 1 binary) · `u32 source` (binary only) · `u32 deadline_ms` ([`NO_DEADLINE_MS`] = unbounded, 0 = already expired) · `u8 ref` (0 = regex text string, 1 = `u64` canonical fingerprint) · the query |
//! | `0x02` | `STATS` | empty |
//! | `0x03` | `PING` | empty |
//! | `0x04` | `DELTA` | `u32 n_add` · n × (`src` · `label` · `dst` strings) · `u32 n_remove` · m × (`src` · `label` · `dst` strings) — edges by **name**, resolved server-side against the served graph |
//!
//! Fingerprint references resolve against the queries this server has
//! already parsed (see [`crate::net`]'s registry): a client that submits
//! a query by text once may repeat it by fingerprint, skipping the parse
//! and canonicalization on both sides.
//!
//! ## Responses
//!
//! | opcode | name | body |
//! |---|---|---|
//! | `0x81` | `RESULT` | `u8 served` (0 hit, 1 coalesced, 2 sequential, 3 intra-query, 4 batch) · `u64 fingerprint` · `u32 canonical_states` · `u64 eval_ns` · bitset (`u32 num_bits` · `u32 num_words` · words) |
//! | `0x82` | `SHED` | `u32 retry_after_ms` — admission queue over its watermark |
//! | `0x83` | `DEADLINE` | empty — the deadline budget expired before a result |
//! | `0x84` | `DRAINING` | empty — server draining for rebuild/shutdown; retry later |
//! | `0x85` | `ERROR` | `u8 code` ([`ErrorCode`]) · message string |
//! | `0x86` | `STATS` | `u32 n` · n × (`u8 name_len` · name · `u64 value`) |
//! | `0x87` | `PONG` | empty |
//! | `0x88` | `DELTA_APPLIED` | `u32 invalidated` · `u8 compacted` · `u32 delta_edges` — the delta landed; only cache entries reading a touched label were dropped |
//!
//! The result bitset is encoded as its backing `u64` blocks, so a client
//! can compare answers **bit-identically** against direct evaluation —
//! the fault-injection suite's core assertion.
//!
//! ## Deadline semantics
//!
//! `deadline_ms` is a **budget relative to frame arrival**, converted to
//! an absolute deadline when the request is decoded and carried into the
//! admission queue and the per-BFS-level cancellation checks
//! ([`pathlearn_graph::cancel`]). Time spent queued counts against the
//! budget; a request whose budget expires anywhere along the way gets a
//! `DEADLINE` frame, never a partial result. `NO_DEADLINE_MS` (the
//! `u32::MAX` sentinel) means unbounded; `0` is a valid, already-expired
//! budget (useful as a cancellation probe).

use pathlearn_automata::BitSet;
use std::io::{self, Read, Write};

/// The protocol version this build speaks. Version mismatches are
/// framing-level errors (the connection closes).
pub const PROTOCOL_VERSION: u8 = 1;

/// Default cap on request frame payloads (64 KiB — a regex of tens of
/// thousands of characters fits; result frames are bounded by the graph,
/// not by this).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 64 * 1024;

/// `deadline_ms` sentinel meaning "no deadline".
pub const NO_DEADLINE_MS: u32 = u32::MAX;

/// Fixed payload header: version, opcode, request id.
const HEADER_LEN: usize = 1 + 1 + 8;

const OP_QUERY: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_PING: u8 = 0x03;
const OP_DELTA: u8 = 0x04;
const OP_RESULT: u8 = 0x81;
const OP_SHED: u8 = 0x82;
const OP_DEADLINE: u8 = 0x83;
const OP_DRAINING: u8 = 0x84;
const OP_ERROR: u8 = 0x85;
const OP_STATS_REPLY: u8 = 0x86;
const OP_PONG: u8 = 0x87;
const OP_DELTA_APPLIED: u8 = 0x88;

/// Error codes carried by `ERROR` frames. Codes at or above
/// [`ErrorCode::Parse`] are request-level (the connection survives);
/// the ones below are framing-level (the server closes after sending).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Frame length prefix exceeded the server's cap.
    Oversize = 1,
    /// Unknown protocol version byte.
    BadVersion = 2,
    /// Unknown opcode (or a response opcode sent as a request).
    BadOpcode = 3,
    /// Body malformed: truncated fields, trailing bytes, bad tags.
    Malformed = 4,
    /// The query text failed to parse as a regex over the graph's
    /// alphabet (request-level; the message carries the parser's
    /// diagnostic).
    Parse = 5,
    /// A fingerprint reference this server has never seen (request-level;
    /// resubmit by text).
    UnknownFingerprint = 6,
    /// The server refused the connection (e.g. at its connection cap).
    Busy = 7,
    /// A `DELTA` frame named a node or label the served graph does not
    /// have (request-level; the graph is unchanged — deltas are
    /// all-or-nothing).
    BadDelta = 8,
    /// The server failed internally while committing the request —
    /// e.g. the write-ahead log could not be appended or fsynced
    /// (request-level; the delta was **not** applied, so retrying after
    /// the operator frees disk space is safe).
    Internal = 9,
}

impl ErrorCode {
    fn from_u8(code: u8) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::Oversize,
            2 => ErrorCode::BadVersion,
            3 => ErrorCode::BadOpcode,
            4 => ErrorCode::Malformed,
            5 => ErrorCode::Parse,
            6 => ErrorCode::UnknownFingerprint,
            7 => ErrorCode::Busy,
            8 => ErrorCode::BadDelta,
            9 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// How the query names itself: by regex text or by a canonical
/// fingerprint the server already knows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryRef {
    /// A regex over the served graph's alphabet, parsed server-side.
    Text(String),
    /// A [`pathlearn_automata::CanonicalQuery::fingerprint`] previously
    /// established on this server by a text submission.
    Fingerprint(u64),
}

/// Monadic or binary-from-source evaluation semantics, as requested on
/// the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireKind {
    /// `q(G)` — the selected-node set.
    Monadic,
    /// Binary semantics from the given source node id.
    Binary(u32),
}

/// A decoded client→server frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Evaluate a query under a deadline budget.
    Query {
        /// Client-chosen id echoed on the response.
        request_id: u64,
        /// Monadic or binary semantics.
        kind: WireKind,
        /// Budget in milliseconds from frame arrival; [`NO_DEADLINE_MS`]
        /// = unbounded, `0` = already expired.
        deadline_ms: u32,
        /// The query, by text or fingerprint.
        query: QueryRef,
    },
    /// Fetch the server's counters as a `STATS` reply.
    Stats {
        /// Client-chosen id echoed on the response.
        request_id: u64,
    },
    /// Liveness probe; answered with `PONG`.
    Ping {
        /// Client-chosen id echoed on the response.
        request_id: u64,
    },
    /// Apply an edge-delta batch — `(G ∖ remove) ∪ add` — to the served
    /// graph, invalidating only the touched labels' cache entries.
    /// Edges travel by **name** (`src`, `label`, `dst` strings) and are
    /// resolved server-side; an unknown name fails the whole batch with
    /// [`ErrorCode::BadDelta`] and changes nothing.
    Delta {
        /// Client-chosen id echoed on the response.
        request_id: u64,
        /// Edges to insert (after removals).
        add: Vec<WireEdge>,
        /// Edges to take out first.
        remove: Vec<WireEdge>,
    },
}

/// One named edge in a `DELTA` frame: `(src, label, dst)` strings,
/// resolved against the served graph's node names and alphabet.
pub type WireEdge = (String, String, String);

/// How a `RESULT` frame's query was served (the wire projection of
/// [`crate::Served`], splitting the evaluated case by mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WireServed {
    /// Result-cache hit.
    Hit = 0,
    /// Coalesced onto a concurrent in-flight evaluation.
    Coalesced = 1,
    /// Evaluated sequentially.
    EvaluatedSequential = 2,
    /// Evaluated on the intra-query parallel engine.
    EvaluatedIntra = 3,
    /// Evaluated inside a batch fan-out.
    EvaluatedBatch = 4,
}

impl WireServed {
    fn from_u8(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => WireServed::Hit,
            1 => WireServed::Coalesced,
            2 => WireServed::EvaluatedSequential,
            3 => WireServed::EvaluatedIntra,
            4 => WireServed::EvaluatedBatch,
            _ => return None,
        })
    }
}

/// A decoded server→client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The evaluated (or cached/coalesced) answer.
    Result {
        /// Echo of the request id.
        request_id: u64,
        /// How the submission was served.
        served: WireServed,
        /// Canonical fingerprint — usable as a [`QueryRef::Fingerprint`]
        /// on later requests to this server.
        fingerprint: u64,
        /// States of the canonical DFA.
        canonical_states: u32,
        /// Measured evaluation wall time (0 for hits/coalesced).
        eval_ns: u64,
        /// The selected node set, bit-identical to direct evaluation.
        bits: BitSet,
    },
    /// Load shed: the admission queue is over its watermark.
    Shed {
        /// Echo of the request id.
        request_id: u64,
        /// Suggested client backoff.
        retry_after_ms: u32,
    },
    /// The request's deadline budget expired before a result.
    Deadline {
        /// Echo of the request id.
        request_id: u64,
    },
    /// The server is draining (rebuild or shutdown); retry shortly.
    Draining {
        /// Echo of the request id.
        request_id: u64,
    },
    /// A framing- or request-level error (see [`ErrorCode`]).
    Error {
        /// Echo of the request id (0 when no request could be decoded).
        request_id: u64,
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable diagnostic.
        message: String,
    },
    /// Named counters snapshot.
    Stats {
        /// Echo of the request id.
        request_id: u64,
        /// `(name, value)` pairs — self-describing so clients survive
        /// counter additions.
        counters: Vec<(String, u64)>,
    },
    /// Liveness reply.
    Pong {
        /// Echo of the request id.
        request_id: u64,
    },
    /// A `DELTA` frame landed (the wire projection of
    /// [`crate::DeltaApplied`]).
    DeltaApplied {
        /// Echo of the request id.
        request_id: u64,
        /// Cache entries dropped by label-aware invalidation.
        invalidated: u32,
        /// Whether the overlay was folded into a fresh CSR.
        compacted: bool,
        /// Overlay edges still pending after this batch.
        delta_edges: u32,
    },
}

/// Why a payload failed to decode. The variants map onto the
/// [`ErrorCode`]s the server reports before closing the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// A field ran past the end of the payload.
    Truncated,
    /// Unknown protocol version (the offending byte).
    BadVersion(u8),
    /// Unknown opcode (the offending byte).
    BadOpcode(u8),
    /// Structurally invalid body.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("truncated payload"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl DecodeError {
    /// The [`ErrorCode`] the server reports for this decode failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            DecodeError::Truncated | DecodeError::Malformed(_) => ErrorCode::Malformed,
            DecodeError::BadVersion(_) => ErrorCode::BadVersion,
            DecodeError::BadOpcode(_) => ErrorCode::BadOpcode,
        }
    }
}

/// Why reading one frame off a stream failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// The length prefix exceeded the cap (carries the claimed length).
    Oversize(u32),
    /// I/O failure — includes timeouts and mid-frame disconnects.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Oversize(len) => write!(f, "frame length {len} exceeds cap"),
            FrameError::Io(err) => write!(f, "frame i/o error: {err}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one length-prefixed frame, enforcing `max_len` on the payload.
/// Distinguishes a clean close at a frame boundary ([`FrameError::Closed`])
/// from a mid-frame truncation (an [`io::ErrorKind::UnexpectedEof`] I/O
/// error), so the server can count malformed peers separately from
/// well-behaved departures.
pub fn read_frame<R: Read>(reader: &mut R, max_len: u32) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    // First byte by hand: 0 bytes here is a clean close, not truncation.
    let mut first = [0u8; 1];
    match reader.read(&mut first) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => prefix[0] = first[0],
        Err(err) => return Err(FrameError::Io(err)),
    }
    reader
        .read_exact(&mut prefix[1..])
        .map_err(FrameError::Io)?;
    let len = u32::from_le_bytes(prefix);
    if len > max_len {
        return Err(FrameError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(payload)
}

/// Writes one length-prefixed frame and flushes.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Malformed("non-utf8 string"))
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Malformed("trailing bytes"))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len]);
}

fn header(out: &mut Vec<u8>, opcode: u8, request_id: u64) {
    out.push(PROTOCOL_VERSION);
    out.push(opcode);
    out.extend_from_slice(&request_id.to_le_bytes());
}

fn decode_header(reader: &mut Reader<'_>) -> Result<(u8, u64), DecodeError> {
    let version = reader.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let opcode = reader.u8()?;
    let request_id = reader.u64()?;
    Ok((opcode, request_id))
}

fn put_bitset(out: &mut Vec<u8>, bits: &BitSet) {
    let blocks = bits.as_blocks();
    out.extend_from_slice(&(bits.capacity() as u32).to_le_bytes());
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for block in blocks {
        out.extend_from_slice(&block.to_le_bytes());
    }
}

fn read_bitset(reader: &mut Reader<'_>) -> Result<BitSet, DecodeError> {
    let num_bits = reader.u32()? as usize;
    let num_words = reader.u32()? as usize;
    if num_words != num_bits.div_ceil(BitSet::BLOCK_BITS) {
        return Err(DecodeError::Malformed("bitset word count"));
    }
    let mut indices = Vec::new();
    for word_index in 0..num_words {
        let mut word = u64::from_le_bytes(reader.bytes(8)?.try_into().unwrap());
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            let index = word_index * BitSet::BLOCK_BITS + bit;
            if index >= num_bits {
                return Err(DecodeError::Malformed("bit beyond capacity"));
            }
            indices.push(index);
            word &= word - 1;
        }
    }
    Ok(BitSet::from_indices(num_bits, indices))
}

impl Request {
    /// Encodes this request as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 16);
        match self {
            Request::Query {
                request_id,
                kind,
                deadline_ms,
                query,
            } => {
                header(&mut out, OP_QUERY, *request_id);
                match kind {
                    WireKind::Monadic => out.push(0),
                    WireKind::Binary(source) => {
                        out.push(1);
                        out.extend_from_slice(&source.to_le_bytes());
                    }
                }
                out.extend_from_slice(&deadline_ms.to_le_bytes());
                match query {
                    QueryRef::Text(text) => {
                        out.push(0);
                        put_string(&mut out, text);
                    }
                    QueryRef::Fingerprint(fp) => {
                        out.push(1);
                        out.extend_from_slice(&fp.to_le_bytes());
                    }
                }
            }
            Request::Stats { request_id } => header(&mut out, OP_STATS, *request_id),
            Request::Ping { request_id } => header(&mut out, OP_PING, *request_id),
            Request::Delta {
                request_id,
                add,
                remove,
            } => {
                header(&mut out, OP_DELTA, *request_id);
                for list in [add, remove] {
                    out.extend_from_slice(&(list.len() as u32).to_le_bytes());
                    for (src, label, dst) in list {
                        put_string(&mut out, src);
                        put_string(&mut out, label);
                        put_string(&mut out, dst);
                    }
                }
            }
        }
        out
    }

    /// Decodes one request payload (strict: trailing bytes are malformed).
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let mut reader = Reader::new(payload);
        let (opcode, request_id) = decode_header(&mut reader)?;
        let request = match opcode {
            OP_QUERY => {
                let kind = match reader.u8()? {
                    0 => WireKind::Monadic,
                    1 => WireKind::Binary(reader.u32()?),
                    _ => return Err(DecodeError::Malformed("query kind tag")),
                };
                let deadline_ms = reader.u32()?;
                let query = match reader.u8()? {
                    0 => QueryRef::Text(reader.string()?),
                    1 => QueryRef::Fingerprint(reader.u64()?),
                    _ => return Err(DecodeError::Malformed("query ref tag")),
                };
                Request::Query {
                    request_id,
                    kind,
                    deadline_ms,
                    query,
                }
            }
            OP_STATS => Request::Stats { request_id },
            OP_PING => Request::Ping { request_id },
            OP_DELTA => {
                let mut lists = [Vec::new(), Vec::new()];
                for list in &mut lists {
                    let n = reader.u32()? as usize;
                    // Each edge costs ≥ 6 payload bytes (three empty
                    // strings); a count claiming more edges than the
                    // payload could hold is malformed, not a giant
                    // allocation.
                    if n > payload.len() / 6 {
                        return Err(DecodeError::Malformed("delta edge count"));
                    }
                    list.reserve(n);
                    for _ in 0..n {
                        let src = reader.string()?;
                        let label = reader.string()?;
                        let dst = reader.string()?;
                        list.push((src, label, dst));
                    }
                }
                let [add, remove] = lists;
                Request::Delta {
                    request_id,
                    add,
                    remove,
                }
            }
            other => return Err(DecodeError::BadOpcode(other)),
        };
        reader.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Encodes this response as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 32);
        match self {
            Response::Result {
                request_id,
                served,
                fingerprint,
                canonical_states,
                eval_ns,
                bits,
            } => {
                header(&mut out, OP_RESULT, *request_id);
                out.push(*served as u8);
                out.extend_from_slice(&fingerprint.to_le_bytes());
                out.extend_from_slice(&canonical_states.to_le_bytes());
                out.extend_from_slice(&eval_ns.to_le_bytes());
                put_bitset(&mut out, bits);
            }
            Response::Shed {
                request_id,
                retry_after_ms,
            } => {
                header(&mut out, OP_SHED, *request_id);
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Response::Deadline { request_id } => header(&mut out, OP_DEADLINE, *request_id),
            Response::Draining { request_id } => header(&mut out, OP_DRAINING, *request_id),
            Response::Error {
                request_id,
                code,
                message,
            } => {
                header(&mut out, OP_ERROR, *request_id);
                out.push(*code as u8);
                put_string(&mut out, message);
            }
            Response::Stats {
                request_id,
                counters,
            } => {
                header(&mut out, OP_STATS_REPLY, *request_id);
                out.extend_from_slice(&(counters.len() as u32).to_le_bytes());
                for (name, value) in counters {
                    let len = name.len().min(u8::MAX as usize);
                    out.push(len as u8);
                    out.extend_from_slice(&name.as_bytes()[..len]);
                    out.extend_from_slice(&value.to_le_bytes());
                }
            }
            Response::Pong { request_id } => header(&mut out, OP_PONG, *request_id),
            Response::DeltaApplied {
                request_id,
                invalidated,
                compacted,
                delta_edges,
            } => {
                header(&mut out, OP_DELTA_APPLIED, *request_id);
                out.extend_from_slice(&invalidated.to_le_bytes());
                out.push(u8::from(*compacted));
                out.extend_from_slice(&delta_edges.to_le_bytes());
            }
        }
        out
    }

    /// Decodes one response payload (strict: trailing bytes are
    /// malformed).
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let mut reader = Reader::new(payload);
        let (opcode, request_id) = decode_header(&mut reader)?;
        let response = match opcode {
            OP_RESULT => {
                let served = WireServed::from_u8(reader.u8()?)
                    .ok_or(DecodeError::Malformed("served tag"))?;
                let fingerprint = reader.u64()?;
                let canonical_states = reader.u32()?;
                let eval_ns = reader.u64()?;
                let bits = read_bitset(&mut reader)?;
                Response::Result {
                    request_id,
                    served,
                    fingerprint,
                    canonical_states,
                    eval_ns,
                    bits,
                }
            }
            OP_SHED => Response::Shed {
                request_id,
                retry_after_ms: reader.u32()?,
            },
            OP_DEADLINE => Response::Deadline { request_id },
            OP_DRAINING => Response::Draining { request_id },
            OP_ERROR => {
                let code =
                    ErrorCode::from_u8(reader.u8()?).ok_or(DecodeError::Malformed("error code"))?;
                let message = reader.string()?;
                Response::Error {
                    request_id,
                    code,
                    message,
                }
            }
            OP_STATS_REPLY => {
                let n = reader.u32()? as usize;
                let mut counters = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let len = reader.u8()? as usize;
                    let name = String::from_utf8(reader.bytes(len)?.to_vec())
                        .map_err(|_| DecodeError::Malformed("non-utf8 counter name"))?;
                    counters.push((name, reader.u64()?));
                }
                Response::Stats {
                    request_id,
                    counters,
                }
            }
            OP_PONG => Response::Pong { request_id },
            OP_DELTA_APPLIED => {
                let invalidated = reader.u32()?;
                let compacted = match reader.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError::Malformed("compacted flag")),
                };
                let delta_edges = reader.u32()?;
                Response::DeltaApplied {
                    request_id,
                    invalidated,
                    compacted,
                    delta_edges,
                }
            }
            other => return Err(DecodeError::BadOpcode(other)),
        };
        reader.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: Request) {
        let payload = request.encode();
        assert_eq!(Request::decode(&payload), Ok(request));
    }

    fn roundtrip_response(response: Response) {
        let payload = response.encode();
        assert_eq!(Response::decode(&payload), Ok(response));
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Query {
            request_id: 7,
            kind: WireKind::Monadic,
            deadline_ms: NO_DEADLINE_MS,
            query: QueryRef::Text("(a·b)*·c".to_owned()),
        });
        roundtrip_request(Request::Query {
            request_id: u64::MAX,
            kind: WireKind::Binary(42),
            deadline_ms: 0,
            query: QueryRef::Fingerprint(0xdead_beef),
        });
        roundtrip_request(Request::Stats { request_id: 1 });
        roundtrip_request(Request::Ping { request_id: 2 });
        roundtrip_request(Request::Delta {
            request_id: 3,
            add: vec![("v1".into(), "a".into(), "v2".into())],
            remove: vec![
                ("v2".into(), "b".into(), "v3".into()),
                ("v3".into(), "c".into(), "v1".into()),
            ],
        });
        roundtrip_request(Request::Delta {
            request_id: 4,
            add: vec![],
            remove: vec![],
        });
    }

    #[test]
    fn delta_decoding_rejects_truncation_and_bogus_counts() {
        let full = Request::Delta {
            request_id: 5,
            add: vec![("v1".into(), "a".into(), "v2".into())],
            remove: vec![("v2".into(), "a".into(), "v1".into())],
        }
        .encode();
        for cut in HEADER_LEN..full.len() {
            assert_eq!(
                Request::decode(&full[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
        // An edge count the payload cannot possibly hold is rejected
        // before any allocation, not trusted.
        let mut bogus = Vec::new();
        header(&mut bogus, OP_DELTA, 1);
        bogus.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Request::decode(&bogus),
            Err(DecodeError::Malformed("delta edge count"))
        );
    }

    #[test]
    fn responses_roundtrip() {
        let mut bits = BitSet::new(130);
        bits.insert(0);
        bits.insert(64);
        bits.insert(129);
        roundtrip_response(Response::Result {
            request_id: 9,
            served: WireServed::EvaluatedIntra,
            fingerprint: 123,
            canonical_states: 4,
            eval_ns: 55_000,
            bits,
        });
        roundtrip_response(Response::Result {
            request_id: 10,
            served: WireServed::Hit,
            fingerprint: 1,
            canonical_states: 1,
            eval_ns: 0,
            bits: BitSet::new(0),
        });
        roundtrip_response(Response::Shed {
            request_id: 3,
            retry_after_ms: 250,
        });
        roundtrip_response(Response::Deadline { request_id: 4 });
        roundtrip_response(Response::Draining { request_id: 5 });
        roundtrip_response(Response::Error {
            request_id: 6,
            code: ErrorCode::Parse,
            message: "unbalanced parenthesis".to_owned(),
        });
        roundtrip_response(Response::Stats {
            request_id: 7,
            counters: vec![("net.shed".to_owned(), 3), ("serve.hits".to_owned(), 99)],
        });
        roundtrip_response(Response::Pong { request_id: 8 });
        roundtrip_response(Response::DeltaApplied {
            request_id: 11,
            invalidated: 3,
            compacted: true,
            delta_edges: 0,
        });
        roundtrip_response(Response::Error {
            request_id: 12,
            code: ErrorCode::BadDelta,
            message: "unknown node \"v99\"".to_owned(),
        });
    }

    #[test]
    fn decode_rejects_bad_version_opcode_and_trailing_bytes() {
        let mut payload = Request::Ping { request_id: 1 }.encode();
        payload[0] = 99;
        assert_eq!(Request::decode(&payload), Err(DecodeError::BadVersion(99)));
        assert_eq!(DecodeError::BadVersion(99).code(), ErrorCode::BadVersion);

        let mut payload = Request::Ping { request_id: 1 }.encode();
        payload[1] = 0x7f;
        assert_eq!(Request::decode(&payload), Err(DecodeError::BadOpcode(0x7f)));

        let mut payload = Request::Ping { request_id: 1 }.encode();
        payload.push(0);
        assert_eq!(
            Request::decode(&payload),
            Err(DecodeError::Malformed("trailing bytes"))
        );
        assert_eq!(
            DecodeError::Malformed("trailing bytes").code(),
            ErrorCode::Malformed
        );

        // Truncations anywhere in the header or body.
        let full = Request::Query {
            request_id: 3,
            kind: WireKind::Binary(1),
            deadline_ms: 10,
            query: QueryRef::Text("abc".to_owned()),
        }
        .encode();
        for cut in 0..full.len() {
            assert_eq!(
                Request::decode(&full[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_inconsistent_bitsets() {
        let bits = BitSet::from_indices(100, [5usize, 80]);
        let good = Response::Result {
            request_id: 1,
            served: WireServed::Hit,
            fingerprint: 0,
            canonical_states: 1,
            eval_ns: 0,
            bits,
        }
        .encode();
        // Corrupt the word count (num_words field sits after the fixed
        // result header + num_bits).
        let words_at = HEADER_LEN + 1 + 8 + 4 + 8 + 4;
        let mut bad = good.clone();
        bad[words_at] = 7;
        assert_eq!(
            Response::decode(&bad),
            Err(DecodeError::Malformed("bitset word count"))
        );
        // A set bit beyond the declared capacity is malformed, not
        // silently dropped.
        let mut bad = good;
        let last_word = bad.len() - 8;
        bad[last_word..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Response::decode(&bad),
            Err(DecodeError::Malformed("bit beyond capacity"))
        );
    }

    #[test]
    fn frame_io_roundtrips_and_enforces_the_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Closed)
        ));

        // Oversize length prefix.
        let mut oversize = Vec::new();
        write_frame(&mut oversize, &[0u8; 100]).unwrap();
        let mut cursor = io::Cursor::new(oversize);
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Oversize(100))
        ));

        // A truncated frame is an I/O error, not a clean close.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, b"hello").unwrap();
        truncated.truncate(6);
        let mut cursor = io::Cursor::new(truncated);
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Io(_))
        ));
    }
}
