//! The hardened TCP front door over [`QueryService`].
//!
//! Stdlib TCP only — no async runtime. The shape is deliberately
//! boring: an **acceptor** thread polls a non-blocking listener, each
//! accepted socket gets a **connection** thread that speaks the framed
//! protocol of [`crate::proto`], and decoded queries pass through a
//! **bounded admission queue** to a small pool of **eval workers**. The
//! robustness properties live in the seams:
//!
//! * **Slow-loris defense** — per-connection read and write timeouts
//!   ([`NetConfig::read_timeout`] / [`NetConfig::write_timeout`]): a
//!   peer that dribbles bytes or refuses to read its replies loses the
//!   connection, never a server thread.
//! * **Load shedding** — the admission queue is a bounded `VecDeque`;
//!   at the watermark new queries get an immediate `SHED` frame with a
//!   retry hint instead of unbounded queueing.
//! * **Deadlines** — `deadline_ms` becomes an absolute
//!   [`CancelToken`] deadline at frame arrival, so time spent queued
//!   counts; the service checks it before admission and once per BFS
//!   level, and an expired budget yields a `DEADLINE` frame, never a
//!   partial result.
//! * **Graceful drain** — [`Server::rebuild_graph`] and
//!   [`Server::shutdown`] stop admissions, trip the current
//!   drain-generation flag (cancelling queued and in-flight work at
//!   its next level check), and wait up to [`NetConfig::drain_grace`]
//!   for the queue to go idle. Every admitted job still gets exactly
//!   one reply — drained jobs answer `DRAINING`, which clients treat
//!   as retryable.
//! * **Exactly-one-reply** — workers pop and answer every queued job
//!   even during shutdown, so no connection thread is left waiting on
//!   a reply slot.
//!
//! Rebuilds give the queue a **fresh drain-generation flag** after the
//! swap, so post-rebuild admissions run un-cancelled while pre-rebuild
//! stragglers stay tripped — combined with [`QueryService`]'s epoch
//! guard this guarantees a frame admitted after a rebuild never sees an
//! old-epoch result. The fingerprint registry is cleared on rebuild
//! (the new graph may have a different alphabet), so clients must
//! re-establish fingerprints by text and treat `UNKNOWN_FINGERPRINT`
//! after a `DRAINING` burst as "resubmit by text".
//!
//! `DELTA` frames are the non-disruptive write path: they are handled
//! inline on the connection thread through
//! [`QueryService::apply_delta`] — no drain, no shed, no fresh drain
//! generation — because a delta invalidates only the touched labels'
//! cache entries and fences stale in-flight publishes with per-label
//! epochs. The fingerprint registry is **retained** across deltas: the
//! node set and the alphabet are frozen under the delta contract, so
//! every established fingerprint still names the same canonical query.

use crate::proto::{
    read_frame, write_frame, ErrorCode, FrameError, QueryRef, Request, Response, WireEdge,
    WireKind, WireServed, NO_DEADLINE_MS,
};
use crate::service::{
    DeltaApplied, DeltaCommitError, EvalMode, QueryResponse, QueryService, Served,
};
use crate::telemetry::{
    AdminSources, Counter, Gauge, HealthPhase, HealthReport, Histogram, MetricsRegistry, Telemetry,
};
use pathlearn_automata::{CanonicalQuery, Regex, Symbol};
use pathlearn_graph::{CancelToken, GraphDb, Interrupt, NodeId};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for the TCP front door. The defaults are sized for the
/// test and bench workloads; production would mostly raise
/// `max_connections` and `eval_workers`.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Cap on request frame payloads; larger length prefixes get an
    /// `OVERSIZE` error and the connection closes.
    pub max_frame_len: u32,
    /// Per-connection read timeout (slow-loris defense): a peer that
    /// stalls mid-frame longer than this is disconnected.
    pub read_timeout: Duration,
    /// Per-connection write timeout: a peer that stops reading its
    /// replies is disconnected rather than parking a server thread.
    pub write_timeout: Duration,
    /// Concurrent connection cap; excess connections get a best-effort
    /// `BUSY` error frame and are closed.
    pub max_connections: usize,
    /// Admission queue watermark: queries arriving while this many are
    /// queued get a `SHED` frame instead.
    pub queue_depth: usize,
    /// Eval worker threads draining the admission queue. Each runs one
    /// query at a time through [`QueryService`] (which does its own
    /// intra-query fan-out on the shared pool).
    pub eval_workers: usize,
    /// Base backoff hint carried in `SHED` frames. The hint actually
    /// sent scales with queue occupancy at shed time — a queue `k`
    /// workers' worth of jobs deep hints `k × retry_after_ms` (capped
    /// at [`MAX_RETRY_AFTER_MS`]) — so clients back off harder the
    /// deeper the backlog they bounced off.
    pub retry_after_ms: u32,
    /// How long a drain (rebuild or shutdown) waits for queued and
    /// in-flight work to finish before proceeding anyway; the tripped
    /// drain flag bounds the overshoot to one BFS level.
    pub drain_grace: Duration,
    /// Cap on remembered text-established fingerprints; at the cap new
    /// text queries still evaluate but are not registered.
    pub fingerprint_cap: usize,
}

/// Ceiling on the occupancy-scaled `SHED` backoff hint
/// ([`NetConfig::retry_after_ms`] × backlog rounds, clamped here).
pub const MAX_RETRY_AFTER_MS: u32 = 5_000;

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame_len: crate::proto::DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_connections: 1024,
            queue_depth: 64,
            eval_workers: 2,
            retry_after_ms: 100,
            drain_grace: Duration::from_secs(2),
            fingerprint_cap: 65_536,
        }
    }
}

/// Front-door counters (network layer only; `STATS` frames merge these
/// with [`crate::ServeStats`] and [`crate::CacheStats`]).
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused at the [`NetConfig::max_connections`] cap.
    pub refused: u64,
    /// Currently open connections.
    pub active_connections: u64,
    /// Query frames decoded.
    pub queries: u64,
    /// Queries answered with `SHED`.
    pub shed: u64,
    /// Queries answered with `DEADLINE`.
    pub deadline_replies: u64,
    /// Queries answered with `DRAINING`.
    pub draining_replies: u64,
    /// Framing/decoding violations (each closes its connection).
    pub malformed: u64,
    /// Connections dropped on I/O errors — read/write timeouts and
    /// mid-frame disconnects.
    pub io_errors: u64,
    /// Current admission queue depth.
    pub queue_depth: u64,
    /// Median service latency of answered queries (ns), reported as the
    /// inclusive upper bound of the log₂ histogram bucket holding the
    /// nearest-rank sample (see [`crate::telemetry::Histogram`]).
    pub latency_p50_ns: u64,
    /// 99th-percentile service latency (ns), same derivation.
    pub latency_p99_ns: u64,
}

/// How one admitted job ended; maps 1:1 onto the reply frame.
enum JobOutcome {
    Done(QueryResponse),
    Deadline,
    Cancelled,
}

/// A single-use rendezvous the connection thread blocks on while a
/// worker evaluates its query. Workers guarantee every slot is filled
/// exactly once, shutdown included.
struct ReplySlot {
    outcome: Mutex<Option<JobOutcome>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new() -> Self {
        ReplySlot {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, outcome: JobOutcome) {
        let mut slot = self.outcome.lock().unwrap();
        *slot = Some(outcome);
        self.ready.notify_one();
    }

    fn wait(&self) -> JobOutcome {
        let mut slot = self.outcome.lock().unwrap();
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.ready.wait(slot).unwrap();
        }
    }
}

/// One admitted query waiting for an eval worker.
struct Job {
    query: CanonicalQuery,
    kind: WireKind,
    deadline: Option<Instant>,
    /// When the job entered the admission queue; the popping worker
    /// reports `now − enqueued` as the query's queue wait (recorded on
    /// its trace and in the `serve.queue_wait` histogram).
    enqueued: Instant,
    /// The drain-generation flag current at admission: a drain trips
    /// exactly the generations admitted before it.
    flag: Arc<AtomicBool>,
    slot: Arc<ReplySlot>,
}

/// Admission queue + drain state, under one mutex.
struct QueueState {
    jobs: VecDeque<Job>,
    /// Jobs popped and currently evaluating.
    running: usize,
    /// Admissions answer `DRAINING` while set.
    draining: bool,
    /// Workers exit once set *and* the queue is empty.
    shutdown: bool,
    /// Current drain generation; replaced with a fresh flag after each
    /// rebuild so post-rebuild work runs un-cancelled.
    drain_flag: Arc<AtomicBool>,
}

/// Live handles into the unified [`MetricsRegistry`] for the front
/// door's `net.*` slice. Registered against the service's
/// [`Telemetry`] bundle at bind time, so one registry snapshot covers
/// the network, serving, cache and WAL layers together.
struct NetCounters {
    accepted: Counter,
    refused: Counter,
    active: Gauge,
    queries: Counter,
    shed: Counter,
    deadline_replies: Counter,
    draining_replies: Counter,
    malformed: Counter,
    io_errors: Counter,
    /// Synced with the live queue at snapshot time (see
    /// [`Shared::refresh_queue_depth`]); depth is only meaningful at
    /// observation, so the push/pop paths do not touch it.
    queue_depth: Gauge,
    /// Service latency of answered queries (worker pop → reply ready),
    /// log₂-bucketed. Replaces the old mutex-guarded sliding window on
    /// the reply hot path; its nearest-rank quantiles are exact over
    /// the whole history by construction — no partially-filled-window
    /// cold-start to get wrong.
    latency: Histogram,
}

impl NetCounters {
    fn register(registry: &MetricsRegistry) -> Self {
        NetCounters {
            accepted: registry.counter("net.accepted"),
            refused: registry.counter("net.refused"),
            active: registry.gauge("net.active_connections"),
            queries: registry.counter("net.queries"),
            shed: registry.counter("net.shed"),
            deadline_replies: registry.counter("net.deadline_replies"),
            draining_replies: registry.counter("net.draining_replies"),
            malformed: registry.counter("net.malformed"),
            io_errors: registry.counter("net.io_errors"),
            queue_depth: registry.gauge("net.queue_depth"),
            latency: registry.histogram("net.latency", "ns"),
        }
    }
}

struct Shared {
    service: QueryService,
    config: NetConfig,
    queue: Mutex<QueueState>,
    job_ready: Condvar,
    idle: Condvar,
    /// The service's telemetry bundle — shared registry + trace sink.
    telemetry: Arc<Telemetry>,
    counters: NetCounters,
    /// Fingerprint → canonical query, established by text submissions.
    registry: Mutex<HashMap<u64, CanonicalQuery>>,
    /// Clones of live sockets so shutdown can force-unblock connection
    /// threads parked in reads.
    conns: Mutex<HashMap<u64, TcpStream>>,
    stop_accept: AtomicBool,
}

impl Shared {
    /// Syncs the `net.queue_depth` gauge with the live queue; called
    /// before every snapshot or exposition so scrapes see the depth at
    /// observation time.
    fn refresh_queue_depth(&self) {
        let depth = self.queue.lock().unwrap().jobs.len() as u64;
        self.counters.queue_depth.set(depth);
    }

    fn net_stats(&self) -> NetStats {
        self.refresh_queue_depth();
        NetStats {
            accepted: self.counters.accepted.get(),
            refused: self.counters.refused.get(),
            active_connections: self.counters.active.get(),
            queries: self.counters.queries.get(),
            shed: self.counters.shed.get(),
            deadline_replies: self.counters.deadline_replies.get(),
            draining_replies: self.counters.draining_replies.get(),
            malformed: self.counters.malformed.get(),
            io_errors: self.counters.io_errors.get(),
            queue_depth: self.counters.queue_depth.get(),
            latency_p50_ns: self.counters.latency.quantile(50),
            latency_p99_ns: self.counters.latency.quantile(99),
        }
    }

    /// Every counter the server exposes, namespaced and self-describing
    /// — the `STATS` frame body and the bench schema both come from
    /// here, so adding a counter automatically reaches both. This is a
    /// sorted snapshot of the unified registry: keys ascend
    /// lexicographically (pinned by a regression test), and histograms
    /// contribute derived `_count` / `_p50_<unit>` / `_p99_<unit>`
    /// keys, which is how the legacy `net.latency_p50_ns` /
    /// `net.latency_p99_ns` names survive the registry migration.
    fn stats_counters(&self) -> Vec<(String, u64)> {
        self.refresh_queue_depth();
        self.telemetry.registry.snapshot()
    }

    fn register_fingerprint(&self, query: &CanonicalQuery) {
        let mut registry = self.registry.lock().unwrap();
        if registry.len() < self.config.fingerprint_cap
            || registry.contains_key(&query.fingerprint())
        {
            registry.insert(query.fingerprint(), query.clone());
        }
    }

    /// Worker loop: pop, evaluate under the job's cancel token, fill
    /// the reply slot. Popping takes priority over the shutdown check
    /// so every admitted job is answered before workers exit.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = queue.jobs.pop_front() {
                        queue.running += 1;
                        break job;
                    }
                    if queue.shutdown {
                        return;
                    }
                    queue = self.job_ready.wait(queue).unwrap();
                }
            };
            let start = Instant::now();
            let queue_wait = start.saturating_duration_since(job.enqueued);
            let mut token = CancelToken::with_flag(job.flag);
            if let Some(deadline) = job.deadline {
                token = token.and_deadline(deadline);
            }
            let outcome = match job.kind {
                WireKind::Monadic => self
                    .service
                    .query_monadic_canonical_queued(job.query, &token, queue_wait),
                WireKind::Binary(source) => self
                    .service
                    .query_binary_canonical_queued(job.query, source, &token, queue_wait),
            };
            let outcome = match outcome {
                Ok(response) => {
                    self.counters
                        .latency
                        .record(start.elapsed().as_nanos() as u64);
                    JobOutcome::Done(response)
                }
                Err(Interrupt::Deadline) => JobOutcome::Deadline,
                Err(Interrupt::Cancelled) => JobOutcome::Cancelled,
            };
            job.slot.fill(outcome);
            let mut queue = self.queue.lock().unwrap();
            queue.running -= 1;
            if queue.jobs.is_empty() && queue.running == 0 {
                self.idle.notify_all();
            }
        }
    }

    /// Resolves a wire query reference to a canonical query, or the
    /// request-level error frame to send instead.
    fn resolve_query(&self, request_id: u64, query: &QueryRef) -> Result<CanonicalQuery, Response> {
        match query {
            QueryRef::Text(text) => {
                let graph = self.service.graph();
                match Regex::parse(text, graph.alphabet()) {
                    Ok(regex) => {
                        let dfa = regex.to_dfa(graph.alphabet().len());
                        let canonical = CanonicalQuery::new(&dfa);
                        self.register_fingerprint(&canonical);
                        Ok(canonical)
                    }
                    Err(err) => Err(Response::Error {
                        request_id,
                        code: ErrorCode::Parse,
                        message: err.to_string(),
                    }),
                }
            }
            QueryRef::Fingerprint(fp) => match self.registry.lock().unwrap().get(fp).cloned() {
                Some(canonical) => Ok(canonical),
                None => Err(Response::Error {
                    request_id,
                    code: ErrorCode::UnknownFingerprint,
                    message: format!("fingerprint {fp:#018x} not established on this server"),
                }),
            },
        }
    }

    /// Applies a `DELTA` frame inline: resolve the named edges against
    /// the served graph, hand the batch to
    /// [`QueryService::apply_delta`], and answer `DELTA_APPLIED` (or a
    /// request-level `BAD_DELTA` error — the graph is unchanged then).
    /// No drain, no queue: deltas are the cheap write path, and the
    /// fingerprint registry survives because the node set and alphabet
    /// are frozen.
    fn handle_delta(&self, request_id: u64, add: &[WireEdge], remove: &[WireEdge]) -> Response {
        let graph = self.service.graph();
        let bad = |message: String| Response::Error {
            request_id,
            code: ErrorCode::BadDelta,
            message,
        };
        let mut resolved = [Vec::new(), Vec::new()];
        for (list, wire) in resolved.iter_mut().zip([add, remove]) {
            list.reserve(wire.len());
            for (src, label, dst) in wire {
                let node = |name: &str| -> Result<NodeId, Response> {
                    graph
                        .node_id(name)
                        .ok_or_else(|| bad(format!("unknown node {name:?}")))
                };
                let sym: Symbol = match graph.alphabet().symbol(label) {
                    Some(sym) => sym,
                    None => return bad(format!("unknown label {label:?}")),
                };
                match (node(src), node(dst)) {
                    (Ok(src), Ok(dst)) => list.push((src, sym, dst)),
                    (Err(reply), _) | (_, Err(reply)) => return reply,
                }
            }
        }
        let [add_ids, remove_ids] = resolved;
        // The durable path: with persistence attached the batch is
        // WAL-appended and fsynced before it is applied, so this
        // `DELTA_APPLIED` only ever acknowledges a write that survives
        // a crash. Without persistence it degrades to the plain apply.
        match self.service.apply_delta_durable(&add_ids, &remove_ids) {
            Ok(DeltaApplied {
                invalidated,
                compacted,
                delta_edges,
            }) => Response::DeltaApplied {
                request_id,
                invalidated: invalidated as u32,
                compacted,
                delta_edges: delta_edges as u32,
            },
            // Unreachable while the delta contract holds (resolution
            // pinned everything in range), but a rebuild racing this
            // frame can shrink the graph under the resolved ids.
            Err(DeltaCommitError::Rejected(err)) => bad(err.to_string()),
            // The WAL could not take the batch (e.g. disk full): the
            // graph is unchanged and the client may retry once the
            // operator intervenes.
            Err(DeltaCommitError::Wal(err)) => Response::Error {
                request_id,
                code: ErrorCode::Internal,
                message: format!("delta not committed: {err}"),
            },
        }
    }

    /// Admits one decoded query and blocks until its reply frame is
    /// determined. Always returns exactly one response.
    fn handle_query(
        &self,
        request_id: u64,
        kind: WireKind,
        deadline_ms: u32,
        query: &QueryRef,
        arrival: Instant,
    ) -> Response {
        self.counters.queries.inc();
        let canonical = match self.resolve_query(request_id, query) {
            Ok(canonical) => canonical,
            Err(error) => return error,
        };
        let deadline = (deadline_ms != NO_DEADLINE_MS)
            .then(|| arrival + Duration::from_millis(u64::from(deadline_ms)));
        let slot = Arc::new(ReplySlot::new());
        {
            let mut queue = self.queue.lock().unwrap();
            if queue.draining || queue.shutdown {
                drop(queue);
                self.counters.draining_replies.inc();
                return Response::Draining { request_id };
            }
            if queue.jobs.len() >= self.config.queue_depth {
                // Scale the backoff hint by how much work the bounced
                // client is actually behind: occupancy in units of
                // worker capacity, so one "round" of hint per full
                // sweep of the current backlog. Deeper queue ⇒ ≥ hint;
                // capped so a pathological backlog cannot park clients
                // for minutes.
                let occupancy = queue.jobs.len() + queue.running;
                drop(queue);
                let workers = self.config.eval_workers.max(1);
                let rounds = occupancy.div_ceil(workers).max(1) as u64;
                let base = u64::from(self.config.retry_after_ms.max(1));
                let hint = (base * rounds).min(u64::from(MAX_RETRY_AFTER_MS)) as u32;
                self.counters.shed.inc();
                return Response::Shed {
                    request_id,
                    retry_after_ms: hint,
                };
            }
            let flag = queue.drain_flag.clone();
            queue.jobs.push_back(Job {
                query: canonical,
                kind,
                deadline,
                enqueued: Instant::now(),
                flag,
                slot: slot.clone(),
            });
            self.job_ready.notify_one();
        }
        match slot.wait() {
            JobOutcome::Done(response) => {
                let (served, eval_ns) = match response.served {
                    Served::Hit => (WireServed::Hit, 0),
                    Served::Coalesced => (WireServed::Coalesced, 0),
                    Served::Evaluated { mode, eval_ns, .. } => (
                        match mode {
                            EvalMode::Sequential => WireServed::EvaluatedSequential,
                            EvalMode::IntraQuery => WireServed::EvaluatedIntra,
                            EvalMode::Batch => WireServed::EvaluatedBatch,
                        },
                        eval_ns,
                    ),
                };
                Response::Result {
                    request_id,
                    served,
                    fingerprint: response.fingerprint,
                    canonical_states: response.canonical_states as u32,
                    eval_ns,
                    bits: (*response.result).clone(),
                }
            }
            JobOutcome::Deadline => {
                self.counters.deadline_replies.inc();
                Response::Deadline { request_id }
            }
            JobOutcome::Cancelled => {
                self.counters.draining_replies.inc();
                Response::Draining { request_id }
            }
        }
    }

    /// One connection's frame loop. Framing violations close the
    /// connection (a length-prefixed stream cannot resynchronize);
    /// request-level errors answer and continue.
    fn connection_loop(&self, mut stream: TcpStream, conn_id: u64) {
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
        // Request/reply roundtrips of small frames stall ~40ms per query
        // under Nagle + delayed ACK; a front door wants neither.
        let _ = stream.set_nodelay(true);
        loop {
            let payload = match read_frame(&mut stream, self.config.max_frame_len) {
                Ok(payload) => payload,
                Err(FrameError::Closed) => break,
                Err(FrameError::Oversize(len)) => {
                    self.counters.malformed.inc();
                    let reply = Response::Error {
                        request_id: 0,
                        code: ErrorCode::Oversize,
                        message: format!(
                            "frame length {len} exceeds cap {}",
                            self.config.max_frame_len
                        ),
                    };
                    let _ = write_frame(&mut stream, &reply.encode());
                    break;
                }
                Err(FrameError::Io(_)) => {
                    self.counters.io_errors.inc();
                    break;
                }
            };
            let arrival = Instant::now();
            let request = match Request::decode(&payload) {
                Ok(request) => request,
                Err(err) => {
                    self.counters.malformed.inc();
                    let reply = Response::Error {
                        request_id: 0,
                        code: err.code(),
                        message: err.to_string(),
                    };
                    let _ = write_frame(&mut stream, &reply.encode());
                    break;
                }
            };
            let reply = match request {
                Request::Ping { request_id } => Response::Pong { request_id },
                Request::Stats { request_id } => Response::Stats {
                    request_id,
                    counters: self.stats_counters(),
                },
                Request::Query {
                    request_id,
                    kind,
                    deadline_ms,
                    query,
                } => self.handle_query(request_id, kind, deadline_ms, &query, arrival),
                Request::Delta {
                    request_id,
                    add,
                    remove,
                } => self.handle_delta(request_id, &add, &remove),
            };
            if write_frame(&mut stream, &reply.encode()).is_err() {
                self.counters.io_errors.inc();
                break;
            }
        }
        self.conns.lock().unwrap().remove(&conn_id);
        self.counters.active.sub(1);
    }

    /// Acceptor loop: poll the non-blocking listener until shutdown.
    fn acceptor_loop(self: &Arc<Self>, listener: TcpListener) {
        let mut next_conn_id: u64 = 0;
        while !self.stop_accept.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.counters.accepted.inc();
                    // Accepted sockets can inherit the listener's
                    // non-blocking mode; the frame loop wants blocking
                    // reads bounded by timeouts.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let active = self.counters.active.get();
                    if active as usize >= self.config.max_connections {
                        self.counters.refused.inc();
                        let mut stream = stream;
                        let reply = Response::Error {
                            request_id: 0,
                            code: ErrorCode::Busy,
                            message: "connection limit reached".to_owned(),
                        };
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
                        let _ = write_frame(&mut stream, &reply.encode());
                        continue;
                    }
                    self.counters.active.add(1);
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    if let Ok(clone) = stream.try_clone() {
                        self.conns.lock().unwrap().insert(conn_id, clone);
                    }
                    let shared = Arc::clone(self);
                    thread::Builder::new()
                        .name(format!("pathlearn-conn-{conn_id}"))
                        .spawn(move || shared.connection_loop(stream, conn_id))
                        .expect("spawn connection thread");
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    /// Drains the admission queue: stop admissions, trip the current
    /// generation flag, wait (bounded by `drain_grace`) for idle. The
    /// caller decides what happens next (rebuild or shutdown) and when
    /// admissions resume.
    fn drain(&self) {
        let deadline;
        {
            let mut queue = self.queue.lock().unwrap();
            queue.draining = true;
            queue.drain_flag.store(true, Ordering::SeqCst);
            deadline = Instant::now() + self.config.drain_grace;
            self.job_ready.notify_all();
            while !(queue.jobs.is_empty() && queue.running == 0) {
                let now = Instant::now();
                if now >= deadline {
                    // Grace expired: the tripped flag bounds the
                    // stragglers to one more BFS level; proceed. The
                    // service's epoch guard keeps any old-graph result
                    // out of the post-rebuild cache.
                    break;
                }
                let (guard, _) = self.idle.wait_timeout(queue, deadline - now).unwrap();
                queue = guard;
            }
        }
    }
}

/// A listening front door. Dropping the server (or calling
/// [`Server::shutdown`]) drains gracefully: in-flight queries get their
/// reply (or a retryable `DRAINING`), then worker and acceptor threads
/// join and lingering sockets are force-closed.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port)
    /// and starts the acceptor and eval workers over `service`.
    pub fn bind<A: ToSocketAddrs>(
        service: QueryService,
        addr: A,
        config: NetConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let telemetry = service.telemetry();
        let counters = NetCounters::register(&telemetry.registry);
        let shared = Arc::new(Shared {
            service,
            config: config.clone(),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                running: 0,
                draining: false,
                shutdown: false,
                drain_flag: Arc::new(AtomicBool::new(false)),
            }),
            job_ready: Condvar::new(),
            idle: Condvar::new(),
            telemetry,
            counters,
            registry: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            stop_accept: AtomicBool::new(false),
        });
        let mut workers = Vec::with_capacity(config.eval_workers.max(1));
        for worker_id in 0..config.eval_workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("pathlearn-eval-{worker_id}"))
                    .spawn(move || shared.worker_loop())?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pathlearn-accept".to_owned())
                .spawn(move || shared.acceptor_loop(listener))?
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying query service (shared with the front door).
    pub fn service(&self) -> &QueryService {
        &self.shared.service
    }

    /// Network-layer counters snapshot.
    pub fn net_stats(&self) -> NetStats {
        self.shared.net_stats()
    }

    /// Every exposed counter, namespaced — identical to a `STATS`
    /// frame's body: the sorted snapshot of the unified registry.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.shared.stats_counters()
    }

    /// Builds the content sources for an [`crate::AdminServer`] over
    /// this front door: `/metrics` renders the unified registry as
    /// Prometheus text (queue-depth gauge refreshed first), `/healthz`
    /// reports `serving`/`draining` plus queue, connection and WAL
    /// detail lines, and `/slow` renders the slow-query log. The
    /// closures hold the server's shared state by `Arc`, so they stay
    /// valid after [`Server::shutdown`] — a stopped server reports
    /// `draining`, exactly what a deployment health check should see.
    pub fn admin_sources(&self) -> AdminSources {
        let metrics_shared = Arc::clone(&self.shared);
        let health_shared = Arc::clone(&self.shared);
        let slow_shared = Arc::clone(&self.shared);
        AdminSources {
            metrics: Box::new(move || {
                metrics_shared.refresh_queue_depth();
                metrics_shared.telemetry.registry.render_prometheus()
            }),
            health: Box::new(move || {
                let (draining, depth, running) = {
                    let queue = health_shared.queue.lock().unwrap();
                    (
                        queue.draining || queue.shutdown,
                        queue.jobs.len(),
                        queue.running,
                    )
                };
                let mut detail = vec![
                    ("queue_depth".to_owned(), depth.to_string()),
                    ("running".to_owned(), running.to_string()),
                    (
                        "active_connections".to_owned(),
                        health_shared.counters.active.get().to_string(),
                    ),
                ];
                match health_shared.service.persistence_status() {
                    Some((wal_records, checkpoint_threshold)) => {
                        detail.push(("durable".to_owned(), "true".to_owned()));
                        detail.push(("wal_records".to_owned(), wal_records.to_string()));
                        detail.push((
                            "checkpoint_threshold".to_owned(),
                            checkpoint_threshold.to_string(),
                        ));
                    }
                    None => detail.push(("durable".to_owned(), "false".to_owned())),
                }
                HealthReport {
                    phase: if draining {
                        HealthPhase::Draining
                    } else {
                        HealthPhase::Serving
                    },
                    detail,
                }
            }),
            slow: Box::new(move || slow_shared.telemetry.traces.render_slow()),
        }
    }

    /// Swaps the served graph behind a graceful drain: admissions
    /// answer `DRAINING`, queued and in-flight work is cancelled at its
    /// next BFS-level check (within [`NetConfig::drain_grace`]), the
    /// service swaps graph + epoch + cache, the fingerprint registry is
    /// cleared, and admissions resume on a fresh drain generation. A
    /// frame admitted after this returns can only see new-graph
    /// results.
    pub fn rebuild_graph(&self, graph: GraphDb) {
        self.shared.drain();
        self.shared.service.rebuild_graph(graph);
        self.shared.registry.lock().unwrap().clear();
        let mut queue = self.shared.queue.lock().unwrap();
        queue.drain_flag = Arc::new(AtomicBool::new(false));
        queue.draining = false;
    }

    /// Applies an edge-delta batch to the served graph **without
    /// draining** — the non-disruptive counterpart of
    /// [`Server::rebuild_graph`]: concurrent queries keep flowing, only
    /// the touched labels' cache entries are invalidated, and the
    /// fingerprint registry is retained (node set and alphabet are
    /// frozen under the delta contract). Equivalent to a `DELTA` frame
    /// arriving on a connection, minus the name resolution — including
    /// durability: with persistence attached to the service, the batch
    /// is WAL-logged and fsynced before it applies.
    pub fn apply_delta(
        &self,
        add: &[(NodeId, Symbol, NodeId)],
        remove: &[(NodeId, Symbol, NodeId)],
    ) -> Result<DeltaApplied, DeltaCommitError> {
        self.shared.service.apply_delta_durable(add, remove)
    }

    /// Graceful stop: drain, join workers and acceptor, force-close
    /// lingering connections. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.shared.stop_accept.store(true, Ordering::SeqCst);
        self.shared.drain();
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Unblock connection threads parked in reads; they observe the
        // dead socket and exit on their own.
        let conns = self.shared.conns.lock().unwrap();
        for stream in conns.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A blocking protocol client: one frame out, one frame in. Used by the
/// CLI, the bench harness, and the test suites (which also hit the
/// server with raw bytes via [`Client::send_raw`]).
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    /// Response frames carry whole node bitsets, so the client cap is
    /// much larger than the server's request cap.
    max_frame_len: u32,
}

impl Client {
    /// Connects to a front door.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 1,
            max_frame_len: 256 * 1024 * 1024,
        })
    }

    /// Sets both socket timeouts (handy in tests asserting liveness).
    pub fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one request frame and reads one response frame, asserting
    /// the echoed request id matches.
    pub fn roundtrip(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let response = self.read_response()?;
        let sent_id = match request {
            Request::Query { request_id, .. }
            | Request::Stats { request_id }
            | Request::Ping { request_id }
            | Request::Delta { request_id, .. } => *request_id,
        };
        let got_id = match &response {
            Response::Result { request_id, .. }
            | Response::Shed { request_id, .. }
            | Response::Deadline { request_id }
            | Response::Draining { request_id }
            | Response::Error { request_id, .. }
            | Response::Stats { request_id, .. }
            | Response::Pong { request_id }
            | Response::DeltaApplied { request_id, .. } => *request_id,
        };
        // Error frames for framing violations carry request id 0 (the
        // server could not decode the offender).
        if got_id != sent_id && got_id != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {got_id} does not echo request id {sent_id}"),
            ));
        }
        Ok(response)
    }

    /// Monadic text query under a deadline budget
    /// ([`NO_DEADLINE_MS`] = unbounded).
    pub fn query_text(&mut self, expr: &str, deadline_ms: u32) -> io::Result<Response> {
        let request_id = self.fresh_id();
        self.roundtrip(&Request::Query {
            request_id,
            kind: WireKind::Monadic,
            deadline_ms,
            query: QueryRef::Text(expr.to_owned()),
        })
    }

    /// Binary-semantics text query from `source`.
    pub fn query_text_binary(
        &mut self,
        expr: &str,
        source: u32,
        deadline_ms: u32,
    ) -> io::Result<Response> {
        let request_id = self.fresh_id();
        self.roundtrip(&Request::Query {
            request_id,
            kind: WireKind::Binary(source),
            deadline_ms,
            query: QueryRef::Text(expr.to_owned()),
        })
    }

    /// Monadic query by a fingerprint previously established by text.
    pub fn query_fingerprint(
        &mut self,
        fingerprint: u64,
        deadline_ms: u32,
    ) -> io::Result<Response> {
        let request_id = self.fresh_id();
        self.roundtrip(&Request::Query {
            request_id,
            kind: WireKind::Monadic,
            deadline_ms,
            query: QueryRef::Fingerprint(fingerprint),
        })
    }

    /// Fetches the server's namespaced counters.
    pub fn stats(&mut self) -> io::Result<Vec<(String, u64)>> {
        let request_id = self.fresh_id();
        match self.roundtrip(&Request::Stats { request_id })? {
            Response::Stats { counters, .. } => Ok(counters),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected STATS reply, got {other:?}"),
            )),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        let request_id = self.fresh_id();
        match self.roundtrip(&Request::Ping { request_id })? {
            Response::Pong { .. } => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected PONG, got {other:?}"),
            )),
        }
    }

    /// Sends an edge-delta batch: removals applied before additions,
    /// names resolved server-side. On success the reply is
    /// [`Response::DeltaApplied`]; an unknown node or label name comes
    /// back as [`ErrorCode::BadDelta`] without disturbing the served
    /// graph.
    pub fn apply_delta(&mut self, add: &[WireEdge], remove: &[WireEdge]) -> io::Result<Response> {
        let request_id = self.fresh_id();
        self.roundtrip(&Request::Delta {
            request_id,
            add: add.to_vec(),
            remove: remove.to_vec(),
        })
    }

    /// Writes raw bytes with no framing — the fault-injection suites
    /// use this to send garbage, truncated frames, and oversized length
    /// prefixes.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        use io::Write as _;
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one response frame (for use after [`Client::send_raw`]).
    pub fn read_response(&mut self) -> io::Result<Response> {
        let payload = match read_frame(&mut self.stream, self.max_frame_len) {
            Ok(payload) => payload,
            Err(FrameError::Closed) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            }
            Err(FrameError::Oversize(len)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response frame length {len} exceeds client cap"),
                ))
            }
            Err(FrameError::Io(err)) => return Err(err),
        };
        Response::decode(&payload)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
    }

    /// Half-closes the write side (mid-query disconnect fault).
    pub fn shutdown_write(&self) -> io::Result<()> {
        self.stream.shutdown(Shutdown::Write)
    }
}
