//! Write-ahead log + snapshot persistence for the serving layer.
//!
//! PR 8 made the served graph writable ([`crate::service::QueryService::apply_delta`])
//! but every accepted delta evaporated on process exit. This module is
//! the durability half of that contract:
//!
//! * [`Wal`] — an append-only log of delta batches. Every record is
//!   length-prefixed and carries its own FNV-1a digest, and
//!   [`Wal::append`] fsyncs **before** returning — so by the time a
//!   `DELTA_APPLIED` response leaves the server, the batch is on disk.
//! * [`Persistence`] — a data directory holding one graph snapshot
//!   (`graph.snap`, the versioned binary format of
//!   `pathlearn_graph::graph::snapshot`) plus one WAL (`wal.log`).
//!   [`Persistence::recover`] loads the snapshot, replays the WAL in
//!   order, and hands back a graph bit-identical to the one the
//!   crashed process was serving.
//!
//! ## WAL record format (all integers little-endian)
//!
//! ```text
//! payload_len   u32   byte length of the payload that follows the digest
//! digest        u64   FNV-1a over the payload bytes
//! payload:
//!   n_add       u32
//!   n_remove    u32
//!   adds        n_add    × (u32 src, u32 sym, u32 dst)
//!   removes     n_remove × (u32 src, u32 sym, u32 dst)
//! ```
//!
//! ## Torn tails vs corruption
//!
//! A crash can tear the **final** record: its declared extent crosses
//! end-of-file, or its digest mismatches and the record is the last
//! thing in the file. Both are expected artifacts of dying mid-append,
//! so [`Wal::open`] truncates the tail away and reports how many bytes
//! were dropped — the batch was never acknowledged, so dropping it is
//! correct. A digest mismatch (or structural lie) anywhere **before**
//! the final record means the log was damaged after being written;
//! that is [`WalError::Corrupt`], a fatal diagnostic — recovery never
//! guesses its way past damaged acknowledged writes, because the one
//! thing a durable store must not do is serve a wrong answer.
//!
//! ## Checkpointing
//!
//! Replay cost grows with the WAL, so once the log holds more than a
//! configurable number of records, [`Persistence::maybe_checkpoint`]
//! writes a fresh snapshot (atomically: temp file + rename, see
//! `GraphDb::save_snapshot`) and then truncates the WAL. The ordering
//! makes every crash point safe: if the process dies after the
//! snapshot lands but before the truncate, the next recovery replays
//! the full WAL onto a snapshot that already contains those batches —
//! and since a batch is applied as `(G ∖ remove) ∪ add`, re-applying
//! it is idempotent, so the result is unchanged.

use pathlearn_automata::Symbol;
use pathlearn_graph::{DeltaError, GraphDb, NodeId, SnapshotError};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One logged edge: `(src, label, dst)` in resolved id space.
pub type WalEdge = (NodeId, Symbol, NodeId);

/// One logged batch: `(add, remove)` — the exact arguments of an
/// acknowledged [`crate::service::QueryService::apply_delta`] call.
pub type WalBatch = (Vec<WalEdge>, Vec<WalEdge>);

/// File name of the graph snapshot inside a data directory.
pub const SNAPSHOT_FILE: &str = "graph.snap";
/// File name of the write-ahead log inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// Fixed per-record header: `u32` payload length + `u64` digest.
const RECORD_HEADER: usize = 12;
/// Payload prefix: `u32 n_add` + `u32 n_remove`.
const PAYLOAD_PREFIX: usize = 8;
/// Bytes per encoded edge triple.
const EDGE_BYTES: usize = 12;

/// Why the WAL could not be opened or appended.
#[derive(Debug)]
pub enum WalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// A record **before** the final one fails its digest or structural
    /// check — the log was damaged after acknowledgment, and replaying
    /// past the damage could serve wrong answers. Fatal by design.
    Corrupt {
        /// Byte offset of the damaged record.
        offset: u64,
        /// What the check found.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt { offset, detail } => {
                write!(f, "wal corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Same FNV-1a as the snapshot codec and `CanonicalQuery::fingerprint`
/// — stable across builds, unlike `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn encode_payload(add: &[WalEdge], remove: &[WalEdge]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(PAYLOAD_PREFIX + EDGE_BYTES * (add.len() + remove.len()));
    payload.extend_from_slice(&(add.len() as u32).to_le_bytes());
    payload.extend_from_slice(&(remove.len() as u32).to_le_bytes());
    for &(src, sym, dst) in add.iter().chain(remove) {
        payload.extend_from_slice(&src.to_le_bytes());
        payload.extend_from_slice(&(sym.index() as u32).to_le_bytes());
        payload.extend_from_slice(&dst.to_le_bytes());
    }
    payload
}

fn decode_payload(payload: &[u8]) -> Result<WalBatch, String> {
    let n_add = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")) as usize;
    let n_remove = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes")) as usize;
    let expected = PAYLOAD_PREFIX + EDGE_BYTES * (n_add + n_remove);
    if payload.len() != expected {
        return Err(format!(
            "payload declares {n_add}+{n_remove} edges ({expected} bytes) but holds {}",
            payload.len()
        ));
    }
    let mut edges = payload[PAYLOAD_PREFIX..]
        .chunks_exact(EDGE_BYTES)
        .map(|raw| {
            let src = u32::from_le_bytes(raw[0..4].try_into().expect("4"));
            let sym = u32::from_le_bytes(raw[4..8].try_into().expect("4"));
            let dst = u32::from_le_bytes(raw[8..12].try_into().expect("4"));
            (src, Symbol::from_index(sym as usize), dst)
        });
    let add: Vec<WalEdge> = edges.by_ref().take(n_add).collect();
    let remove: Vec<WalEdge> = edges.collect();
    Ok((add, remove))
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalOpenReport {
    /// Intact batches, in append order, ready to replay.
    pub batches: Vec<WalBatch>,
    /// Bytes of torn final record discarded (0 on a clean log).
    pub torn_bytes_dropped: u64,
}

/// An append-only, digest-checked log of delta batches.
///
/// The handle owns the open file; [`Wal::append`] does not return until
/// the record is written **and fsynced**, which is what lets the
/// serving layer acknowledge a delta as durable.
pub struct Wal {
    file: File,
    records: usize,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, validating every
    /// record. A torn final record — one whose extent crosses EOF or
    /// whose digest fails *at* EOF — is truncated away (module docs);
    /// damage anywhere earlier is [`WalError::Corrupt`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<(Wal, WalOpenReport), WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut batches = Vec::new();
        let mut pos = 0usize;
        let mut good = 0usize;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < RECORD_HEADER {
                break; // torn header
            }
            let payload_len =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
            let stored = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8"));
            let end = pos + RECORD_HEADER + payload_len;
            if end > bytes.len() {
                break; // torn body
            }
            let payload = &bytes[pos + RECORD_HEADER..end];
            let at_eof = end == bytes.len();
            if fnv1a(payload) != stored {
                if at_eof {
                    break; // torn final record: never acknowledged
                }
                return Err(WalError::Corrupt {
                    offset: pos as u64,
                    detail: "record digest mismatch before the final record".into(),
                });
            }
            // A valid digest over structurally impossible content means
            // the writer never produced it — corruption, not a tear.
            let batch = decode_payload(payload).map_err(|detail| WalError::Corrupt {
                offset: pos as u64,
                detail,
            })?;
            batches.push(batch);
            pos = end;
            good = end;
        }
        let torn = (bytes.len() - good) as u64;
        if torn > 0 {
            file.set_len(good as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        let records = batches.len();
        Ok((
            Wal { file, records },
            WalOpenReport {
                batches,
                torn_bytes_dropped: torn,
            },
        ))
    }

    /// Appends one batch and fsyncs. When this returns `Ok`, the batch
    /// survives a crash — the precondition for acknowledging it.
    pub fn append(&mut self, add: &[WalEdge], remove: &[WalEdge]) -> Result<(), WalError> {
        let payload = encode_payload(add, remove);
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(())
    }

    /// Empties the log (after a checkpoint made its records redundant).
    pub fn truncate(&mut self) -> Result<(), WalError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.records = 0;
        Ok(())
    }

    /// Records currently in the log.
    pub fn record_count(&self) -> usize {
        self.records
    }
}

/// Why recovery from a data directory failed. Every variant is a
/// diagnostic the operator must see — recovery never silently falls
/// back over damaged state that once held acknowledged writes.
#[derive(Debug)]
pub enum RecoverError {
    /// Directory creation or another filesystem operation failed.
    Io(std::io::Error),
    /// The snapshot file exists but is damaged (digest mismatch,
    /// truncation, …) — see the inner error for which check failed.
    Snapshot(SnapshotError),
    /// The WAL is damaged before its final record.
    Wal(WalError),
    /// A logged batch names a node or label the snapshot graph does
    /// not have — snapshot and WAL disagree about the graph they
    /// describe (e.g. files from different data directories mixed).
    Replay(DeltaError),
    /// First-run fallback graph loading failed (the caller's loader
    /// reported this message).
    Fallback(String),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "recovery io error: {e}"),
            RecoverError::Snapshot(e) => write!(f, "snapshot rejected: {e}"),
            RecoverError::Wal(e) => write!(f, "wal rejected: {e}"),
            RecoverError::Replay(e) => {
                write!(f, "wal replay does not fit the snapshot graph: {e}")
            }
            RecoverError::Fallback(message) => write!(f, "fallback graph load failed: {message}"),
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Io(e) => Some(e),
            RecoverError::Snapshot(e) => Some(e),
            RecoverError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> Self {
        RecoverError::Io(e)
    }
}

impl From<SnapshotError> for RecoverError {
    fn from(e: SnapshotError) -> Self {
        RecoverError::Snapshot(e)
    }
}

impl From<WalError> for RecoverError {
    fn from(e: WalError) -> Self {
        RecoverError::Wal(e)
    }
}

/// Where the recovered graph's base image came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoverySource {
    /// `graph.snap` existed and decoded.
    Snapshot,
    /// First run: the caller's fallback loader supplied the graph and a
    /// fresh snapshot was written.
    Fallback,
}

/// What [`Persistence::recover`] did, for logging and tests.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Snapshot or first-run fallback.
    pub source: RecoverySource,
    /// WAL batches replayed onto the base image.
    pub wal_records_replayed: usize,
    /// Bytes of torn final WAL record discarded.
    pub torn_bytes_dropped: u64,
    /// Whether recovery immediately checkpointed (WAL past threshold).
    pub checkpointed: bool,
}

/// The result of [`Persistence::recover`]: the graph to serve plus the
/// live persistence handle to keep logging into.
pub struct Recovered {
    /// The recovered graph — bit-identical to what the previous
    /// process was serving at its last acknowledged write.
    pub graph: GraphDb,
    /// The open snapshot+WAL pair, ready for [`Persistence::log_batch`].
    pub persistence: Persistence,
    /// What recovery found and did.
    pub report: RecoveryReport,
}

/// A data directory: one snapshot + one WAL, with checkpointing.
pub struct Persistence {
    snapshot_path: PathBuf,
    wal: Wal,
    checkpoint_threshold: usize,
}

impl Persistence {
    /// Recovers a serving graph from `dir`, creating the directory and
    /// seeding it on first run.
    ///
    /// * `graph.snap` present → strict decode (damage is fatal, with a
    ///   diagnostic — a snapshot is never "partially" loaded);
    /// * absent → `fallback()` supplies the graph (e.g. parsed from the
    ///   text format) and a fresh snapshot is written;
    /// * then the WAL replays in append order (torn tail truncated) and
    ///   the overlay is compacted, so the returned graph is a frozen
    ///   CSR;
    /// * finally, if the WAL holds more than `checkpoint_threshold`
    ///   records, recovery checkpoints immediately so the next restart
    ///   starts from a fresh image.
    pub fn recover<P, F>(
        dir: P,
        checkpoint_threshold: usize,
        fallback: F,
    ) -> Result<Recovered, RecoverError>
    where
        P: AsRef<Path>,
        F: FnOnce() -> Result<GraphDb, String>,
    {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let (mut graph, source) = if snapshot_path.exists() {
            (
                GraphDb::load_snapshot(&snapshot_path)?,
                RecoverySource::Snapshot,
            )
        } else {
            let graph = fallback().map_err(RecoverError::Fallback)?;
            graph.save_snapshot(&snapshot_path)?;
            (graph, RecoverySource::Fallback)
        };
        let (wal, open_report) = Wal::open(dir.join(WAL_FILE))?;
        let replayed = open_report.batches.len();
        for (add, remove) in &open_report.batches {
            graph = graph
                .with_delta(add, remove)
                .map_err(RecoverError::Replay)?;
        }
        if graph.has_delta() {
            graph = graph.compact();
        }
        let mut persistence = Persistence {
            snapshot_path,
            wal,
            checkpoint_threshold,
        };
        let checkpointed = persistence.wal.record_count() > persistence.checkpoint_threshold;
        if checkpointed {
            persistence.checkpoint(&graph)?;
        }
        Ok(Recovered {
            graph,
            persistence,
            report: RecoveryReport {
                source,
                wal_records_replayed: replayed,
                torn_bytes_dropped: open_report.torn_bytes_dropped,
                checkpointed,
            },
        })
    }

    /// Appends one batch to the WAL and fsyncs — call **before**
    /// applying the batch to the served graph, and only acknowledge
    /// the write after this returns `Ok`.
    pub fn log_batch(&mut self, add: &[WalEdge], remove: &[WalEdge]) -> Result<(), WalError> {
        self.wal.append(add, remove)
    }

    /// Checkpoints if the WAL has grown past the record threshold:
    /// writes `graph` as a fresh snapshot (atomic rename), then
    /// truncates the WAL. Returns whether a checkpoint happened.
    ///
    /// Crash-safe at every interleaving: dying between snapshot and
    /// truncate merely makes the next recovery replay batches the
    /// snapshot already contains, and `(G ∖ remove) ∪ add` batches are
    /// idempotent under re-application.
    pub fn maybe_checkpoint(&mut self, graph: &GraphDb) -> Result<bool, RecoverError> {
        if self.wal.record_count() <= self.checkpoint_threshold {
            return Ok(false);
        }
        self.checkpoint(graph)?;
        Ok(true)
    }

    /// Unconditionally writes `graph` as the snapshot and truncates the
    /// WAL (see [`Persistence::maybe_checkpoint`] for the ordering
    /// argument).
    pub fn checkpoint(&mut self, graph: &GraphDb) -> Result<(), RecoverError> {
        graph.save_snapshot(&self.snapshot_path)?;
        self.wal.truncate()?;
        Ok(())
    }

    /// Records currently waiting in the WAL.
    pub fn wal_records(&self) -> usize {
        self.wal.record_count()
    }

    /// The checkpoint record threshold this handle was opened with.
    pub fn checkpoint_threshold(&self) -> usize {
        self.checkpoint_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_graph::GraphBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pathlearn-wal-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn tiny_graph() -> GraphDb {
        let mut builder = GraphBuilder::new();
        builder.add_edge("x", "a", "y");
        builder.add_edge("y", "b", "z");
        builder.build()
    }

    #[test]
    fn append_then_open_replays_in_order() {
        let dir = scratch_dir("replay");
        let path = dir.join(WAL_FILE);
        let a = Symbol::from_index(0);
        {
            let (mut wal, report) = Wal::open(&path).expect("open fresh");
            assert_eq!(report.batches.len(), 0);
            wal.append(&[(0, a, 1)], &[]).expect("append 1");
            wal.append(&[(1, a, 2)], &[(0, a, 1)]).expect("append 2");
            assert_eq!(wal.record_count(), 2);
        }
        let (wal, report) = Wal::open(&path).expect("reopen");
        assert_eq!(wal.record_count(), 2);
        assert_eq!(report.torn_bytes_dropped, 0);
        assert_eq!(report.batches[0], (vec![(0, a, 1)], vec![]));
        assert_eq!(report.batches[1], (vec![(1, a, 2)], vec![(0, a, 1)]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = scratch_dir("torn");
        let path = dir.join(WAL_FILE);
        let a = Symbol::from_index(0);
        {
            let (mut wal, _) = Wal::open(&path).expect("open");
            wal.append(&[(0, a, 1)], &[]).expect("append 1");
            wal.append(&[(1, a, 2)], &[]).expect("append 2");
        }
        let full = std::fs::read(&path).expect("read");
        // Chop mid-way through the second record: a mid-append crash.
        let cut = full.len() - 5;
        std::fs::write(&path, &full[..cut]).expect("tear");
        let (wal, report) = Wal::open(&path).expect("torn tail must open");
        assert_eq!(wal.record_count(), 1, "only the intact record survives");
        assert_eq!(report.torn_bytes_dropped as usize, cut - (full.len() / 2));
        // The file itself was truncated back to the good prefix.
        assert_eq!(std::fs::read(&path).expect("reread").len(), full.len() / 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_damage_is_fatal_corruption() {
        let dir = scratch_dir("corrupt");
        let path = dir.join(WAL_FILE);
        let a = Symbol::from_index(0);
        {
            let (mut wal, _) = Wal::open(&path).expect("open");
            wal.append(&[(0, a, 1)], &[]).expect("append 1");
            wal.append(&[(1, a, 2)], &[]).expect("append 2");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a payload bit inside the FIRST record.
        bytes[RECORD_HEADER + 2] ^= 0x01;
        std::fs::write(&path, &bytes).expect("damage");
        match Wal::open(&path) {
            Err(WalError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(_) => panic!("mid-file damage must be fatal, not openable"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_final_record_digest_is_a_tear() {
        let dir = scratch_dir("tail-digest");
        let path = dir.join(WAL_FILE);
        let a = Symbol::from_index(0);
        {
            let (mut wal, _) = Wal::open(&path).expect("open");
            wal.append(&[(0, a, 1)], &[]).expect("append 1");
            wal.append(&[(1, a, 2)], &[]).expect("append 2");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("damage tail");
        let (wal, report) = Wal::open(&path).expect("tail damage is a tear");
        assert_eq!(wal.record_count(), 1);
        assert!(report.torn_bytes_dropped > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_first_run_seeds_snapshot_and_replays_later() {
        let dir = scratch_dir("recover");
        let base = tiny_graph();
        let a = base.alphabet().symbol("a").unwrap();
        let (x, z) = (base.node_id("x").unwrap(), base.node_id("z").unwrap());

        // First run: fallback supplies the graph, snapshot is seeded.
        let recovered = {
            let base = base.clone();
            Persistence::recover(&dir, 1024, move || Ok(base)).expect("first-run recover")
        };
        assert_eq!(recovered.report.source, RecoverySource::Fallback);
        assert_eq!(recovered.report.wal_records_replayed, 0);
        assert!(dir.join(SNAPSHOT_FILE).exists());
        let mut persistence = recovered.persistence;
        persistence.log_batch(&[(x, a, z)], &[]).expect("log");
        drop(persistence);

        // Second run: snapshot + WAL replay reproduce the edge.
        let recovered = Persistence::recover(&dir, 1024, || Err("fallback must not run".into()))
            .expect("second recover");
        assert_eq!(recovered.report.source, RecoverySource::Snapshot);
        assert_eq!(recovered.report.wal_records_replayed, 1);
        let expected = base.with_delta(&[(x, a, z)], &[]).unwrap().compact();
        assert_eq!(
            recovered.graph.snapshot_bytes(),
            expected.snapshot_bytes(),
            "recovered graph must be bit-identical to the patched base"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_threshold_folds_wal_into_snapshot() {
        let dir = scratch_dir("checkpoint");
        let base = tiny_graph();
        let a = base.alphabet().symbol("a").unwrap();
        let recovered = {
            let base = base.clone();
            // Threshold 2: the third logged record pushes past it.
            Persistence::recover(&dir, 2, move || Ok(base)).expect("recover")
        };
        let mut persistence = recovered.persistence;
        let mut graph = recovered.graph;
        for i in 0..3u32 {
            let add = [(i % 3, a, (i + 1) % 3)];
            persistence.log_batch(&add, &[]).expect("log");
            graph = graph.with_delta(&add, &[]).unwrap();
            let did = persistence
                .maybe_checkpoint(&graph.compact())
                .expect("maybe");
            assert_eq!(did, i == 2, "only the past-threshold append checkpoints");
        }
        assert_eq!(persistence.wal_records(), 0, "checkpoint truncates the WAL");
        drop(persistence);
        let recovered =
            Persistence::recover(&dir, 2, || Err("no fallback".into())).expect("re-recover");
        assert_eq!(recovered.report.wal_records_replayed, 0);
        assert_eq!(
            recovered.graph.snapshot_bytes(),
            graph.compact().snapshot_bytes()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_rejects_a_corrupted_snapshot_with_a_diagnostic() {
        let dir = scratch_dir("bad-snap");
        let base = tiny_graph();
        {
            let base = base.clone();
            Persistence::recover(&dir, 1024, move || Ok(base)).expect("seed");
        }
        let snap = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&snap).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&snap, &bytes).expect("corrupt");
        match Persistence::recover(&dir, 1024, || Err("no fallback".into())) {
            Err(RecoverError::Snapshot(_)) => {}
            other => panic!(
                "corrupted snapshot must be rejected, got {:?}",
                other.map(|_| ())
            ),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
