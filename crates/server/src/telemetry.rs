//! Unified telemetry: the metrics registry, per-query trace spans, and
//! the text admin surface.
//!
//! Everything the serving stack observes about itself flows through
//! this module:
//!
//! * **Metrics** — [`Counter`] (sharded atomics, padded a cache line
//!   apart so concurrent increments from many threads do not false-
//!   share), [`Gauge`] (a plain atomic level), and [`Histogram`]
//!   (fixed log₂ buckets — recording is two relaxed atomic adds, no
//!   lock, no allocation). Handles are cheap clones of an `Arc`;
//!   mutation sites own a handle and never look anything up by name.
//! * **Registry** — [`MetricsRegistry`] maps stable dotted names
//!   (`serve.*`, `cache.*`, `net.*`, `wal.*`, `eval.*`) to metrics.
//!   [`MetricsRegistry::snapshot`] flattens every metric to sorted
//!   `(name, u64)` pairs — the `STATS` wire frame body — deriving
//!   `{name}_count` / `{name}_p50_{unit}` / `{name}_p99_{unit}` keys
//!   from histograms so the legacy `net.latency_p50_ns` /
//!   `net.latency_p99_ns` counters keep their exact names.
//!   [`MetricsRegistry::render_prometheus`] is the `/metrics` text
//!   exposition.
//! * **Traces** — [`QueryTrace`] is one query's life: wall-clock spans
//!   ([`TraceBuilder::span`]: cache_probe → plan → eval → publish),
//!   admission-queue wait, per-BFS-level samples from
//!   [`pathlearn_graph::observer`], and the outcome the client saw.
//!   Traces land in a lock-striped ring ([`TraceSink`]) plus a
//!   threshold-gated slow-query log.
//! * **Admin surface** — [`AdminServer`] is a minimal HTTP/1.0
//!   responder (stdlib TCP, same timeout/cap idioms as [`crate::net`])
//!   serving `/metrics`, `/healthz` and `/slow` from closures installed
//!   via [`AdminServer::set_sources`]; until sources are installed it
//!   answers `503 recovering`, which is exactly the readiness gate a
//!   `serve --data-dir` deployment wants while the WAL replays.
//!
//! ## Quantiles
//!
//! [`Histogram::quantile`] uses the same nearest-rank rule the old
//! `LatencyRing` used (`⌈n·p/100⌉` in 1-based ranks), computed by
//! walking bucket counts — so a partially-filled history is handled by
//! construction: only recorded samples have bucket counts, there are no
//! "unwritten slots" to misread. The returned value is the matching
//! bucket's inclusive upper bound, i.e. quantiles are conservative
//! (within 2× for log₂ buckets), which is the right trade for a
//! lock-free hot path.

use pathlearn_graph::observer::LevelSample;
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------

/// Shards per counter: enough that the worker/client thread counts the
/// serving stack actually runs spread without false sharing, small
/// enough that reading stays a trivial sum.
const COUNTER_SHARDS: usize = 8;

/// One cache line per shard so neighboring shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a stable shard slot round-robined at first use.
    static THREAD_SLOT: usize =
        NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

/// A monotonically increasing counter. Cloning shares the underlying
/// shards; increments are one relaxed atomic add on the calling
/// thread's home shard.
#[derive(Clone, Default)]
pub struct Counter {
    shards: Arc<[PaddedCell; COUNTER_SHARDS]>,
}

impl Counter {
    /// A fresh zeroed counter (standalone — registering is optional).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let slot = THREAD_SLOT.with(|slot| *slot);
        self.shards[slot].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total (sum over shards).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|cell| cell.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A settable level (queue depth, resident bytes, …). One atomic.
#[derive(Clone, Default, Debug)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the level.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket count of [`Histogram`]: bucket 0 holds the value 0, bucket
/// `i ≥ 1` holds `2^(i-1) ..= 2^i - 1`, so 65 buckets cover all of
/// `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// A fixed-bucket log₂ histogram. Recording is two relaxed atomic adds;
/// there is no lock anywhere, which is what lets it replace the
/// mutex-guarded `LatencyRing` on the request hot path.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `value` falls into.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of bucket `index` (`2^index - 1`,
    /// saturating to `u64::MAX` for the last bucket).
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.inner.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.inner
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile (`p` in percent): walks the bucket counts
    /// to the 1-based rank `⌈n·p/100⌉` and returns that bucket's
    /// inclusive upper bound. An empty histogram answers 0, and only
    /// recorded samples participate — a partially-filled history needs
    /// no special casing (the `LatencyRing` cold-start fix, folded in
    /// by construction).
    pub fn quantile(&self, p: u32) -> u64 {
        let counts = self.bucket_counts();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0;
        }
        let rank = (n * u64::from(p)).div_ceil(100).clamp(1, n);
        let mut seen = 0u64;
        for (index, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper_bound(index);
            }
        }
        Self::bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram {
        histogram: Histogram,
        /// Unit suffix for derived quantile keys (`_p50_{unit}`), e.g.
        /// `"ns"` — how `net.latency` reproduces the legacy
        /// `net.latency_p50_ns` snapshot key.
        unit: &'static str,
    },
}

/// Name → metric map behind every exposition. Registration is
/// idempotent: asking for a name that exists returns the existing
/// handle, so independent subsystems can share a metric by name.
/// Registering a name under a *different* metric kind panics — that is
/// a wiring bug, not a runtime condition.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) a counter under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.adopt_counter(name, Counter::new())
    }

    /// Registers a caller-created counter under `name` (keeps the
    /// existing one if the name is taken) and returns the live handle.
    pub fn adopt_counter(&self, name: &str, counter: Counter) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_owned())
            .or_insert(Metric::Counter(counter))
        {
            Metric::Counter(counter) => counter.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a gauge under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(gauge) => gauge.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a histogram under `name`; `unit` names
    /// the derived quantile keys (`{name}_p50_{unit}`).
    pub fn histogram(&self, name: &str, unit: &'static str) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram {
                histogram: Histogram::new(),
                unit,
            }) {
            Metric::Histogram { histogram, .. } => histogram.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Flattens every metric to `(name, value)` pairs, **sorted by
    /// key** — the deterministic `STATS` frame body. Histograms emit
    /// `{name}_count`, `{name}_p50_{unit}` and `{name}_p99_{unit}`.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let metrics = self.metrics.lock().unwrap();
        let mut out = Vec::with_capacity(metrics.len() + 8);
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(counter) => out.push((name.clone(), counter.get())),
                Metric::Gauge(gauge) => out.push((name.clone(), gauge.get())),
                Metric::Histogram { histogram, unit } => {
                    out.push((format!("{name}_count"), histogram.count()));
                    out.push((format!("{name}_p50_{unit}"), histogram.quantile(50)));
                    out.push((format!("{name}_p99_{unit}"), histogram.quantile(99)));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Prometheus-style text exposition: `# TYPE` lines, dotted names
    /// sanitized to underscores, histograms as cumulative
    /// `_bucket{le="…"}` series plus `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.replace(['.', '-'], "_")
        }
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::with_capacity(4096);
        for (name, metric) in metrics.iter() {
            let flat = sanitize(name);
            match metric {
                Metric::Counter(counter) => {
                    out.push_str(&format!(
                        "# TYPE {flat} counter\n{flat} {}\n",
                        counter.get()
                    ));
                }
                Metric::Gauge(gauge) => {
                    out.push_str(&format!("# TYPE {flat} gauge\n{flat} {}\n", gauge.get()));
                }
                Metric::Histogram { histogram, unit } => {
                    let series = format!("{flat}_{unit}");
                    let counts = histogram.bucket_counts();
                    let last = counts.iter().rposition(|&count| count > 0).unwrap_or(0);
                    out.push_str(&format!("# TYPE {series} histogram\n"));
                    let mut cumulative = 0u64;
                    for (index, &count) in counts.iter().enumerate().take(last + 1) {
                        cumulative += count;
                        out.push_str(&format!(
                            "{series}_bucket{{le=\"{}\"}} {cumulative}\n",
                            Histogram::bucket_upper_bound(index)
                        ));
                    }
                    let total: u64 = counts.iter().sum();
                    out.push_str(&format!("{series}_bucket{{le=\"+Inf\"}} {total}\n"));
                    out.push_str(&format!("{series}_sum {}\n", histogram.sum()));
                    out.push_str(&format!("{series}_count {total}\n"));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------

/// One wall-clock phase of a query's life, as an offset from the
/// trace's start — offsets are monotonic by construction because
/// [`TraceBuilder::span`] closes each span before the next opens.
#[derive(Clone, Copy, Debug)]
pub struct TraceSpan {
    /// Phase name (`"canonicalize"`, `"plan"`, `"cache_probe"`,
    /// `"eval"`, `"publish"`, …).
    pub name: &'static str,
    /// Nanoseconds from trace start to span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// One query's recorded life through [`crate::QueryService`].
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Canonical query fingerprint.
    pub fingerprint: u64,
    /// Submission kind: `"monadic"`, `"binary"` or `"batch"`.
    pub kind: &'static str,
    /// How it was served: `"hit"`, `"coalesced"`, `"evaluated"`,
    /// `"deadline"`, `"cancelled"`.
    pub outcome: &'static str,
    /// Evaluation mode (`"sequential"` / `"intra"` / `"batch"`; `"-"`
    /// when nothing was evaluated).
    pub mode: &'static str,
    /// Planner strategy actually run (`"-"` when nothing was
    /// evaluated).
    pub strategy: &'static str,
    /// Time spent in the admission queue before evaluation began (0
    /// for in-process callers).
    pub queue_wait_ns: u64,
    /// Recorded phases, in order, offsets monotonic.
    pub spans: Vec<TraceSpan>,
    /// Per-BFS-level samples from [`pathlearn_graph::observer`]
    /// (empty for hits, coalesced waits and batch fan-out).
    pub levels: Vec<LevelSample>,
    /// Whole-trace wall time in nanoseconds.
    pub total_ns: u64,
    /// Popcount of the answer the client saw.
    pub result_bits: u64,
    /// Canonical DFA state count.
    pub canonical_states: u32,
}

impl QueryTrace {
    /// One human-readable block for the `/slow` admin page.
    pub fn render(&self, out: &mut String) {
        out.push_str(&format!(
            "query {:016x} kind={} outcome={} mode={} strategy={} |Q|={} bits={} total={}us queue_wait={}us\n",
            self.fingerprint,
            self.kind,
            self.outcome,
            self.mode,
            self.strategy,
            self.canonical_states,
            self.result_bits,
            self.total_ns / 1_000,
            self.queue_wait_ns / 1_000,
        ));
        for span in &self.spans {
            out.push_str(&format!(
                "  span {:<12} +{}us {}us\n",
                span.name,
                span.start_ns / 1_000,
                span.dur_ns / 1_000
            ));
        }
        for level in &self.levels {
            out.push_str(&format!(
                "  level {:>3} frontier={} tasks={} masked={} {}us\n",
                level.level,
                level.frontier,
                level.tasks,
                level.masked_tasks,
                level.nanos / 1_000
            ));
        }
    }
}

/// Builds a [`QueryTrace`] incrementally around the serving code path.
/// Cheap: one `Instant` plus a small spans vector.
pub struct TraceBuilder {
    started: Instant,
    fingerprint: u64,
    kind: &'static str,
    queue_wait_ns: u64,
    spans: Vec<TraceSpan>,
}

impl TraceBuilder {
    /// Starts the trace clock.
    pub fn new(fingerprint: u64, kind: &'static str, queue_wait_ns: u64) -> Self {
        TraceBuilder {
            started: Instant::now(),
            fingerprint,
            kind,
            queue_wait_ns,
            spans: Vec::with_capacity(4),
        }
    }

    /// Updates the fingerprint (it is only known after canonicalize).
    pub fn set_fingerprint(&mut self, fingerprint: u64) {
        self.fingerprint = fingerprint;
    }

    /// Marks a span's start for [`TraceBuilder::span_end`] — the
    /// explicit twin of [`TraceBuilder::span`] for call sites where a
    /// closure cannot borrow the builder (e.g. the builder is threaded
    /// into the measured code itself).
    pub fn span_begin(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Closes a span opened with [`TraceBuilder::span_begin`]. The
    /// start offset is clamped to the previous span's end so recorded
    /// offsets stay monotonic and non-overlapping even when spans were
    /// opened out of order.
    pub fn span_end(&mut self, name: &'static str, begin_ns: u64) {
        let now = self.started.elapsed().as_nanos() as u64;
        let floor = self
            .spans
            .last()
            .map(|span| span.start_ns + span.dur_ns)
            .unwrap_or(0);
        let start_ns = begin_ns.max(floor).min(now);
        self.spans.push(TraceSpan {
            name,
            start_ns,
            dur_ns: now.saturating_sub(start_ns),
        });
    }

    /// Runs `f` as a named span; spans nest sequentially, never
    /// overlapping, so offsets come out monotonic.
    pub fn span<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start_ns = self.started.elapsed().as_nanos() as u64;
        let result = f();
        let end_ns = self.started.elapsed().as_nanos() as u64;
        self.spans.push(TraceSpan {
            name,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
        });
        result
    }

    /// Seals the trace with its outcome.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        self,
        outcome: &'static str,
        mode: &'static str,
        strategy: &'static str,
        levels: Vec<LevelSample>,
        result_bits: u64,
        canonical_states: u32,
    ) -> QueryTrace {
        QueryTrace {
            fingerprint: self.fingerprint,
            kind: self.kind,
            outcome,
            mode,
            strategy,
            queue_wait_ns: self.queue_wait_ns,
            spans: self.spans,
            levels,
            total_ns: self.started.elapsed().as_nanos() as u64,
            result_bits,
            canonical_states,
        }
    }
}

/// Lock stripes in the recent-trace ring — keyed by fingerprint so
/// concurrent recorders rarely contend on the same stripe.
const TRACE_STRIPES: usize = 8;
/// Recent traces kept per stripe.
const TRACE_RING_CAP: usize = 32;
/// Slow-query log length.
const SLOW_LOG_CAP: usize = 32;

/// Where finished traces go: a lock-striped ring of recent traces plus
/// the threshold-gated slow-query log.
pub struct TraceSink {
    stripes: [Mutex<VecDeque<QueryTrace>>; TRACE_STRIPES],
    slow: Mutex<VecDeque<QueryTrace>>,
    slow_threshold_ns: AtomicU64,
}

impl TraceSink {
    /// A sink whose slow-query log captures traces at or above
    /// `slow_threshold` total wall time.
    pub fn new(slow_threshold: Duration) -> Self {
        TraceSink {
            stripes: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            slow: Mutex::new(VecDeque::new()),
            slow_threshold_ns: AtomicU64::new(slow_threshold.as_nanos() as u64),
        }
    }

    /// Records one finished trace.
    pub fn record(&self, trace: QueryTrace) {
        if trace.total_ns >= self.slow_threshold_ns.load(Ordering::Relaxed) {
            let mut slow = self.slow.lock().unwrap();
            if slow.len() == SLOW_LOG_CAP {
                slow.pop_front();
            }
            slow.push_back(trace.clone());
        }
        let stripe = &self.stripes[trace.fingerprint as usize % TRACE_STRIPES];
        let mut ring = stripe.lock().unwrap();
        if ring.len() == TRACE_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Every currently-retained recent trace (all stripes).
    pub fn recent(&self) -> Vec<QueryTrace> {
        self.stripes
            .iter()
            .flat_map(|stripe| stripe.lock().unwrap().iter().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// The slow-query log, oldest first.
    pub fn slow(&self) -> Vec<QueryTrace> {
        self.slow.lock().unwrap().iter().cloned().collect()
    }

    /// Adjusts the slow-log threshold at runtime.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        self.slow_threshold_ns
            .store(threshold.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The current threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// The `/slow` admin page body.
    pub fn render_slow(&self) -> String {
        let slow = self.slow();
        let mut out = format!(
            "slow queries: {} captured (threshold {}us)\n",
            slow.len(),
            self.slow_threshold_ns() / 1_000
        );
        for trace in slow.iter().rev() {
            trace.render(&mut out);
        }
        out
    }
}

/// The telemetry bundle one [`crate::QueryService`] owns and every
/// layer above it (front door, admin surface, CLI) shares.
pub struct Telemetry {
    /// The unified metrics registry.
    pub registry: MetricsRegistry,
    /// Recent + slow query traces.
    pub traces: TraceSink,
}

impl Telemetry {
    /// A fresh registry and trace sink.
    pub fn new(slow_threshold: Duration) -> Self {
        Telemetry {
            registry: MetricsRegistry::new(),
            traces: TraceSink::new(slow_threshold),
        }
    }
}

// ---------------------------------------------------------------------
// Admin surface
// ---------------------------------------------------------------------

/// Readiness phase reported by `/healthz`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthPhase {
    /// Starting up (e.g. WAL replay) — not ready.
    Recovering,
    /// Accepting and answering queries.
    Serving,
    /// Draining for rebuild or shutdown — not ready.
    Draining,
}

impl HealthPhase {
    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthPhase::Recovering => "recovering",
            HealthPhase::Serving => "serving",
            HealthPhase::Draining => "draining",
        }
    }
}

/// What `/healthz` reports: the phase plus free-form detail lines
/// (WAL record count, checkpoint threshold, cache occupancy, …).
pub struct HealthReport {
    /// Current readiness phase; `/healthz` answers 200 only for
    /// [`HealthPhase::Serving`].
    pub phase: HealthPhase,
    /// `key value` detail lines appended to the body.
    pub detail: Vec<(String, String)>,
}

type Source<T> = Box<dyn Fn() -> T + Send + Sync>;

/// The three content sources the admin responder serves from. Built by
/// the owner of the service (see `Server::admin_sources` in
/// [`crate::net`]) and installed with [`AdminServer::set_sources`].
pub struct AdminSources {
    /// `/metrics` body (Prometheus text exposition).
    pub metrics: Source<String>,
    /// `/healthz` report.
    pub health: Source<HealthReport>,
    /// `/slow` body (human-readable slow-query log).
    pub slow: Source<String>,
}

/// Cap on an admin request head — the same bounded-read idiom as the
/// frame cap in [`crate::net`].
const ADMIN_MAX_HEAD: usize = 8 * 1024;
/// Admin socket read/write timeouts (slow-loris defense; admin traffic
/// is curl and scrapers, both fast).
const ADMIN_IO_TIMEOUT: Duration = Duration::from_secs(5);

struct AdminInner {
    sources: Mutex<Option<AdminSources>>,
    stop: AtomicBool,
}

/// A minimal HTTP/1.0 text responder for `/metrics`, `/healthz` and
/// `/slow`. Binds immediately (so a deployment's health checks connect
/// during recovery) and answers `503 recovering` until
/// [`AdminServer::set_sources`] installs content.
pub struct AdminServer {
    inner: Arc<AdminInner>,
    local_addr: SocketAddr,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts the accept loop.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(AdminInner {
            sources: Mutex::new(None),
            stop: AtomicBool::new(false),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("pathlearn-admin".to_owned())
                .spawn(move || accept_loop(&inner, listener))?
        };
        Ok(AdminServer {
            inner,
            local_addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Installs (or replaces) the content sources; until called, every
    /// endpoint answers `503 recovering`.
    pub fn set_sources(&self, sources: AdminSources) {
        *self.inner.sources.lock().unwrap() = Some(sources);
    }

    /// Stops the accept loop. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(inner: &AdminInner, listener: TcpListener) {
    while !inner.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Admin requests are tiny and the responder does no
                // evaluation work, so handling inline on the accept
                // thread keeps the surface to one thread total.
                let _ = handle_admin_connection(inner, stream);
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_admin_connection(inner: &AdminInner, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(ADMIN_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(ADMIN_IO_TIMEOUT))?;

    // Read the request head, bounded, until the blank line.
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() > ADMIN_MAX_HEAD {
            return respond(&mut stream, 431, "request head too large\n");
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut request_line = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (
        request_line.next().unwrap_or(""),
        request_line.next().unwrap_or(""),
    );
    if method != "GET" {
        return respond(&mut stream, 405, "only GET is supported\n");
    }
    // Strip any query string: `/metrics?x=1` still means `/metrics`.
    let path = path.split('?').next().unwrap_or("");

    let sources = inner.sources.lock().unwrap();
    let Some(sources) = sources.as_ref() else {
        return respond(&mut stream, 503, "recovering\n");
    };
    match path {
        "/metrics" => {
            let body = (sources.metrics)();
            respond(&mut stream, 200, &body)
        }
        "/healthz" => {
            let report = (sources.health)();
            let mut body = String::new();
            body.push_str(report.phase.as_str());
            body.push('\n');
            for (key, value) in &report.detail {
                body.push_str(&format!("{key} {value}\n"));
            }
            let status = if report.phase == HealthPhase::Serving {
                200
            } else {
                503
            };
            respond(&mut stream, status, &body)
        }
        "/slow" => {
            let body = (sources.slow)();
            respond(&mut stream, 200, &body)
        }
        _ => respond(
            &mut stream,
            404,
            "unknown path (try /metrics, /healthz, /slow)\n",
        ),
    }
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — the proptest driver (no external
    /// dependencies).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    #[test]
    fn counter_sums_across_shards_and_clones() {
        let counter = Counter::new();
        let clone = counter.clone();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = &counter;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                });
            }
        });
        clone.add(5);
        assert_eq!(counter.get(), 4005);
    }

    #[test]
    fn gauge_set_add_sub_saturates() {
        let gauge = Gauge::new();
        gauge.set(10);
        gauge.add(5);
        gauge.sub(3);
        assert_eq!(gauge.get(), 12);
        gauge.sub(100);
        assert_eq!(gauge.get(), 0, "sub saturates at zero");
    }

    /// Proptest: every value lands in the bucket whose bounds contain
    /// it — `2^(i-1) ≤ v ≤ 2^i - 1` (and 0 in bucket 0).
    #[test]
    fn histogram_bucket_boundaries_contain_their_values() {
        let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
        // Deterministic boundary sweep first: around every power of two.
        let mut values: Vec<u64> = vec![0, 1, 2, 3, u64::MAX];
        for shift in 1..64 {
            let p = 1u64 << shift;
            values.extend([p - 1, p, p + 1]);
        }
        for _ in 0..2000 {
            values.push(rng.next());
        }
        for v in values {
            let index = Histogram::bucket_index(v);
            let upper = Histogram::bucket_upper_bound(index);
            let lower = if index == 0 {
                0
            } else {
                Histogram::bucket_upper_bound(index - 1) + 1
            };
            assert!(
                lower <= v && v <= upper,
                "value {v} outside bucket {index} bounds [{lower}, {upper}]"
            );
        }
    }

    /// Proptest: the bucket-walk quantile brackets the exact
    /// nearest-rank sample — never below it, never above its bucket's
    /// upper bound.
    #[test]
    fn histogram_quantile_brackets_the_exact_nearest_rank() {
        let mut rng = XorShift(0xdead_beef_cafe_f00d);
        for round in 0..50 {
            let histogram = Histogram::new();
            let n = 1 + (rng.next() % 200) as usize;
            let mut samples: Vec<u64> = (0..n).map(|_| rng.next() >> (rng.next() % 40)).collect();
            for &sample in &samples {
                histogram.record(sample);
            }
            samples.sort_unstable();
            for p in [1u32, 25, 50, 90, 99, 100] {
                let rank = ((n as u64) * u64::from(p)).div_ceil(100).clamp(1, n as u64);
                let exact = samples[(rank - 1) as usize];
                let approx = histogram.quantile(p);
                assert!(
                    approx >= exact,
                    "round {round}: q{p} approx {approx} below exact {exact}"
                );
                assert_eq!(
                    Histogram::bucket_upper_bound(Histogram::bucket_index(exact)),
                    approx,
                    "round {round}: q{p} must be the exact sample's bucket bound"
                );
            }
        }
    }

    /// The LatencyRing cold-start fix, folded into the histogram path:
    /// partially-filled histories (n = 1 and n = 1023, one short of the
    /// old window) answer quantiles from recorded samples only.
    #[test]
    fn quantiles_over_partial_histories_ignore_unwritten_history() {
        let histogram = Histogram::new();
        histogram.record(42);
        // n = 1: every percentile is the single sample's bucket.
        let bucket42 = Histogram::bucket_upper_bound(Histogram::bucket_index(42));
        assert_eq!(histogram.quantile(1), bucket42);
        assert_eq!(histogram.quantile(50), bucket42);
        assert_eq!(histogram.quantile(100), bucket42);

        // n = 1023 (one less than the old LatencyRing window): all
        // samples equal, so every quantile is that bucket — zeros from
        // "unwritten slots" must never leak in.
        let histogram = Histogram::new();
        for _ in 0..1023 {
            histogram.record(1_000_000);
        }
        let bucket = Histogram::bucket_upper_bound(Histogram::bucket_index(1_000_000));
        assert_eq!(histogram.quantile(1), bucket);
        assert_eq!(histogram.quantile(50), bucket);
        assert_eq!(histogram.quantile(99), bucket);
        assert_eq!(histogram.count(), 1023);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let histogram = Histogram::new();
        assert_eq!(histogram.quantile(50), 0);
        assert_eq!(histogram.quantile(99), 0);
        assert_eq!(histogram.count(), 0);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_derives_histogram_keys() {
        let registry = MetricsRegistry::new();
        registry.counter("serve.hits").add(3);
        registry.gauge("net.queue_depth").set(7);
        let latency = registry.histogram("net.latency", "ns");
        latency.record(1500);
        latency.record(900);
        let snapshot = registry.snapshot();
        let keys: Vec<&str> = snapshot.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "snapshot must be sorted by key");
        assert!(keys.contains(&"net.latency_count"));
        assert!(keys.contains(&"net.latency_p50_ns"));
        assert!(keys.contains(&"net.latency_p99_ns"));
        let get = |name: &str| {
            snapshot
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("serve.hits"), 3);
        assert_eq!(get("net.queue_depth"), 7);
        assert_eq!(get("net.latency_count"), 2);
    }

    #[test]
    fn registry_registration_is_idempotent_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("serve.hits");
        let b = registry.counter("serve.hits");
        a.inc();
        b.inc();
        assert_eq!(registry.counter("serve.hits").get(), 2);
    }

    /// `/metrics` exposition round-trip: every line is a comment or a
    /// `name[{labels}] value` sample, no sample name+labels repeats,
    /// and every registered metric appears.
    #[test]
    fn prometheus_exposition_parses_line_by_line() {
        let registry = MetricsRegistry::new();
        registry.counter("serve.hits").add(11);
        registry.counter("cache.misses").add(4);
        registry.gauge("net.queue_depth").set(2);
        let latency = registry.histogram("net.latency", "ns");
        for v in [100u64, 2000, 35_000, 0] {
            latency.record(v);
        }
        let text = registry.render_prometheus();
        assert!(!text.is_empty());
        let mut seen = std::collections::HashSet::new();
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "unknown comment: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(!series.is_empty());
            assert!(
                value.parse::<u64>().is_ok(),
                "unparseable sample value in {line:?}"
            );
            assert!(seen.insert(series.to_owned()), "duplicate sample {series}");
            // Sanitized names only.
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "unsanitized metric name {name:?}"
            );
        }
        for expected in ["serve_hits 11", "cache_misses 4", "net_queue_depth 2"] {
            assert!(text.contains(expected), "missing {expected:?} in {text}");
        }
        assert!(text.contains("net_latency_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("net_latency_ns_count 4"));
    }

    #[test]
    fn trace_builder_spans_are_monotonic_and_sink_gates_slow() {
        let mut builder = TraceBuilder::new(0xabcd, "monadic", 17);
        builder.span("canonicalize", || {
            std::thread::sleep(Duration::from_micros(50))
        });
        builder.span("eval", || std::thread::sleep(Duration::from_micros(50)));
        let trace = builder.finish("evaluated", "sequential", "forward", Vec::new(), 5, 3);
        assert_eq!(trace.spans.len(), 2);
        assert!(trace.spans[0].start_ns <= trace.spans[1].start_ns);
        assert!(
            trace.spans[0].start_ns + trace.spans[0].dur_ns <= trace.spans[1].start_ns,
            "spans must not overlap"
        );
        assert!(trace.total_ns >= trace.spans[1].start_ns + trace.spans[1].dur_ns);

        let sink = TraceSink::new(Duration::from_nanos(0));
        sink.record(trace.clone());
        assert_eq!(sink.recent().len(), 1);
        assert_eq!(sink.slow().len(), 1, "zero threshold captures everything");

        let sink = TraceSink::new(Duration::from_secs(3600));
        sink.record(trace);
        assert_eq!(sink.recent().len(), 1);
        assert!(sink.slow().is_empty(), "high threshold captures nothing");
    }

    #[test]
    fn trace_rings_are_bounded() {
        let sink = TraceSink::new(Duration::from_nanos(0));
        for i in 0..(TRACE_STRIPES * TRACE_RING_CAP * 2) {
            let builder = TraceBuilder::new(i as u64, "monadic", 0);
            sink.record(builder.finish("hit", "-", "-", Vec::new(), 0, 1));
        }
        assert!(sink.recent().len() <= TRACE_STRIPES * TRACE_RING_CAP);
        assert!(sink.slow().len() <= SLOW_LOG_CAP);
    }

    #[test]
    fn admin_server_serves_and_flips_health() {
        fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            write!(stream, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            let status: u16 = response
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let body = response
                .split_once("\r\n\r\n")
                .map(|(_, b)| b.to_owned())
                .unwrap_or_default();
            (status, body)
        }

        let mut admin = AdminServer::bind("127.0.0.1:0").unwrap();
        let addr = admin.local_addr();

        // Before sources: everything is 503 recovering.
        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 503);
        assert!(body.starts_with("recovering"));

        let draining = Arc::new(AtomicBool::new(false));
        let registry = MetricsRegistry::new();
        registry.counter("serve.hits").add(9);
        let sources = {
            let registry = registry.clone();
            let draining = Arc::clone(&draining);
            AdminSources {
                metrics: Box::new(move || registry.render_prometheus()),
                health: Box::new(move || HealthReport {
                    phase: if draining.load(Ordering::Relaxed) {
                        HealthPhase::Draining
                    } else {
                        HealthPhase::Serving
                    },
                    detail: vec![("wal_records".to_owned(), "0".to_owned())],
                }),
                slow: Box::new(|| "slow queries: 0 captured\n".to_owned()),
            }
        };
        admin.set_sources(sources);

        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.starts_with("serving"));
        assert!(body.contains("wal_records 0"));

        let (status, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("serve_hits 9"));

        let (status, body) = http_get(addr, "/slow");
        assert_eq!(status, 200);
        assert!(body.starts_with("slow queries"));

        // Health flips with the underlying state.
        draining.store(true, Ordering::Relaxed);
        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 503);
        assert!(body.starts_with("draining"));

        let (status, _) = http_get(addr, "/nope");
        assert_eq!(status, 404);

        admin.shutdown();
    }
}
