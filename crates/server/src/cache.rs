//! The canonical **result cache**: evaluated RPQ answers keyed by
//! canonical query form, with memory accounting and cost-aware eviction.
//!
//! ## Keys
//!
//! A [`CacheKey`] is a [`CanonicalQuery`] (the minimal DFA — so
//! syntactically different but equivalent submissions share one entry,
//! see `pathlearn-automata::canonical`) plus the semantics it was
//! evaluated under: monadic, or binary from one source node. Keys never
//! reference the graph: the owning [`crate::QueryService`] clears the
//! cache whenever the graph is rebuilt, so every resident entry is valid
//! for the current graph by construction.
//!
//! ## Eviction: GDSF (Greedy-Dual-Size-Frequency)
//!
//! Every entry carries the **measured evaluation cost** (nanoseconds,
//! supplied by the service) and its **resident bytes** (the result
//! bitset's blocks — `GraphDb::result_bytes` per monadic/binary answer).
//! Priority is the classic GDSF value
//!
//! ```text
//! priority = clock + cost / bytes
//! ```
//!
//! refreshed on every hit (recency/frequency) with the global `clock`
//! rising to each evicted entry's priority (aging). Eviction removes the
//! minimum-priority entry until the new insertion fits, so what survives
//! pressure is what is *expensive to recompute per byte kept* and
//! recently useful — a cheap one-level query is let go before a deep
//! product BFS of the same size. Finding the minimum is a linear scan;
//! entry counts are `capacity / |V|-bits`, small enough that the scan is
//! noise next to one evaluation.

use crate::telemetry::{Counter, MetricsRegistry};
use pathlearn_automata::{BitSet, CanonicalQuery, Symbol};
use pathlearn_graph::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// The **live alphabet** of a canonical query: the symbols with at least
/// one defined transition in its minimal DFA, sorted. A graph delta that
/// touches none of these labels provably cannot change the query's
/// answer — the label-aware invalidation rule of
/// [`ResultCache::invalidate_labels`].
pub fn live_alphabet(query: &CanonicalQuery) -> Box<[u32]> {
    let mut live: Vec<u32> = query
        .dfa()
        .transitions()
        .map(|(_, sym, _)| sym.index() as u32)
        .collect();
    live.sort_unstable();
    live.dedup();
    live.into_boxed_slice()
}

/// `true` iff the sorted live-alphabet slice intersects `touched`.
pub(crate) fn intersects(live: &[u32], touched: &[Symbol]) -> bool {
    touched
        .iter()
        .any(|sym| live.binary_search(&(sym.index() as u32)).is_ok())
}

/// Fixed per-entry overhead charged on top of the result bitset's blocks
/// and the key's DFA table (hash-map slot, `Arc` headers, bookkeeping)
/// so thousands of tiny results cannot blow past the configured budget
/// unaccounted.
const ENTRY_OVERHEAD_BYTES: usize = 256;

/// Accounted resident bytes of one entry: the result's blocks, the
/// canonical key's dense DFA table and finals bitmap (the key is what
/// keeps a large submitted query resident — it must count against the
/// budget), and the fixed overhead.
fn entry_bytes(key: &CacheKey, value: &BitSet) -> usize {
    let dfa = key.query.dfa();
    let table_bytes = dfa.num_states() * dfa.alphabet_len() * std::mem::size_of::<u32>();
    let finals_bytes = dfa.num_states().div_ceil(BitSet::BLOCK_BITS) * std::mem::size_of::<u64>();
    std::mem::size_of_val(value.as_blocks()) + table_bytes + finals_bytes + ENTRY_OVERHEAD_BYTES
}

/// Which evaluation semantics a cached result answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// `q(G)` — the monadic selected-node set.
    Monadic,
    /// Binary semantics from one fixed source node.
    Binary(NodeId),
}

/// A result-cache key: canonical query form × evaluation semantics.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The canonical (minimal-DFA) form of the submitted query.
    pub query: CanonicalQuery,
    /// Monadic or binary-from-source semantics.
    pub kind: QueryKind,
}

impl CacheKey {
    /// Key for the monadic result of `query`.
    pub fn monadic(query: CanonicalQuery) -> Self {
        CacheKey {
            query,
            kind: QueryKind::Monadic,
        }
    }

    /// Key for the binary result of `query` from `source`.
    pub fn binary(query: CanonicalQuery, source: NodeId) -> Self {
        CacheKey {
            query,
            kind: QueryKind::Binary(source),
        }
    }
}

/// Sizing knobs for [`ResultCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Resident-byte budget (result blocks + per-entry overhead).
    /// Entries larger than the whole budget are never admitted; an entry
    /// exactly at the budget is (the budget is inclusive). A zero-byte
    /// budget is a valid configuration that rejects every insertion —
    /// caching disabled, every lookup a miss.
    pub capacity_bytes: usize,
}

impl Default for CacheConfig {
    /// 64 MiB — roughly 17k cached answers on a 30k-node graph.
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 << 20,
        }
    }
}

/// Counters exposed by [`ResultCache::stats`] — a point-in-time view
/// over the cache's live telemetry [`Counter`]s.
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Successful insertions.
    pub insertions: u64,
    /// Entries evicted under memory pressure.
    pub evictions: u64,
    /// Insertions rejected because one entry exceeded the whole budget.
    pub rejected: u64,
    /// Entries dropped by label-aware invalidation
    /// ([`ResultCache::invalidate_labels`]).
    pub invalidated: u64,
}

/// The cache's live counter handles. The cache increments these at its
/// mutation sites; [`CacheCounters::register`] publishes the same
/// handles in a [`MetricsRegistry`] under the stable `cache.*` names,
/// so the `/metrics` exposition and [`ResultCache::stats`] read the
/// same atomics.
#[derive(Clone, Default)]
pub(crate) struct CacheCounters {
    pub(crate) hits: Counter,
    pub(crate) misses: Counter,
    pub(crate) insertions: Counter,
    pub(crate) evictions: Counter,
    pub(crate) rejected: Counter,
    pub(crate) invalidated: Counter,
}

impl CacheCounters {
    /// Publishes the live handles under their `cache.*` names.
    pub(crate) fn register(&self, registry: &MetricsRegistry) {
        registry.adopt_counter("cache.hits", self.hits.clone());
        registry.adopt_counter("cache.misses", self.misses.clone());
        registry.adopt_counter("cache.insertions", self.insertions.clone());
        registry.adopt_counter("cache.evictions", self.evictions.clone());
        registry.adopt_counter("cache.rejected", self.rejected.clone());
        registry.adopt_counter("cache.invalidated", self.invalidated.clone());
    }
}

struct Entry {
    value: Arc<BitSet>,
    bytes: usize,
    cost_ns: u64,
    priority: f64,
    /// Sorted live alphabet of the entry's canonical DFA — what
    /// label-aware invalidation tests deltas against.
    live: Box<[u32]>,
}

/// The cost-aware result cache. Single-threaded by design — the owning
/// [`crate::QueryService`] guards it with its state mutex, keeping every
/// lookup-or-register decision atomic with the in-flight table.
pub struct ResultCache {
    map: HashMap<CacheKey, Entry>,
    bytes: usize,
    capacity_bytes: usize,
    /// GDSF aging clock: rises to each evicted priority, so long-resident
    /// entries must keep earning hits to outrank fresh insertions.
    clock: f64,
    counters: CacheCounters,
}

impl ResultCache {
    /// Creates an empty cache with `config`'s byte budget.
    pub fn new(config: CacheConfig) -> Self {
        ResultCache {
            map: HashMap::new(),
            bytes: 0,
            capacity_bytes: config.capacity_bytes,
            clock: 0.0,
            counters: CacheCounters::default(),
        }
    }

    fn priority(&self, cost_ns: u64, bytes: usize) -> f64 {
        self.clock + cost_ns as f64 / bytes.max(1) as f64
    }

    /// Looks `key` up, refreshing its GDSF priority on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<BitSet>> {
        let clock = self.clock;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.priority = clock + entry.cost_ns as f64 / entry.bytes.max(1) as f64;
                self.counters.hits.inc();
                Some(entry.value.clone())
            }
            None => {
                self.counters.misses.inc();
                None
            }
        }
    }

    /// Inserts an evaluated result with its measured cost, evicting
    /// minimum-priority entries until it fits. Returns `false` (and
    /// caches nothing) when the single entry exceeds the whole budget —
    /// which is every entry under a zero-byte budget, since an entry's
    /// accounted size is always positive; an entry exactly at the
    /// budget is admitted (evicting everything else). Re-inserting an
    /// existing key replaces the entry. Byte accounting uses checked
    /// subtraction: an underflow would mean a corrupt ledger, and
    /// failing loudly beats silently serving with a wrapped budget.
    pub fn insert(&mut self, key: CacheKey, value: Arc<BitSet>, cost_ns: u64) -> bool {
        let bytes = entry_bytes(&key, &value);
        if bytes > self.capacity_bytes {
            self.counters.rejected.inc();
            return false;
        }
        if let Some(old) = self.map.remove(&key) {
            self.bytes = self
                .bytes
                .checked_sub(old.bytes)
                .expect("cache byte ledger underflow on replacement");
        }
        while self.bytes + bytes > self.capacity_bytes {
            let victim = self
                .map
                .iter()
                .min_by(|a, b| {
                    a.1.priority
                        .total_cmp(&b.1.priority)
                        // Deterministic tie-break so tests (and replays)
                        // see one eviction order.
                        .then_with(|| a.0.query.fingerprint().cmp(&b.0.query.fingerprint()))
                })
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            let evicted = self.map.remove(&victim).expect("victim resident");
            self.bytes = self
                .bytes
                .checked_sub(evicted.bytes)
                .expect("cache byte ledger underflow on eviction");
            self.clock = self.clock.max(evicted.priority);
            self.counters.evictions.inc();
        }
        let priority = self.priority(cost_ns, bytes);
        let live = live_alphabet(&key.query);
        self.bytes += bytes;
        self.map.insert(
            key,
            Entry {
                value,
                bytes,
                cost_ns,
                priority,
                live,
            },
        );
        self.counters.insertions.inc();
        true
    }

    /// Label-aware invalidation: drops exactly the entries whose live
    /// alphabet intersects `touched` (an edge delta over other labels
    /// cannot change their answers — their canonical DFAs never step
    /// through a touched symbol). Returns the number of dropped
    /// entries. The complement — including plans and every result over
    /// disjoint labels — survives, which is the whole point of
    /// delta-based updates over rebuild-the-world.
    pub fn invalidate_labels(&mut self, touched: &[Symbol]) -> usize {
        let bytes = &mut self.bytes;
        let before = self.map.len();
        self.map.retain(|_, entry| {
            let dead = intersects(&entry.live, touched);
            if dead {
                *bytes = bytes
                    .checked_sub(entry.bytes)
                    .expect("cache byte ledger underflow on invalidation");
            }
            !dead
        });
        let dropped = before - self.map.len();
        self.counters.invalidated.add(dropped as u64);
        dropped
    }

    /// Iterates resident **monadic** entries as `(canonical query, live
    /// alphabet, result)` without touching hit statistics or GDSF
    /// priorities — the probe surface for subsumption-aware reuse,
    /// where most inspected entries will not match and must not have
    /// their priority refreshed as if they had served a hit.
    pub fn iter_monadic(&self) -> impl Iterator<Item = (&CanonicalQuery, &[u32], &Arc<BitSet>)> {
        self.map.iter().filter_map(|(key, entry)| match key.kind {
            QueryKind::Monadic => Some((&key.query, &*entry.live, &entry.value)),
            QueryKind::Binary(_) => None,
        })
    }

    /// Drops every entry (graph rebuild invalidation). Stats and the
    /// aging clock survive — they describe the cache's lifetime, not one
    /// graph's.
    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Accounted resident bytes (blocks + per-entry overhead).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Lifetime counters — a point-in-time view over the live
    /// telemetry handles (`CacheCounters`).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.get(),
            misses: self.counters.misses.get(),
            insertions: self.counters.insertions.get(),
            evictions: self.counters.evictions.get(),
            rejected: self.counters.rejected.get(),
            invalidated: self.counters.invalidated.get(),
        }
    }

    /// The live counter handles, for registry registration by the
    /// owning service.
    pub(crate) fn counters(&self) -> &CacheCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_automata::{Alphabet, Regex};

    fn key(expr: &str) -> CacheKey {
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        CacheKey::monadic(CanonicalQuery::new(
            &Regex::parse(expr, &alphabet).unwrap().to_dfa(3),
        ))
    }

    fn value(bits: usize) -> Arc<BitSet> {
        Arc::new(BitSet::new(bits))
    }

    /// Budget that fits exactly `n` entries of the shape the tests use
    /// (single-word result, 2-state canonical key over 3 symbols).
    fn config_for(n: usize) -> CacheConfig {
        CacheConfig {
            capacity_bytes: n * entry_bytes(&key("a"), &value(64)),
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = ResultCache::new(CacheConfig::default());
        assert!(cache.get(&key("a")).is_none());
        assert!(cache.insert(key("a"), value(64), 1000));
        assert!(cache.get(&key("a")).is_some());
        // Equivalent spellings share the entry — the canonicalization
        // contract the service relies on.
        assert!(cache.get(&key("a+a")).is_some());
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn eviction_prefers_cheap_entries() {
        // Two entries of equal size: the 100ns one goes before the
        // 100µs one, regardless of insertion order.
        let mut cache = ResultCache::new(config_for(2));
        cache.insert(key("a"), value(64), 100_000);
        cache.insert(key("b"), value(64), 100);
        cache.insert(key("c"), value(64), 50_000);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&key("a")).is_some(), "expensive entry survives");
        assert!(cache.get(&key("b")).is_none(), "cheap entry evicted");
        assert!(cache.get(&key("c")).is_some());
    }

    #[test]
    fn aging_clock_lets_fresh_entries_displace_stale_expensive_ones() {
        // One-entry cache: each insertion evicts the resident entry and
        // advances the clock to its priority, so even a very expensive
        // entry cannot pin the cache forever once it stops being hit.
        let mut cache = ResultCache::new(config_for(1));
        cache.insert(key("a"), value(64), u64::MAX / 2);
        cache.insert(key("b"), value(64), 10);
        assert!(cache.get(&key("a")).is_none());
        assert!(cache.get(&key("b")).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn key_dfa_bytes_count_against_the_budget() {
        // Budget covering the result blocks + fixed overhead but not
        // the key's DFA table: the entry must be rejected — otherwise
        // bulky canonical keys would pin unaccounted memory.
        let without_key = std::mem::size_of_val(value(64).as_blocks()) + ENTRY_OVERHEAD_BYTES;
        let mut cache = ResultCache::new(CacheConfig {
            capacity_bytes: without_key,
        });
        assert!(!cache.insert(key("a"), value(64), 10));
        assert_eq!(cache.stats().rejected, 1);
        // With the key accounted, the same entry fits exactly.
        let mut cache = ResultCache::new(config_for(1));
        assert!(cache.insert(key("a"), value(64), 10));
        assert_eq!(cache.bytes(), cache.capacity_bytes());
    }

    #[test]
    fn oversized_entries_are_rejected_not_thrashed() {
        let mut cache = ResultCache::new(CacheConfig { capacity_bytes: 64 });
        assert!(!cache.insert(key("a"), value(1 << 16), 1000));
        assert_eq!(cache.stats().rejected, 1);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn zero_byte_budget_rejects_everything_without_underflow() {
        // Regression: capacity 0 is "caching disabled", and the
        // rejection must happen before any ledger mutation — repeated
        // inserts and gets must never drive `bytes` below zero or leave
        // phantom entries.
        let mut cache = ResultCache::new(CacheConfig { capacity_bytes: 0 });
        for round in 0..3 {
            assert!(!cache.insert(key("a"), value(64), 10), "round {round}");
            assert!(!cache.insert(key("b"), value(64), 1_000), "round {round}");
            assert!(cache.get(&key("a")).is_none(), "round {round}");
            assert_eq!(cache.len(), 0, "round {round}");
            assert_eq!(cache.bytes(), 0, "round {round}");
        }
        assert_eq!(cache.stats().rejected, 6);
        assert_eq!(cache.stats().insertions, 0);
        assert_eq!(cache.stats().evictions, 0);
        cache.clear();
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn exactly_at_budget_entries_fill_replace_and_never_underflow() {
        // Regression: an entry whose accounted size equals the whole
        // budget is admitted (the budget is inclusive), a second one
        // evicts the first cleanly, and an in-place replacement at full
        // budget must not double-subtract the old entry's bytes.
        let mut cache = ResultCache::new(config_for(1));
        assert!(cache.insert(key("a"), value(64), 10));
        assert_eq!(cache.bytes(), cache.capacity_bytes());
        assert_eq!(cache.len(), 1);
        // Different key, same exact size: evict-then-admit at the boundary.
        assert!(cache.insert(key("b"), value(64), 20));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), cache.capacity_bytes());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&key("a")).is_none());
        assert!(cache.get(&key("b")).is_some());
        // Same key replaced in place at full budget: no eviction, no
        // ledger drift.
        assert!(cache.insert(key("b"), value(64), 30));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), cache.capacity_bytes());
        assert_eq!(cache.stats().evictions, 1);
        // One byte less than the entry takes the documented rejection
        // path instead.
        let mut tight = ResultCache::new(CacheConfig {
            capacity_bytes: config_for(1).capacity_bytes - 1,
        });
        assert!(!tight.insert(key("a"), value(64), 10));
        assert_eq!(tight.stats().rejected, 1);
        assert_eq!((tight.len(), tight.bytes()), (0, 0));
    }

    #[test]
    fn reinsert_replaces_and_reaccounts() {
        let mut cache = ResultCache::new(CacheConfig::default());
        cache.insert(key("a"), value(64), 10);
        let bytes = cache.bytes();
        cache.insert(key("a"), value(64), 99);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), bytes, "replacement does not double-count");
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn clear_empties_but_keeps_lifetime_stats() {
        let mut cache = ResultCache::new(CacheConfig::default());
        cache.insert(key("a"), value(64), 10);
        cache.get(&key("a"));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.stats().hits, 1);
        assert!(cache.get(&key("a")).is_none());
        assert_eq!(
            cache.capacity_bytes(),
            CacheConfig::default().capacity_bytes
        );
    }

    #[test]
    fn label_invalidation_kills_only_intersecting_live_alphabets() {
        let mut cache = ResultCache::new(CacheConfig::default());
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        cache.insert(key("a"), value(64), 10);
        cache.insert(key("b·b"), value(64), 10);
        cache.insert(key("(a+c)*"), value(64), 10);
        let bytes_before = cache.bytes();
        // Touching c kills (a+c)* but not a or b·b.
        let c = alphabet.symbol("c").unwrap();
        assert_eq!(cache.invalidate_labels(&[c]), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.bytes() < bytes_before);
        assert!(cache.get(&key("a")).is_some());
        assert!(cache.get(&key("b·b")).is_some());
        assert!(cache.get(&key("(a+c)*")).is_none());
        // Touching a label no resident query reads drops nothing: the
        // queries a and b·b have live alphabets {a} and {b}.
        assert_eq!(cache.invalidate_labels(&[c]), 0);
        assert_eq!(cache.stats().invalidated, 1);
        // Touching a kills the a entry.
        let a = alphabet.symbol("a").unwrap();
        assert_eq!(cache.invalidate_labels(&[a]), 1);
        assert!(cache.get(&key("a")).is_none());
        assert!(cache.get(&key("b·b")).is_some());
    }

    #[test]
    fn live_alphabet_is_the_canonical_dfas_stepped_symbols() {
        // Canonicalization prunes what the raw regex mentions but the
        // minimal DFA never steps through: a + a·b·∅-ish spellings.
        assert_eq!(live_alphabet(&key("a").query).as_ref(), &[0]);
        assert_eq!(live_alphabet(&key("a·(b+c)").query).as_ref(), &[0, 1, 2]);
        // ε has an empty live alphabet: no delta can ever kill it.
        assert!(live_alphabet(&key("eps").query).is_empty());
        let mut cache = ResultCache::new(CacheConfig::default());
        cache.insert(key("eps"), value(64), 10);
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        let all: Vec<_> = alphabet.symbols().collect();
        assert_eq!(cache.invalidate_labels(&all), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn monadic_iteration_skips_binary_and_does_not_refresh() {
        let mut cache = ResultCache::new(CacheConfig::default());
        let canonical = key("a").query;
        cache.insert(CacheKey::monadic(canonical.clone()), value(64), 10);
        cache.insert(CacheKey::binary(canonical, 0), value(64), 10);
        cache.insert(key("b"), value(64), 10);
        assert_eq!(cache.iter_monadic().count(), 2);
        let hits_before = cache.stats().hits;
        let _ = cache.iter_monadic().count();
        assert_eq!(cache.stats().hits, hits_before, "probing is not a hit");
    }

    #[test]
    fn binary_and_monadic_keys_are_distinct() {
        let mut cache = ResultCache::new(CacheConfig::default());
        let canonical = key("a").query;
        cache.insert(CacheKey::monadic(canonical.clone()), value(64), 10);
        assert!(cache.get(&CacheKey::binary(canonical.clone(), 0)).is_none());
        assert!(cache.get(&CacheKey::binary(canonical.clone(), 1)).is_none());
        cache.insert(CacheKey::binary(canonical.clone(), 0), value(64), 10);
        assert!(cache.get(&CacheKey::binary(canonical, 0)).is_some());
        assert_eq!(cache.len(), 2);
    }
}
