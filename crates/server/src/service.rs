//! The concurrent query service: admission, coalescing, scheduling.
//!
//! [`QueryService`] is the multi-client front door to RPQ evaluation.
//! Client threads call [`QueryService::query_monadic`] (or the binary /
//! batch variants) concurrently; the service
//!
//! 1. **canonicalizes** the submitted query (minimize → canonical
//!    numbering, [`CanonicalQuery`]) into a [`CacheKey`], so equivalent
//!    spellings are one unit of work and one cache entry;
//! 2. consults the **result cache** ([`ResultCache`], GDSF cost-aware
//!    eviction) — a hit returns the shared `Arc` immediately;
//! 3. consults the **in-flight table**: if an equivalent query is being
//!    evaluated right now, the caller *coalesces* — blocks on that
//!    evaluation's ticket instead of redoing the work (thundering-herd
//!    dedup for duplicate-heavy traffic);
//! 4. otherwise **admits** the query: registers an in-flight ticket
//!    (under the same lock as the cache probe, so exactly one thread
//!    owns each key), picks an execution mode by a size heuristic, and
//!    evaluates on the shared [`EvalPool`].
//!
//! ## Scheduling modes
//!
//! | mode | when | machinery |
//! |---|---|---|
//! | `Sequential` | small graph or sequential pool | `eval_monadic_policy` on this thread |
//! | `IntraQuery` | parallel pool and `\|V\|` ≥ threshold | [`EvalPool::eval_monadic`] — per-level `(state, symbol)` + node-range fan-out |
//! | `Batch` | ≥ 2 unique misses in one [`QueryService::query_monadic_batch`] call | [`EvalPool::eval_monadic_batch`] — one slot per query |
//!
//! Independent queries from different client threads naturally overlap:
//! evaluation runs outside the state lock, which is held only for probe
//! and publish. Results are bit-identical to the direct sequential
//! evaluators in every mode (the pool's contract, asserted again by this
//! crate's smoke tests).
//!
//! ## Whole-query planning
//!
//! Every admitted query is dispatched through a
//! [`pathlearn_graph::plan::QueryPlan`]: the planner estimates frontier
//! growth in each direction from the graph's per-label statistics and
//! picks forward, backward (reversed-DFA), or bidirectional evaluation
//! per query ([`ServeConfig::strategy`] can force one — purely a speed
//! knob, every strategy is bit-identical). Plans are cached per
//! [`CanonicalQuery`] in a rebuild-cleared side table, so fingerprint
//! replays and per-source binary fans skip the planning pass; the
//! resolved direction is recorded on each [`Served::Evaluated`] and
//! aggregated in [`ServeStats`] (`forward_evals` / `backward_evals` /
//! `bidirectional_evals`, surfaced through the `STATS` frame).
//!
//! ## Invalidation
//!
//! [`QueryService::rebuild_graph`] swaps the graph, bumps the service
//! **epoch**, clears the cache and drains the in-flight table
//! atomically. Evaluations already in flight against the old graph
//! still complete (their existing waiters get a consistent old-graph
//! answer — the graph `Arc` keeps it alive) but publish to the cache
//! only if their epoch still matches, and post-rebuild submissions can
//! no longer coalesce onto them — so a stale result is never served
//! after the rebuild returns.
//!
//! ## Edge deltas: label-aware invalidation
//!
//! [`QueryService::apply_delta`] is the incremental alternative: it
//! patches the current graph with an edge-delta overlay
//! ([`GraphDb::with_delta`]) instead of swapping it wholesale, and
//! invalidates **only what the delta can have changed**. The rule is
//! per-label: every cached entry carries the *live alphabet* of its
//! canonical DFA (the labels with at least one defined transition), and
//! an entry survives a delta iff that set is disjoint from the delta's
//! touched labels — a query that never steps through label `x` provably
//! answers identically on a graph whose `x`-edges moved. The same rule
//! gates in-flight work through **per-label epochs**: admission captures
//! the maximum epoch over the query's live alphabet, and publication
//! re-checks it, so an evaluation raced by a delta on its own labels
//! completes for its waiters but never poisons the cache. The plan
//! cache *survives* deltas — plans embed label statistics, so a plan
//! tuned pre-delta may be mildly mistuned, but every strategy is
//! bit-identical, so it is never wrong. Overlays are folded into a
//! fresh CSR ([`GraphDb::compact`], node-id- and alphabet-preserving)
//! once they outgrow [`ServeConfig::delta_compact_threshold`].
//!
//! ## Subsumption-aware reuse
//!
//! A cache miss is not always a cold start. At admission the service
//! probes the resident monadic entries for a **superset query**: if
//! antichain inclusion ([`pathlearn_automata::inclusion::nfa_included_in`])
//! proves
//! `L(q) ⊆ L(q′)` for some cached `q′`, then `q(G) ⊆ q′(G)` on any
//! graph, and the cached bits seed
//! [`pathlearn_graph::eval::eval_monadic_bounded_interruptible`] as a
//! sound upper bound — the BFS stops the moment its monotone lower
//! bound meets the cached upper bound (and an empty cached answer
//! proves the miss empty with zero graph work). Probing is capped and
//! pre-filtered by live-alphabet subset, and the result is bit-exact
//! either way.

use crate::cache::{
    intersects, live_alphabet, CacheConfig, CacheKey, CacheStats, QueryKind, ResultCache,
};
use crate::telemetry::{Counter, Gauge, Histogram, Telemetry, TraceBuilder};
use crate::wal::{Persistence, WalError};
use pathlearn_automata::inclusion::nfa_included_in;
use pathlearn_automata::{BitSet, CanonicalQuery, Dfa, Symbol};
use pathlearn_graph::eval::eval_monadic_bounded_interruptible;
use pathlearn_graph::graph::DeltaError;
use pathlearn_graph::plan::{
    eval_binary_planned_interruptible, eval_monadic_planned_interruptible, plan_query_forced,
    PlanScratch, QueryPlan,
};
use pathlearn_graph::{CancelToken, EvalPool, GraphDb, Interrupt, NodeId, StepPolicy, Strategy};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration for [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Evaluation-pool width (1 = strictly sequential, no worker
    /// threads). Client concurrency is the callers' business; this sizes
    /// the *evaluation* fan-out shared by all of them.
    pub threads: usize,
    /// Result-cache sizing.
    pub cache: CacheConfig,
    /// Node count at or above which a single admitted query uses the
    /// intra-query parallel evaluator instead of the sequential one
    /// (fan-out overhead beats level work only on graphs with some
    /// meat; below the threshold sequential is faster *and* leaves the
    /// pool to other clients).
    pub intra_query_node_threshold: usize,
    /// Step-kernel policy for every evaluation this service runs.
    pub step_policy: StepPolicy,
    /// Evaluation-direction strategy for every admitted query:
    /// [`Strategy::Auto`] (the default) lets the whole-query planner
    /// pick forward/backward/bidirectional per query from the graph's
    /// label statistics; a forced value pins every evaluation to one
    /// engine (an operational escape hatch — all strategies are
    /// bit-identical, so forcing only changes speed).
    pub strategy: Strategy,
    /// Testing/diagnostics knob: hold each evaluated result back this
    /// long before publishing it (cache insert + ticket completion).
    /// Widens the in-flight window so coalescing can be exercised
    /// reliably by tests; keep `ZERO` (the default) in production.
    pub eval_holdoff: Duration,
    /// Overlay size (in edges, `added + removed`) above which
    /// [`QueryService::apply_delta`] folds the accumulated delta into a
    /// fresh CSR ([`GraphDb::compact`]). `None` (the default) derives
    /// the bound from the base graph: `max(1024, base_edges / 8)` —
    /// small overlays are nearly free to carry, and an overlay worth
    /// ~an eighth of the CSR has earned a rebuild. Compaction preserves
    /// node ids and the alphabet, so it invalidates nothing.
    pub delta_compact_threshold: Option<usize>,
    /// Whether admitted evaluations run under the per-BFS-level
    /// observer ([`pathlearn_graph::collect_levels`]), so query traces
    /// carry one sample per level (frontier popcount, kernel mix,
    /// nanoseconds) and feed the `eval.level` / `eval.frontier`
    /// histograms. On by default — measured ≤2% on-path overhead
    /// (`bench_serve`'s `telemetry` gate) — and a pure observation: the
    /// served bits are identical either way.
    pub observe_eval_levels: bool,
    /// Queries whose whole-trace wall time reaches this threshold are
    /// captured in the slow-query log (the `/slow` admin page).
    pub slow_query_threshold: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 1,
            cache: CacheConfig::default(),
            intra_query_node_threshold: 4096,
            step_policy: StepPolicy::Auto,
            strategy: Strategy::Auto,
            eval_holdoff: Duration::ZERO,
            delta_compact_threshold: None,
            observe_eval_levels: true,
            slow_query_threshold: Duration::from_millis(50),
        }
    }
}

impl ServeConfig {
    /// Pool width from `PATHLEARN_THREADS` / available parallelism, as
    /// [`EvalPool::env_threads`] resolves it (no pool is built just to
    /// read the number); everything else default.
    pub fn from_env() -> Self {
        ServeConfig {
            threads: EvalPool::env_threads(),
            ..Self::default()
        }
    }
}

/// How an admitted (missed) query was executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalMode {
    /// Sequential evaluator on the calling thread.
    Sequential,
    /// Intra-query parallel evaluator on the shared pool.
    IntraQuery,
    /// Part of a multi-query batch fan-out.
    Batch,
}

/// How one evaluation ran, for [`QueryService::publish`]: the
/// execution mode together with the planner strategy that produced the
/// bits (never [`Strategy::Auto`] — the record is the resolution).
#[derive(Clone, Copy)]
struct EvalOutcome {
    mode: EvalMode,
    strategy: Strategy,
}

/// How one submission was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Resident in the result cache.
    Hit,
    /// Folded onto a concurrent in-flight evaluation of an equivalent
    /// query (or onto an earlier duplicate in the same batch).
    Coalesced,
    /// Admitted and evaluated.
    Evaluated {
        /// The scheduling mode the admission heuristic chose.
        mode: EvalMode,
        /// The evaluation direction the planner resolved for this query
        /// (never [`Strategy::Auto`] — Auto is an input, the record is
        /// the resolution). Batch fan-outs always run forward.
        strategy: Strategy,
        /// Measured evaluation wall time.
        eval_ns: u64,
    },
}

/// One served query: the (shared) result plus per-query trace data —
/// the "per-query stats" surface of the serving layer.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The selected node set (monadic) or reachable end set (binary).
    pub result: Arc<BitSet>,
    /// Hit / coalesced / evaluated-with-mode.
    pub served: Served,
    /// Stable digest of the canonical form (log-friendly query id).
    pub fingerprint: u64,
    /// States of the canonical DFA (the paper's query size).
    pub canonical_states: usize,
}

/// Outcome of one [`QueryService::apply_delta`] batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaApplied {
    /// Cache entries dropped because their live alphabet intersected
    /// the batch's touched labels (everything else kept serving hits).
    pub invalidated: usize,
    /// Whether the accumulated overlay was folded into a fresh CSR
    /// after this batch ([`ServeConfig::delta_compact_threshold`]).
    pub compacted: bool,
    /// Overlay edges still pending after this batch (0 right after a
    /// compaction).
    pub delta_edges: usize,
}

/// Why [`QueryService::apply_delta_durable`] refused a batch. Either
/// way the served graph is unchanged.
#[derive(Debug)]
pub enum DeltaCommitError {
    /// The batch names a node or label the graph does not have —
    /// the same rejection [`QueryService::apply_delta`] reports, made
    /// **before** the batch touches the write-ahead log.
    Rejected(DeltaError),
    /// Appending or fsyncing the write-ahead log failed, so the batch
    /// cannot be made durable and was **not** applied. Safe to retry
    /// once the underlying problem (e.g. a full disk) is fixed.
    Wal(WalError),
}

impl std::fmt::Display for DeltaCommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaCommitError::Rejected(e) => write!(f, "{e}"),
            DeltaCommitError::Wal(e) => write!(f, "delta not committed: {e}"),
        }
    }
}

impl std::error::Error for DeltaCommitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaCommitError::Rejected(e) => Some(e),
            DeltaCommitError::Wal(e) => Some(e),
        }
    }
}

/// Aggregate service counters (a consistent snapshot via
/// [`QueryService::stats`]).
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Submissions answered from the result cache.
    pub hits: u64,
    /// Submissions that were admitted and evaluated.
    pub misses: u64,
    /// Submissions folded onto a concurrent in-flight evaluation.
    pub coalesced: u64,
    /// Duplicates folded within a single submitted batch.
    pub batch_deduped: u64,
    /// Graph rebuilds (each clears the cache).
    pub invalidations: u64,
    /// Edge-delta batches applied via [`QueryService::apply_delta`]
    /// (each invalidates only the touched labels' entries).
    pub deltas_applied: u64,
    /// Cache entries dropped by label-aware delta invalidation (entries
    /// whose live alphabet intersected a delta's touched labels).
    pub label_invalidations: u64,
    /// Admitted monadic evaluations that ran under a cached superset
    /// query's answer as a sound upper bound (subsumption reuse).
    pub subsumption_reuses: u64,
    /// Delta overlays folded into a fresh CSR after outgrowing
    /// [`ServeConfig::delta_compact_threshold`].
    pub compactions: u64,
    /// Admitted queries run sequentially.
    pub sequential_evals: u64,
    /// Admitted queries run on the intra-query parallel evaluator.
    pub intra_evals: u64,
    /// Admitted queries run inside a batch fan-out.
    pub batch_evals: u64,
    /// Admitted queries the planner resolved to forward evaluation
    /// (includes every batch fan-out member — batches run forward).
    pub forward_evals: u64,
    /// Admitted queries the planner resolved to backward evaluation
    /// (reversed-DFA monadic walk / coreach-pruned binary pass).
    pub backward_evals: u64,
    /// Admitted binary queries the planner resolved to the
    /// bidirectional meet-in-the-middle engine.
    pub bidirectional_evals: u64,
    /// Total measured evaluation wall time across admissions.
    pub eval_ns_total: u64,
    /// Interruptible submissions that returned the
    /// [`Interrupt::Deadline`] verdict (budget exhausted before, during
    /// or while waiting on an evaluation).
    pub deadline_exceeded: u64,
    /// Interruptible submissions cancelled by a tripped drain/shutdown
    /// flag ([`Interrupt::Cancelled`]).
    pub cancelled: u64,
}

impl ServeStats {
    /// Submissions that did **not** pay an evaluation: cache hits plus
    /// both coalescing flavors.
    pub fn reused(&self) -> u64 {
        self.hits + self.coalesced + self.batch_deduped
    }

    /// Fraction of submissions served without evaluating
    /// (`reused / (reused + misses)`); 0.0 before any traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.reused() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.reused() as f64 / total as f64
        }
    }
}

/// The service's live metric handles, registered under their stable
/// dotted names in the service's [`MetricsRegistry`]. Mutation sites
/// increment these directly (lock-free sharded atomics — the old
/// `Inner.stats` fields lived under the state mutex); [`ServeStats`]
/// and the `STATS` wire frame are views over the same handles.
struct ServeCounters {
    hits: Counter,
    misses: Counter,
    coalesced: Counter,
    batch_deduped: Counter,
    invalidations: Counter,
    deltas_applied: Counter,
    label_invalidations: Counter,
    subsumption_reuses: Counter,
    compactions: Counter,
    sequential_evals: Counter,
    intra_evals: Counter,
    batch_evals: Counter,
    forward_evals: Counter,
    backward_evals: Counter,
    bidirectional_evals: Counter,
    eval_ns_total: Counter,
    deadline_exceeded: Counter,
    cancelled: Counter,
    /// Delta batches made durable in the write-ahead log (zero without
    /// attached persistence).
    wal_records_logged: Counter,
    /// Successful WAL checkpoints (snapshot + truncate).
    wal_checkpoints: Counter,
    /// Checkpoint attempts that failed (the write stays durable in the
    /// WAL; retried on the next write).
    wal_checkpoint_failures: Counter,
    /// Resident result-cache entries (kept in step with the cache under
    /// the state lock).
    cache_entries: Gauge,
    /// Accounted resident result-cache bytes.
    cache_bytes_used: Gauge,
    /// The cache's configured byte budget.
    cache_bytes_budget: Gauge,
    /// Per-BFS-level wall time, fed from trace level samples.
    eval_level_ns: Histogram,
    /// Per-BFS-level frontier popcount, fed from trace level samples.
    eval_frontier: Histogram,
    /// Admission-queue wait of network-submitted queries.
    queue_wait: Histogram,
}

impl ServeCounters {
    fn register(registry: &crate::telemetry::MetricsRegistry) -> Self {
        ServeCounters {
            hits: registry.counter("serve.hits"),
            misses: registry.counter("serve.misses"),
            coalesced: registry.counter("serve.coalesced"),
            batch_deduped: registry.counter("serve.batch_deduped"),
            invalidations: registry.counter("serve.invalidations"),
            deltas_applied: registry.counter("serve.deltas_applied"),
            label_invalidations: registry.counter("serve.label_invalidations"),
            subsumption_reuses: registry.counter("serve.subsumption_reuses"),
            compactions: registry.counter("serve.compactions"),
            sequential_evals: registry.counter("serve.sequential_evals"),
            intra_evals: registry.counter("serve.intra_evals"),
            batch_evals: registry.counter("serve.batch_evals"),
            forward_evals: registry.counter("serve.forward_evals"),
            backward_evals: registry.counter("serve.backward_evals"),
            bidirectional_evals: registry.counter("serve.bidirectional_evals"),
            eval_ns_total: registry.counter("serve.eval_ns_total"),
            deadline_exceeded: registry.counter("serve.deadline_exceeded"),
            cancelled: registry.counter("serve.cancelled"),
            wal_records_logged: registry.counter("wal.records_logged"),
            wal_checkpoints: registry.counter("wal.checkpoints"),
            wal_checkpoint_failures: registry.counter("wal.checkpoint_failures"),
            cache_entries: registry.gauge("cache.entries"),
            cache_bytes_used: registry.gauge("cache.bytes_used"),
            cache_bytes_budget: registry.gauge("cache.bytes_budget"),
            eval_level_ns: registry.histogram("eval.level", "ns"),
            eval_frontier: registry.histogram("eval.frontier", "nodes"),
            queue_wait: registry.histogram("serve.queue_wait", "ns"),
        }
    }

    /// Refreshes the cache occupancy gauges; called at every cache
    /// mutation site, under the state lock that guards the cache.
    fn sync_cache_gauges(&self, cache: &ResultCache) {
        self.cache_entries.set(cache.len() as u64);
        self.cache_bytes_used.set(cache.bytes() as u64);
    }
}

/// Stable lowercase name of a resolved strategy, for traces.
fn strategy_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Forward => "forward",
        Strategy::Backward => "backward",
        Strategy::Bidirectional => "bidirectional",
        _ => "auto",
    }
}

/// Stable lowercase name of an execution mode, for traces.
fn mode_name(mode: EvalMode) -> &'static str {
    match mode {
        EvalMode::Sequential => "sequential",
        EvalMode::IntraQuery => "intra",
        EvalMode::Batch => "batch",
    }
}

/// State of an in-flight ticket.
enum TicketState {
    /// The owning thread is still evaluating.
    Pending,
    /// Evaluation finished; every waiter gets this shared result.
    Done(Arc<BitSet>),
    /// The owner unwound (panic) or the ticket was invalidated before
    /// completion: waiters must re-admit instead of hanging.
    Abandoned,
}

/// Ticket one thread evaluates against while duplicates wait.
struct InFlight {
    slot: Mutex<TicketState>,
    ready: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            slot: Mutex::new(TicketState::Pending),
            ready: Condvar::new(),
        }
    }

    /// Blocks until the owner publishes (`Some`) or abandons (`None`).
    fn wait(&self) -> Option<Arc<BitSet>> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            match &*slot {
                TicketState::Pending => slot = self.ready.wait(slot).unwrap(),
                TicketState::Done(result) => return Some(result.clone()),
                TicketState::Abandoned => return None,
            }
        }
    }

    /// [`InFlight::wait`] honoring the waiter's own cancel token: a
    /// coalesced submission with a deadline must not inherit its owner's
    /// (possibly unbounded) budget. Timed condvar waits bounded by the
    /// token's deadline (and a polling cap so a bare drain flag is seen
    /// promptly) turn a tripped token into an `Err` verdict while the
    /// owner keeps evaluating for its other waiters.
    fn wait_interruptible(&self, cancel: &CancelToken) -> Result<Option<Arc<BitSet>>, Interrupt> {
        if cancel.is_never() {
            return Ok(self.wait());
        }
        const FLAG_POLL: Duration = Duration::from_millis(20);
        let mut slot = self.slot.lock().unwrap();
        loop {
            match &*slot {
                TicketState::Done(result) => return Ok(Some(result.clone())),
                TicketState::Abandoned => return Ok(None),
                TicketState::Pending => {
                    cancel.check()?;
                    let wait = cancel
                        .deadline()
                        .map(|d| d.saturating_duration_since(Instant::now()).min(FLAG_POLL))
                        .unwrap_or(FLAG_POLL)
                        .max(Duration::from_millis(1));
                    slot = self.ready.wait_timeout(slot, wait).unwrap().0;
                }
            }
        }
    }

    fn complete(&self, result: Arc<BitSet>) {
        *self.slot.lock().unwrap() = TicketState::Done(result);
        self.ready.notify_all();
    }

    /// Marks a never-completed ticket abandoned and wakes its waiters.
    fn abandon(&self) {
        let mut slot = self.slot.lock().unwrap();
        if matches!(*slot, TicketState::Pending) {
            *slot = TicketState::Abandoned;
            self.ready.notify_all();
        }
    }
}

/// Drop guard armed between admission and publication: if evaluation
/// unwinds, it deregisters the ticket (only if it is still the one in
/// the table — a rebuild may have drained it and a new owner taken the
/// key) and abandons it, so coalesced waiters retry instead of hanging
/// forever on a Condvar nobody will signal.
struct AdmissionGuard<'a> {
    service: &'a QueryService,
    key: &'a CacheKey,
    ticket: &'a Arc<InFlight>,
    armed: bool,
}

impl<'a> AdmissionGuard<'a> {
    fn new(service: &'a QueryService, key: &'a CacheKey, ticket: &'a Arc<InFlight>) -> Self {
        AdmissionGuard {
            service,
            key,
            ticket,
            armed: true,
        }
    }

    /// Publication succeeded; the guard has nothing left to do.
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Unwinding: tolerate a poisoned lock — the state itself is a
        // plain map and counters, always structurally valid.
        let mut inner = self
            .service
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner
            .inflight
            .get(self.key)
            .is_some_and(|current| Arc::ptr_eq(current, self.ticket))
        {
            inner.inflight.remove(self.key);
        }
        drop(inner);
        self.ticket.abandon();
    }
}

/// Everything the probe-or-admit decision must see atomically.
struct Inner {
    graph: Arc<GraphDb>,
    /// Bumped by every [`QueryService::rebuild_graph`]; in-flight
    /// evaluations skip their cache insert when it moved under them.
    epoch: u64,
    /// Per-label epochs, bumped by [`QueryService::apply_delta`] for
    /// every label a delta touches (and reset on rebuild — the global
    /// epoch already fences everything then). An in-flight evaluation
    /// captures the max over its live alphabet at admission and may
    /// publish to the cache only if that max is unchanged: a delta on
    /// labels the query never reads cannot have changed its answer, so
    /// disjoint-label evaluations keep their cache insert.
    label_epochs: Vec<u64>,
    cache: ResultCache,
    inflight: HashMap<CacheKey, Arc<InFlight>>,
    /// Whole-query plans keyed by canonical form: a fingerprint replay
    /// (same canonical query, cache-missed because of eviction or a
    /// binary source change) skips the planner's reverse/determinize and
    /// frontier simulation. Cleared on rebuild — plans embed the
    /// *graph's* label statistics — and cleared wholesale when it
    /// outgrows [`PLAN_CACHE_MAX`] entries (plans are tiny; the bound
    /// only guards against unbounded distinct-query streams).
    plans: HashMap<CanonicalQuery, Arc<QueryPlan>>,
}

impl Inner {
    /// Max per-label epoch over a live-alphabet slice (0 for ε-style
    /// queries with an empty one — no delta can ever stale those).
    fn label_stamp(&self, live: &[u32]) -> u64 {
        live.iter()
            .map(|&sym| self.label_epochs[sym as usize])
            .max()
            .unwrap_or(0)
    }
}

/// Plan-cache entry bound; see [`Inner::plans`].
const PLAN_CACHE_MAX: usize = 4096;

/// What the probe decided for one submission.
enum Admission {
    Done(Arc<BitSet>, Served),
    Wait(Arc<InFlight>),
    Evaluate {
        graph: Arc<GraphDb>,
        epoch: u64,
        /// Max per-label epoch over the query's live alphabet at
        /// admission; re-checked at publication (see [`Inner::label_epochs`]).
        label_stamp: u64,
        /// A resident superset query's answer (`L(q) ⊆ L(q′)` proven by
        /// antichain inclusion): a sound upper bound seeding the
        /// bounded monadic evaluator. `None` for binary keys and misses
        /// with no subsuming entry.
        upper: Option<Arc<BitSet>>,
        ticket: Arc<InFlight>,
    },
}

/// At most this many resident candidates get a (cheap, but not free)
/// antichain inclusion check per admitted miss; the live-alphabet
/// subset pre-filter runs first and is nearly free. Probing is a pure
/// optimization — capping it bounds admission latency, never
/// correctness.
const SUBSUMPTION_PROBE_MAX: usize = 8;

/// The multi-client RPQ query service. See the module docs for the
/// pipeline; construction is cheap apart from spawning the pool's
/// worker threads.
///
/// `QueryService` is `Sync`: share one instance (e.g. behind an `Arc`)
/// across every client thread.
///
/// ```
/// use pathlearn_automata::Regex;
/// use pathlearn_graph::graph::figure3_g0;
/// use pathlearn_server::{QueryService, ServeConfig};
///
/// let service = QueryService::new(figure3_g0(), ServeConfig::default());
/// let graph = service.graph();
/// let query = |expr: &str| Regex::parse(expr, graph.alphabet()).unwrap().to_dfa(3);
///
/// let first = service.query_monadic(&query("(a·b)*·c"));
/// // An equivalent spelling is a cache hit on the same entry.
/// let second = service.query_monadic(&query("c+a·b·(a·b)*·c"));
/// assert_eq!(first.result, second.result);
/// assert_eq!(service.stats().hits, 1);
/// ```
pub struct QueryService {
    inner: Mutex<Inner>,
    pool: EvalPool,
    intra_query_node_threshold: usize,
    strategy: Strategy,
    eval_holdoff: Duration,
    delta_compact_threshold: Option<usize>,
    observe_eval_levels: bool,
    /// The unified registry + trace sink this service owns; every layer
    /// above (front door, admin surface) shares it via
    /// [`QueryService::telemetry`].
    telemetry: Arc<Telemetry>,
    /// Live handles into `telemetry.registry` for the hot-path
    /// increments.
    counters: ServeCounters,
    /// Durability, when attached: the WAL the durable delta path logs
    /// into before applying. Locked **before** `inner` (and never while
    /// holding it), so log-then-apply is one serialized critical
    /// section per write.
    persistence: Mutex<Option<Persistence>>,
}

impl QueryService {
    /// Builds a service for `graph` under `config`.
    pub fn new(graph: GraphDb, config: ServeConfig) -> Self {
        let telemetry = Arc::new(Telemetry::new(config.slow_query_threshold));
        let counters = ServeCounters::register(&telemetry.registry);
        let cache = ResultCache::new(config.cache);
        cache.counters().register(&telemetry.registry);
        counters
            .cache_bytes_budget
            .set(cache.capacity_bytes() as u64);
        QueryService {
            inner: Mutex::new(Inner {
                label_epochs: vec![0; graph.alphabet().len()],
                graph: Arc::new(graph),
                epoch: 0,
                cache,
                inflight: HashMap::new(),
                plans: HashMap::new(),
            }),
            pool: EvalPool::new(config.threads).with_step_policy(config.step_policy),
            intra_query_node_threshold: config.intra_query_node_threshold,
            strategy: config.strategy,
            eval_holdoff: config.eval_holdoff,
            delta_compact_threshold: config.delta_compact_threshold,
            observe_eval_levels: config.observe_eval_levels,
            telemetry,
            counters,
            persistence: Mutex::new(None),
        }
    }

    /// The service's telemetry bundle: the unified [`MetricsRegistry`]
    /// every `serve.*` / `cache.*` / `wal.*` / `eval.*` metric lives in
    /// (the front door adds its `net.*` family to the same registry)
    /// and the trace sink behind the `/slow` admin page.
    ///
    /// [`MetricsRegistry`]: crate::telemetry::MetricsRegistry
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.telemetry.clone()
    }

    /// WAL status for readiness reporting, when persistence is
    /// attached: `(wal_records, checkpoint_threshold)`.
    pub fn persistence_status(&self) -> Option<(u64, u64)> {
        self.persistence
            .lock()
            .unwrap()
            .as_ref()
            .map(|p| (p.wal_records() as u64, p.checkpoint_threshold() as u64))
    }

    /// Attaches an open snapshot+WAL pair (see
    /// [`crate::wal::Persistence::recover`]). From now on
    /// [`QueryService::apply_delta_durable`] logs every batch before
    /// applying it, and checkpoints past the WAL's record threshold.
    pub fn attach_persistence(&self, persistence: Persistence) {
        *self.persistence.lock().unwrap() = Some(persistence);
    }

    /// Whether a persistence layer is attached.
    pub fn is_durable(&self) -> bool {
        self.persistence.lock().unwrap().is_some()
    }

    /// The currently served graph (the `Arc` stays valid across
    /// rebuilds for results already in hand).
    pub fn graph(&self) -> Arc<GraphDb> {
        self.inner.lock().unwrap().graph.clone()
    }

    /// Snapshot of the aggregate service counters — a view over the
    /// live telemetry registry handles (no state lock taken).
    pub fn stats(&self) -> ServeStats {
        let c = &self.counters;
        ServeStats {
            hits: c.hits.get(),
            misses: c.misses.get(),
            coalesced: c.coalesced.get(),
            batch_deduped: c.batch_deduped.get(),
            invalidations: c.invalidations.get(),
            deltas_applied: c.deltas_applied.get(),
            label_invalidations: c.label_invalidations.get(),
            subsumption_reuses: c.subsumption_reuses.get(),
            compactions: c.compactions.get(),
            sequential_evals: c.sequential_evals.get(),
            intra_evals: c.intra_evals.get(),
            batch_evals: c.batch_evals.get(),
            forward_evals: c.forward_evals.get(),
            backward_evals: c.backward_evals.get(),
            bidirectional_evals: c.bidirectional_evals.get(),
            eval_ns_total: c.eval_ns_total.get(),
            deadline_exceeded: c.deadline_exceeded.get(),
            cancelled: c.cancelled.get(),
        }
    }

    /// Snapshot of the result cache's own counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.lock().unwrap().cache.stats()
    }

    /// `(resident entries, resident bytes)` of the result cache.
    pub fn cache_usage(&self) -> (usize, usize) {
        let inner = self.inner.lock().unwrap();
        (inner.cache.len(), inner.cache.bytes())
    }

    /// Capacity-planning estimate: how many answers for the **current
    /// graph** the cache's byte budget can hold
    /// ([`GraphDb::result_bytes`] per monadic/binary result, ignoring
    /// the small per-entry overhead).
    pub fn cache_capacity_results(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.cache.capacity_bytes() / inner.graph.result_bytes().max(1)
    }

    /// The evaluation pool width.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Swaps in a rebuilt graph: bumps the epoch and clears the result
    /// cache **and the in-flight table** in one atomic step, so no
    /// post-rebuild submission can see a pre-rebuild answer — neither
    /// from the cache nor by coalescing onto an old-graph evaluation.
    /// Evaluations already in flight complete against the old graph for
    /// the callers that asked while it was current (their drained
    /// tickets still get completed), but they do not populate the cache
    /// and no new waiter can join them.
    pub fn rebuild_graph(&self, graph: GraphDb) {
        let mut inner = self.inner.lock().unwrap();
        // The global epoch bump fences every in-flight publish, so the
        // per-label clocks restart at zero (sized to the new alphabet).
        inner.label_epochs = vec![0; graph.alphabet().len()];
        inner.graph = Arc::new(graph);
        inner.epoch += 1;
        inner.cache.clear();
        // Plans embed per-label statistics of the outgoing graph.
        inner.plans.clear();
        // Drain, do not abandon: the old owners still hold their
        // tickets and will complete them for their pre-rebuild waiters;
        // draining only stops *new* submissions from coalescing on.
        inner.inflight.clear();
        self.counters.sync_cache_gauges(&inner.cache);
        self.counters.invalidations.inc();
    }

    /// Patches the served graph with an edge-delta batch —
    /// `(G ∖ remove) ∪ add`, see [`GraphDb::with_delta`] — instead of
    /// rebuilding it, and invalidates **only** the cache entries and
    /// in-flight coalescing targets whose live alphabet intersects the
    /// delta's touched labels (module docs, *Edge deltas*). Entries over
    /// disjoint labels keep serving hits: their answers are provably
    /// unchanged. The plan cache survives (plans are tuning, not
    /// truth), and the overlay is folded into a fresh CSR once it
    /// outgrows [`ServeConfig::delta_compact_threshold`].
    ///
    /// Returns the applied outcome; fails (changing nothing) only on
    /// endpoints or labels the frozen graph does not know.
    pub fn apply_delta(
        &self,
        add: &[(NodeId, Symbol, NodeId)],
        remove: &[(NodeId, Symbol, NodeId)],
    ) -> Result<DeltaApplied, DeltaError> {
        let mut inner = self.inner.lock().unwrap();
        let mut patched = inner.graph.with_delta(add, remove)?;
        // Touched = labels named by the batch, deduped. (A fully
        // cancelled no-op batch still counts as touching its labels:
        // callers asked for a write fence, they get one.)
        let mut touched: Vec<Symbol> = add.iter().chain(remove).map(|&(_, sym, _)| sym).collect();
        touched.sort_unstable_by_key(|sym| sym.index());
        touched.dedup();
        for &sym in &touched {
            inner.label_epochs[sym.index()] += 1;
        }
        let threshold = self
            .delta_compact_threshold
            .unwrap_or_else(|| (inner.graph.num_edges() / 8).max(1024));
        let compacted = patched.delta_edges() > threshold;
        if compacted {
            patched = patched.compact();
            self.counters.compactions.inc();
        }
        inner.graph = Arc::new(patched);
        let invalidated = inner.cache.invalidate_labels(&touched);
        self.counters.label_invalidations.add(invalidated as u64);
        // Drain (not abandon) the in-flight tickets the delta can have
        // staled, exactly as a rebuild drains all of them: their owners
        // still complete for pre-delta waiters, but new submissions
        // must re-evaluate instead of coalescing onto a stale run. The
        // publication stamp check makes their cache insert a no-op.
        inner
            .inflight
            .retain(|key, _| !intersects(&live_alphabet(&key.query), &touched));
        self.counters.sync_cache_gauges(&inner.cache);
        self.counters.deltas_applied.inc();
        Ok(DeltaApplied {
            invalidated,
            compacted,
            delta_edges: inner.graph.delta_edges(),
        })
    }

    /// [`QueryService::apply_delta`] with durability: when a
    /// persistence layer is attached ([`QueryService::attach_persistence`]),
    /// the batch is validated against the served graph, appended to the
    /// write-ahead log, and **fsynced** — and only then applied. A
    /// caller that sees `Ok` therefore holds a write that survives a
    /// crash; a caller that sees `Err` knows the graph is unchanged
    /// (a batch that fails validation is never logged, and a batch
    /// whose log append fails is never applied).
    ///
    /// After a successful apply the WAL is checkpointed if it has grown
    /// past its record threshold (fresh snapshot + truncate); a failed
    /// checkpoint does **not** fail the write — the batch is already
    /// durable in the WAL — it is reported on stderr and retried on
    /// the next write.
    ///
    /// Without attached persistence this is exactly [`QueryService::apply_delta`].
    pub fn apply_delta_durable(
        &self,
        add: &[(NodeId, Symbol, NodeId)],
        remove: &[(NodeId, Symbol, NodeId)],
    ) -> Result<DeltaApplied, DeltaCommitError> {
        let mut persistence = self.persistence.lock().unwrap();
        let Some(persistence) = persistence.as_mut() else {
            return self
                .apply_delta(add, remove)
                .map_err(DeltaCommitError::Rejected);
        };
        // Validate before logging, so the WAL never holds a batch that
        // replay would reject. (The persistence lock is held across
        // validate → log → apply, serializing durable writes; the
        // brief `inner` lock inside respects the persistence-before-
        // inner ordering.)
        {
            let graph = self.graph();
            let (num_nodes, alphabet_len) = (graph.num_nodes(), graph.alphabet().len());
            for &(src, sym, dst) in add.iter().chain(remove) {
                for node in [src, dst] {
                    if node as usize >= num_nodes {
                        return Err(DeltaCommitError::Rejected(DeltaError::NodeOutOfRange {
                            node,
                            num_nodes,
                        }));
                    }
                }
                if sym.index() >= alphabet_len {
                    return Err(DeltaCommitError::Rejected(DeltaError::SymbolOutOfRange {
                        symbol: sym,
                        alphabet_len,
                    }));
                }
            }
        }
        persistence
            .log_batch(add, remove)
            .map_err(DeltaCommitError::Wal)?;
        self.counters.wal_records_logged.inc();
        let applied = self
            .apply_delta(add, remove)
            .map_err(DeltaCommitError::Rejected)?;
        if persistence.wal_records() > persistence.checkpoint_threshold() {
            // Compact only when actually checkpointing — folding the
            // overlay into a fresh CSR is the expensive part.
            match persistence.maybe_checkpoint(&self.graph().compact()) {
                Ok(checkpointed) => {
                    if checkpointed {
                        self.counters.wal_checkpoints.inc();
                    }
                }
                Err(error) => {
                    // Best-effort: the write is already durable in the WAL.
                    self.counters.wal_checkpoint_failures.inc();
                    eprintln!("warning: checkpoint failed (will retry on next write): {error}");
                }
            }
        }
        Ok(applied)
    }

    /// Serves the monadic query `q(G)`. Equal to
    /// [`pathlearn_graph::eval::eval_monadic`] on the current graph,
    /// bit-for-bit, however it is served.
    pub fn query_monadic(&self, query: &Dfa) -> QueryResponse {
        self.serve(CacheKey::monadic(CanonicalQuery::new(query)))
    }

    /// Serves binary semantics from `source`. Equal to
    /// [`pathlearn_graph::eval::eval_binary_from`]. Sources outside the
    /// current graph yield the empty set.
    pub fn query_binary_from(&self, query: &Dfa, source: NodeId) -> QueryResponse {
        self.serve(CacheKey::binary(CanonicalQuery::new(query), source))
    }

    /// Pre-canonicalized monadic entry point: lets callers that already
    /// hold a [`CanonicalQuery`] (e.g. a planner layer) skip the
    /// minimize pass.
    pub fn query_monadic_canonical(&self, query: CanonicalQuery) -> QueryResponse {
        self.serve(CacheKey::monadic(query))
    }

    /// Pre-canonicalized binary entry point (see
    /// [`QueryService::query_monadic_canonical`]).
    pub fn query_binary_canonical(&self, query: CanonicalQuery, source: NodeId) -> QueryResponse {
        self.serve(CacheKey::binary(query, source))
    }

    /// [`QueryService::query_monadic`] under a cancel token: the token
    /// is consulted before admission, once per BFS level during
    /// evaluation, and while waiting on a coalesced ticket. A tripped
    /// token returns the [`Interrupt`] verdict — counted in
    /// [`ServeStats::deadline_exceeded`] / [`ServeStats::cancelled`] —
    /// and, when this caller owned the evaluation, abandons the ticket
    /// so coalesced waiters re-admit instead of hanging.
    pub fn query_monadic_interruptible(
        &self,
        query: &Dfa,
        cancel: &CancelToken,
    ) -> Result<QueryResponse, Interrupt> {
        self.serve_interruptible(CacheKey::monadic(CanonicalQuery::new(query)), cancel)
    }

    /// [`QueryService::query_binary_from`] under a cancel token (see
    /// [`QueryService::query_monadic_interruptible`]).
    pub fn query_binary_from_interruptible(
        &self,
        query: &Dfa,
        source: NodeId,
        cancel: &CancelToken,
    ) -> Result<QueryResponse, Interrupt> {
        self.serve_interruptible(CacheKey::binary(CanonicalQuery::new(query), source), cancel)
    }

    /// Pre-canonicalized [`QueryService::query_monadic_interruptible`]
    /// — the network front door's hot path (it canonicalizes once at
    /// frame-decode time to register the fingerprint).
    pub fn query_monadic_canonical_interruptible(
        &self,
        query: CanonicalQuery,
        cancel: &CancelToken,
    ) -> Result<QueryResponse, Interrupt> {
        self.serve_interruptible(CacheKey::monadic(query), cancel)
    }

    /// Pre-canonicalized [`QueryService::query_binary_from_interruptible`].
    pub fn query_binary_canonical_interruptible(
        &self,
        query: CanonicalQuery,
        source: NodeId,
        cancel: &CancelToken,
    ) -> Result<QueryResponse, Interrupt> {
        self.serve_interruptible(CacheKey::binary(query, source), cancel)
    }

    /// [`QueryService::query_monadic_canonical_interruptible`] carrying
    /// the time the submission already spent in an admission queue
    /// before evaluation could start — the network front door's worker
    /// threads pass the measured wait; it lands in the query's trace
    /// and the `serve.queue_wait` histogram.
    pub fn query_monadic_canonical_queued(
        &self,
        query: CanonicalQuery,
        cancel: &CancelToken,
        queue_wait: Duration,
    ) -> Result<QueryResponse, Interrupt> {
        self.serve_queued(CacheKey::monadic(query), cancel, queue_wait)
    }

    /// Binary twin of [`QueryService::query_monadic_canonical_queued`].
    pub fn query_binary_canonical_queued(
        &self,
        query: CanonicalQuery,
        source: NodeId,
        cancel: &CancelToken,
        queue_wait: Duration,
    ) -> Result<QueryResponse, Interrupt> {
        self.serve_queued(CacheKey::binary(query, source), cancel, queue_wait)
    }

    fn serve_queued(
        &self,
        key: CacheKey,
        cancel: &CancelToken,
        queue_wait: Duration,
    ) -> Result<QueryResponse, Interrupt> {
        let queue_wait_ns = queue_wait.as_nanos() as u64;
        self.counters.queue_wait.record(queue_wait_ns);
        let kind = match key.kind {
            QueryKind::Monadic => "monadic",
            QueryKind::Binary(_) => "binary",
        };
        let trace = TraceBuilder::new(key.query.fingerprint(), kind, queue_wait_ns);
        self.serve_with_trace(key, cancel, trace)
    }

    fn respond(key: &CacheKey, result: Arc<BitSet>, served: Served) -> QueryResponse {
        QueryResponse {
            result,
            served,
            fingerprint: key.query.fingerprint(),
            canonical_states: key.query.num_states(),
        }
    }

    /// Probe-or-admit under one lock acquisition.
    fn admit(&self, key: &CacheKey) -> Admission {
        let mut inner = self.inner.lock().unwrap();
        if let Some(result) = inner.cache.get(key) {
            self.counters.hits.inc();
            return Admission::Done(result, Served::Hit);
        }
        if let Some(ticket) = inner.inflight.get(key).cloned() {
            self.counters.coalesced.inc();
            return Admission::Wait(ticket);
        }
        let live = live_alphabet(&key.query);
        let upper = match key.kind {
            QueryKind::Monadic => Self::probe_subsumption(&inner, key, &live),
            QueryKind::Binary(_) => None,
        };
        if upper.is_some() {
            self.counters.subsumption_reuses.inc();
        }
        let ticket = Arc::new(InFlight::new());
        inner.inflight.insert(key.clone(), ticket.clone());
        Admission::Evaluate {
            graph: inner.graph.clone(),
            epoch: inner.epoch,
            label_stamp: inner.label_stamp(&live),
            upper,
            ticket,
        }
    }

    /// A resident monadic superset of `key.query`, if antichain
    /// inclusion proves one within [`SUBSUMPTION_PROBE_MAX`] checks:
    /// `L(q) ⊆ L(q′)` makes the cached `q′(G)` a sound upper bound for
    /// evaluating `q` on **any** graph — including the graph the caller
    /// captured even if a disjoint-label delta lands in between,
    /// because label-aware invalidation keeps only entries whose bits
    /// are identical across those versions.
    fn probe_subsumption(inner: &Inner, key: &CacheKey, live: &[u32]) -> Option<Arc<BitSet>> {
        let dfa = key.query.dfa();
        let mut nfa = None;
        let mut checks = 0;
        for (candidate, candidate_live, result) in inner.cache.iter_monadic() {
            if checks >= SUBSUMPTION_PROBE_MAX {
                break;
            }
            // Necessary condition, nearly free: a symbol q steps
            // through occurs in some accepted word of q, which must
            // also be accepted by any superset — so it must be live
            // there too. (Also screens out foreign alphabet sizes,
            // which the antichain check would assert on.)
            if candidate.dfa().alphabet_len() != dfa.alphabet_len()
                || !live
                    .iter()
                    .all(|sym| candidate_live.binary_search(sym).is_ok())
            {
                continue;
            }
            checks += 1;
            let nfa = nfa.get_or_insert_with(|| dfa.to_nfa());
            if nfa_included_in(nfa, &candidate.dfa().to_nfa()).is_ok() {
                return Some(result.clone());
            }
        }
        None
    }

    fn serve(&self, key: CacheKey) -> QueryResponse {
        match self.serve_interruptible(key, &CancelToken::never()) {
            Ok(response) => response,
            Err(interrupt) => unreachable!("never-token submission interrupted: {interrupt}"),
        }
    }

    /// Records an interrupted submission in the counters and forwards
    /// the verdict.
    fn note_interrupt(&self, interrupt: Interrupt) -> Interrupt {
        match interrupt {
            Interrupt::Deadline => self.counters.deadline_exceeded.inc(),
            Interrupt::Cancelled => self.counters.cancelled.inc(),
        }
        interrupt
    }

    /// [`QueryService::note_interrupt`] sealing and recording the
    /// submission's trace with the verdict as its outcome.
    fn note_interrupt_traced(
        &self,
        interrupt: Interrupt,
        trace: TraceBuilder,
        key: &CacheKey,
    ) -> Interrupt {
        let outcome = match interrupt {
            Interrupt::Deadline => "deadline",
            Interrupt::Cancelled => "cancelled",
        };
        self.telemetry.traces.record(trace.finish(
            outcome,
            "-",
            "-",
            Vec::new(),
            0,
            key.query.num_states() as u32,
        ));
        self.note_interrupt(interrupt)
    }

    /// Seals and records a successfully-served trace, feeding its level
    /// samples into the `eval.level` / `eval.frontier` histograms.
    fn record_trace(
        &self,
        trace: TraceBuilder,
        key: &CacheKey,
        served: Served,
        levels: Vec<pathlearn_graph::LevelSample>,
        result: &BitSet,
    ) {
        for sample in &levels {
            self.counters.eval_level_ns.record(sample.nanos);
            self.counters.eval_frontier.record(sample.frontier);
        }
        let (outcome, mode, strategy) = match served {
            Served::Hit => ("hit", "-", "-"),
            Served::Coalesced => ("coalesced", "-", "-"),
            Served::Evaluated { mode, strategy, .. } => {
                ("evaluated", mode_name(mode), strategy_name(strategy))
            }
        };
        self.telemetry.traces.record(trace.finish(
            outcome,
            mode,
            strategy,
            levels,
            result.len() as u64,
            key.query.num_states() as u32,
        ));
    }

    fn serve_interruptible(
        &self,
        key: CacheKey,
        cancel: &CancelToken,
    ) -> Result<QueryResponse, Interrupt> {
        let kind = match key.kind {
            QueryKind::Monadic => "monadic",
            QueryKind::Binary(_) => "binary",
        };
        let trace = TraceBuilder::new(key.query.fingerprint(), kind, 0);
        self.serve_with_trace(key, cancel, trace)
    }

    /// The serving loop, recording every outcome into `trace`. The
    /// trace is sealed exactly once per submission — with the served
    /// outcome, or the interrupt verdict.
    fn serve_with_trace(
        &self,
        key: CacheKey,
        cancel: &CancelToken,
        mut trace: TraceBuilder,
    ) -> Result<QueryResponse, Interrupt> {
        loop {
            if let Err(interrupt) = cancel.check() {
                return Err(self.note_interrupt_traced(interrupt, trace, &key));
            }
            match trace.span("cache_probe", || self.admit(&key)) {
                Admission::Done(result, served) => {
                    self.record_trace(trace, &key, served, Vec::new(), &result);
                    return Ok(Self::respond(&key, result, served));
                }
                Admission::Wait(ticket) => {
                    let begin = trace.span_begin();
                    let waited = ticket.wait_interruptible(cancel);
                    trace.span_end("coalesce_wait", begin);
                    match waited {
                        Ok(Some(result)) => {
                            self.record_trace(trace, &key, Served::Coalesced, Vec::new(), &result);
                            return Ok(Self::respond(&key, result, Served::Coalesced));
                        }
                        // The owner unwound before publishing: re-admit
                        // (this thread may become the new owner).
                        Ok(None) => continue,
                        Err(interrupt) => {
                            return Err(self.note_interrupt_traced(interrupt, trace, &key))
                        }
                    }
                }
                Admission::Evaluate {
                    graph,
                    epoch,
                    label_stamp,
                    upper,
                    ticket,
                } => {
                    let mut guard = AdmissionGuard::new(self, &key, &ticket);
                    let start = Instant::now();
                    let eval_begin = trace.span_begin();
                    let (evaluated, levels) = if self.observe_eval_levels {
                        pathlearn_graph::collect_levels(|| {
                            self.evaluate_interruptible(
                                &graph,
                                &key,
                                epoch,
                                upper.as_deref(),
                                Some(&mut trace),
                                cancel,
                            )
                        })
                    } else {
                        (
                            self.evaluate_interruptible(
                                &graph,
                                &key,
                                epoch,
                                upper.as_deref(),
                                Some(&mut trace),
                                cancel,
                            ),
                            Vec::new(),
                        )
                    };
                    trace.span_end("eval", eval_begin);
                    let (result, mode, strategy) = match evaluated {
                        Ok(outcome) => outcome,
                        Err(interrupt) => {
                            // The armed guard's drop deregisters the
                            // ticket and abandons it, so coalesced
                            // waiters re-admit (one may finish the job
                            // under its own, longer budget).
                            drop(guard);
                            return Err(self.note_interrupt_traced(interrupt, trace, &key));
                        }
                    };
                    let eval_ns = start.elapsed().as_nanos() as u64;
                    let result = Arc::new(result);
                    trace.span("publish", || {
                        self.publish(
                            &key,
                            &ticket,
                            (epoch, label_stamp),
                            result.clone(),
                            EvalOutcome { mode, strategy },
                            eval_ns,
                        )
                    });
                    guard.disarm();
                    let served = Served::Evaluated {
                        mode,
                        strategy,
                        eval_ns,
                    };
                    self.record_trace(trace, &key, served, levels, &result);
                    return Ok(Self::respond(&key, result, served));
                }
            }
        }
    }

    /// Executes one admitted query under the size heuristic.
    fn evaluate(
        &self,
        graph: &GraphDb,
        key: &CacheKey,
        epoch: u64,
    ) -> (BitSet, EvalMode, Strategy) {
        match self.evaluate_interruptible(graph, key, epoch, None, None, &CancelToken::never()) {
            Ok(outcome) => outcome,
            Err(interrupt) => unreachable!("never-token evaluation interrupted: {interrupt}"),
        }
    }

    /// The whole-query plan for `key`'s canonical form on `graph`:
    /// served from the plan cache on a canonical replay, computed (DFA
    /// reduce/reverse + direction estimate, outside the lock) and
    /// published otherwise. The epoch guard keeps an old-graph planning
    /// race from polluting the post-rebuild cache — a mismatched plan
    /// would still be *correct* (every strategy is bit-identical), just
    /// tuned to the wrong statistics.
    fn plan_for(&self, graph: &GraphDb, key: &CacheKey, epoch: u64) -> Arc<QueryPlan> {
        {
            let inner = self.inner.lock().unwrap();
            if inner.epoch == epoch {
                if let Some(plan) = inner.plans.get(&key.query) {
                    return plan.clone();
                }
            }
        }
        let plan = Arc::new(plan_query_forced(key.query.dfa(), graph, self.strategy));
        let mut inner = self.inner.lock().unwrap();
        if inner.epoch == epoch {
            if inner.plans.len() >= PLAN_CACHE_MAX {
                inner.plans.clear();
            }
            inner
                .plans
                .entry(key.query.clone())
                .or_insert_with(|| plan.clone());
        }
        plan
    }

    /// [`QueryService::evaluate`] under a cancel token, forwarded into
    /// the per-BFS-level checks of the interruptible evaluators. Every
    /// admitted query is dispatched through its [`QueryPlan`]; the
    /// returned [`Strategy`] is the resolved direction (never `Auto`).
    /// When a `trace` builder is threaded in, the planning pass is
    /// recorded as its own span.
    fn evaluate_interruptible(
        &self,
        graph: &GraphDb,
        key: &CacheKey,
        epoch: u64,
        upper: Option<&BitSet>,
        trace: Option<&mut TraceBuilder>,
        cancel: &CancelToken,
    ) -> Result<(BitSet, EvalMode, Strategy), Interrupt> {
        // Sequential evaluations run on the calling client thread; a
        // thread-local scratch keeps the serving hot path free of the
        // per-miss bitset allocations a fresh scratch would zero
        // (scratch reuse never changes results — `EvalScratch` docs).
        thread_local! {
            static SCRATCH: std::cell::RefCell<PlanScratch> =
                std::cell::RefCell::new(PlanScratch::new());
        }
        // Subsumption-bounded warm start: a cached superset's answer
        // lets the forward monadic engine stop as soon as its monotone
        // lower bound meets the bound (often level 0 for an empty or
        // tiny superset answer). Bit-exact either way, so it bypasses
        // the planner — the bound is typically worth more than the
        // direction choice, and the plan would be moot at exit time.
        if let (QueryKind::Monadic, Some(upper)) = (&key.kind, upper) {
            if upper.capacity() == graph.num_nodes() {
                let result = SCRATCH.with(|scratch| {
                    eval_monadic_bounded_interruptible(
                        scratch.borrow_mut().eval_scratch(),
                        key.query.dfa(),
                        graph,
                        upper,
                        self.pool.step_policy(),
                        cancel,
                    )
                })?;
                return Ok((result, EvalMode::Sequential, Strategy::Forward));
            }
        }
        let plan = {
            let begin = trace.as_deref().map(TraceBuilder::span_begin);
            let plan = self.plan_for(graph, key, epoch);
            if let (Some(trace), Some(begin)) = (trace, begin) {
                trace.span_end("plan", begin);
            }
            plan
        };
        let intra = self.pool.is_parallel() && graph.num_nodes() >= self.intra_query_node_threshold;
        match key.kind {
            QueryKind::Monadic => {
                let strategy = plan.monadic_strategy();
                if intra {
                    let result = self.pool.eval_monadic_planned(
                        &mut pathlearn_graph::IntraScratch::new(),
                        &plan,
                        graph,
                        cancel,
                    )?;
                    Ok((result, EvalMode::IntraQuery, strategy))
                } else {
                    let result = SCRATCH.with(|scratch| {
                        eval_monadic_planned_interruptible(
                            &mut scratch.borrow_mut(),
                            &plan,
                            graph,
                            self.pool.step_policy(),
                            cancel,
                        )
                    })?;
                    Ok((result, EvalMode::Sequential, strategy))
                }
            }
            QueryKind::Binary(source) => {
                if (source as usize) >= graph.num_nodes() {
                    // Out-of-graph source (e.g. submitted before a
                    // rebuild shrank the graph): the empty answer.
                    return Ok((
                        BitSet::new(graph.num_nodes()),
                        EvalMode::Sequential,
                        Strategy::Forward,
                    ));
                }
                let strategy = plan.binary_strategy();
                if intra {
                    let result = self.pool.eval_binary_planned(
                        &mut pathlearn_graph::IntraScratch::new(),
                        &plan,
                        graph,
                        source,
                        cancel,
                    )?;
                    Ok((result, EvalMode::IntraQuery, strategy))
                } else {
                    let result = SCRATCH.with(|scratch| {
                        eval_binary_planned_interruptible(
                            &mut scratch.borrow_mut(),
                            &plan,
                            graph,
                            source,
                            self.pool.step_policy(),
                            cancel,
                        )
                    })?;
                    Ok((result, EvalMode::Sequential, strategy))
                }
            }
        }
    }

    /// Publishes an evaluated result: cache insert (stamp-guarded),
    /// stats, in-flight removal, ticket completion — in that order, so a
    /// new submission arriving after the ticket is gone finds the cache
    /// entry instead. The removal is guarded by ticket identity: after a
    /// rebuild drained the table, the key may already belong to a new
    /// owner whose ticket must not be evicted by the old one.
    ///
    /// `stamps` is the `(epoch, label_stamp)` pair captured at
    /// admission: the insert happens only if the global epoch (rebuild
    /// fence) **and** the max per-label epoch over the query's live
    /// alphabet (delta fence) are both unchanged — a delta on labels
    /// this query never reads leaves the stamp alone, so its result is
    /// still published.
    fn publish(
        &self,
        key: &CacheKey,
        ticket: &Arc<InFlight>,
        stamps: (u64, u64),
        result: Arc<BitSet>,
        outcome: EvalOutcome,
        eval_ns: u64,
    ) {
        let (epoch, label_stamp) = stamps;
        let EvalOutcome { mode, strategy } = outcome;
        if !self.eval_holdoff.is_zero() {
            std::thread::sleep(self.eval_holdoff);
        }
        self.counters.misses.inc();
        match mode {
            EvalMode::Sequential => self.counters.sequential_evals.inc(),
            EvalMode::IntraQuery => self.counters.intra_evals.inc(),
            EvalMode::Batch => self.counters.batch_evals.inc(),
        }
        match strategy {
            Strategy::Backward => self.counters.backward_evals.inc(),
            Strategy::Bidirectional => self.counters.bidirectional_evals.inc(),
            _ => self.counters.forward_evals.inc(),
        }
        self.counters.eval_ns_total.add(eval_ns);
        {
            let mut inner = self.inner.lock().unwrap();
            if inner.epoch == epoch && inner.label_stamp(&live_alphabet(&key.query)) == label_stamp
            {
                inner.cache.insert(key.clone(), result.clone(), eval_ns);
                self.counters.sync_cache_gauges(&inner.cache);
            }
            if inner
                .inflight
                .get(key)
                .is_some_and(|current| Arc::ptr_eq(current, ticket))
            {
                inner.inflight.remove(key);
            }
        }
        ticket.complete(result);
    }

    /// Serves a whole batch of monadic queries, coalescing duplicates
    /// **within the batch** deterministically (counted as
    /// `batch_deduped`) and fanning the unique misses out over the pool
    /// ([`EvalPool::eval_monadic_batch`], mode `Batch`) when there are
    /// at least two; a lone miss falls back to the single-query
    /// heuristic. `result[i]` equals `query_monadic(&queries[i]).result`
    /// bit-for-bit.
    pub fn query_monadic_batch(&self, queries: &[Dfa]) -> Vec<Arc<BitSet>> {
        let keys: Vec<CacheKey> = queries
            .iter()
            .map(|q| CacheKey::monadic(CanonicalQuery::new(q)))
            .collect();
        let mut results: Vec<Option<Arc<BitSet>>> = vec![None; keys.len()];
        // Unique keys this call owns (with their admission-time label
        // stamps), with every batch position mapping to them; positions
        // waiting on other threads' in-flight work.
        #[allow(clippy::type_complexity)]
        let mut owned: Vec<(CacheKey, Arc<InFlight>, u64, Vec<usize>)> = Vec::new();
        let mut waits: Vec<(usize, Arc<InFlight>)> = Vec::new();
        let (graph, epoch) = {
            let mut inner = self.inner.lock().unwrap();
            let mut local: HashMap<&CacheKey, usize> = HashMap::new();
            for (i, key) in keys.iter().enumerate() {
                if let Some(result) = inner.cache.get(key) {
                    self.counters.hits.inc();
                    results[i] = Some(result);
                } else if let Some(&slot) = local.get(key) {
                    self.counters.batch_deduped.inc();
                    owned[slot].3.push(i);
                } else if let Some(ticket) = inner.inflight.get(key).cloned() {
                    self.counters.coalesced.inc();
                    waits.push((i, ticket));
                } else {
                    let ticket = Arc::new(InFlight::new());
                    inner.inflight.insert(key.clone(), ticket.clone());
                    local.insert(key, owned.len());
                    let stamp = inner.label_stamp(&live_alphabet(&key.query));
                    owned.push((key.clone(), ticket, stamp, vec![i]));
                }
            }
            (inner.graph.clone(), inner.epoch)
        };

        // Abandon every owned ticket if the fan-out below unwinds, so
        // concurrent waiters retry instead of hanging.
        let mut guards: Vec<AdmissionGuard> = owned
            .iter()
            .map(|(key, ticket, ..)| AdmissionGuard::new(self, key, ticket))
            .collect();
        if owned.len() >= 2 {
            // Real batch: canonical DFAs through the pool fan-out.
            // Individual timings are not observable inside the pool, so
            // the batch wall time is attributed to the cache per query
            // in proportion to its O(|E|·|Q|) work bound
            // ([`GraphDb::eval_cost_bound`]) — a 5-state query carries
            // more of the cost than a 1-state one.
            let dfas: Vec<Dfa> = owned.iter().map(|(k, ..)| k.query.dfa().clone()).collect();
            let start = Instant::now();
            let evaluated = self.pool.eval_monadic_batch(&dfas, &graph);
            let total_ns = start.elapsed().as_nanos() as u64;
            let bounds: Vec<u64> = owned
                .iter()
                .map(|(k, ..)| graph.eval_cost_bound(k.query.num_states()))
                .collect();
            let total_bound = bounds.iter().sum::<u64>().max(1);
            for (slot, ((key, ticket, stamp, positions), value)) in
                owned.iter().zip(evaluated).enumerate()
            {
                let cost_ns =
                    (total_ns as u128 * bounds[slot] as u128 / total_bound as u128) as u64;
                let value = Arc::new(value);
                // Batch fan-outs run the forward engine (per-query
                // planning would serialize the batch on the plan cache).
                self.publish(
                    key,
                    ticket,
                    (epoch, *stamp),
                    value.clone(),
                    EvalOutcome {
                        mode: EvalMode::Batch,
                        strategy: Strategy::Forward,
                    },
                    cost_ns,
                );
                guards[slot].disarm();
                for &i in positions {
                    results[i] = Some(value.clone());
                }
            }
        } else if let Some((key, ticket, stamp, positions)) = owned.first() {
            let start = Instant::now();
            let (value, mode, strategy) = self.evaluate(&graph, key, epoch);
            let eval_ns = start.elapsed().as_nanos() as u64;
            let value = Arc::new(value);
            self.publish(
                key,
                ticket,
                (epoch, *stamp),
                value.clone(),
                EvalOutcome { mode, strategy },
                eval_ns,
            );
            guards[0].disarm();
            for &i in positions {
                results[i] = Some(value.clone());
            }
        }
        drop(guards);

        for (i, ticket) in waits {
            results[i] = Some(match ticket.wait() {
                Some(result) => result,
                // The foreign owner unwound: serve this position
                // ourselves through the normal re-admission path.
                None => self.serve(keys[i].clone()).result,
            });
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every batch position served"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlearn_automata::Regex;
    use pathlearn_graph::eval::{eval_binary_from, eval_monadic};
    use pathlearn_graph::graph::figure3_g0;

    fn query(graph: &GraphDb, expr: &str) -> Dfa {
        Regex::parse(expr, graph.alphabet())
            .unwrap()
            .to_dfa(graph.alphabet().len())
    }

    #[test]
    fn serves_bit_identical_results_and_counts_hits() {
        let graph = figure3_g0();
        let service = QueryService::new(graph.clone(), ServeConfig::default());
        let q = query(&graph, "(a·b)*·c");
        let expected = eval_monadic(&q, &graph);
        let first = service.query_monadic(&q);
        assert_eq!(*first.result, expected);
        assert!(matches!(
            first.served,
            Served::Evaluated {
                mode: EvalMode::Sequential,
                ..
            }
        ));
        // Same query again: a hit on the same Arc.
        let second = service.query_monadic(&q);
        assert_eq!(second.served, Served::Hit);
        assert!(Arc::ptr_eq(&first.result, &second.result));
        // An equivalent spelling hits the same entry.
        let third = service.query_monadic(&query(&graph, "c+a·b·(a·b)*·c"));
        assert_eq!(third.served, Served::Hit);
        assert!(Arc::ptr_eq(&first.result, &third.result));
        assert_eq!(third.fingerprint, first.fingerprint);
        let stats = service.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn binary_results_are_cached_per_source() {
        let graph = figure3_g0();
        let service = QueryService::new(graph.clone(), ServeConfig::default());
        let q = query(&graph, "(a·b)*·c");
        for source in graph.nodes() {
            let response = service.query_binary_from(&q, source);
            assert_eq!(*response.result, eval_binary_from(&q, &graph, source));
        }
        // Second pass: all hits.
        for source in graph.nodes() {
            assert_eq!(service.query_binary_from(&q, source).served, Served::Hit);
        }
        let stats = service.stats();
        assert_eq!(stats.misses, graph.num_nodes() as u64);
        assert_eq!(stats.hits, graph.num_nodes() as u64);
        // An out-of-graph source is served (empty), defensively.
        let far = service.query_binary_from(&q, 10_000);
        assert!(far.result.is_empty());
    }

    #[test]
    fn batch_coalesces_duplicates_deterministically() {
        let graph = figure3_g0();
        let service = QueryService::new(graph.clone(), ServeConfig::default());
        let a = query(&graph, "a");
        let abc = query(&graph, "(a·b)*·c");
        let abc_variant = query(&graph, "c+a·b·(a·b)*·c"); // ≡ abc
        let batch = vec![a.clone(), abc.clone(), abc_variant, a.clone()];
        let results = service.query_monadic_batch(&batch);
        assert_eq!(*results[0], eval_monadic(&a, &graph));
        assert_eq!(*results[1], eval_monadic(&abc, &graph));
        assert!(Arc::ptr_eq(&results[1], &results[2]), "variant coalesced");
        assert!(Arc::ptr_eq(&results[0], &results[3]), "duplicate coalesced");
        let stats = service.stats();
        assert_eq!(stats.batch_deduped, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.batch_evals, 2);
        // Resubmitting the whole batch is pure hits.
        service.query_monadic_batch(&batch);
        assert_eq!(service.stats().hits, 4);
    }

    #[test]
    fn rebuild_invalidates_and_reevaluates() {
        let graph = figure3_g0();
        let service = QueryService::new(graph.clone(), ServeConfig::default());
        let q = query(&graph, "a");
        let before = service.query_monadic(&q);
        assert_eq!(service.cache_usage().0, 1);

        // Rebuild with one a-edge removed from v1: the answer changes.
        let mut builder = pathlearn_graph::GraphBuilder::with_alphabet(graph.alphabet().clone());
        for (src, sym, dst) in graph.edges() {
            let (src, dst) = (graph.node_name(src), graph.node_name(dst));
            if (src, dst) != ("v1", "v2") {
                builder.add_edge(src, graph.alphabet().name(sym), dst);
            }
        }
        let rebuilt = builder.build();
        let expected = eval_monadic(&query(&rebuilt, "a"), &rebuilt);
        service.rebuild_graph(rebuilt);
        assert_eq!(service.cache_usage(), (0, 0), "rebuild clears the cache");

        let after = service.query_monadic(&q);
        assert!(matches!(after.served, Served::Evaluated { .. }));
        assert_eq!(*after.result, expected);
        assert_ne!(*after.result, *before.result);
        assert_eq!(service.stats().invalidations, 1);
    }

    #[test]
    fn concurrent_duplicates_coalesce_onto_one_evaluation() {
        let graph = figure3_g0();
        let config = ServeConfig {
            // Hold published results back so every barrier-released
            // duplicate lands inside the in-flight window.
            eval_holdoff: Duration::from_millis(100),
            ..ServeConfig::default()
        };
        let service = Arc::new(QueryService::new(graph.clone(), config));
        let q = query(&graph, "(a+b)*·c");
        let expected = eval_monadic(&q, &graph);
        let clients = 4;
        let barrier = Arc::new(std::sync::Barrier::new(clients));
        let responses: Vec<QueryResponse> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let service = service.clone();
                    let barrier = barrier.clone();
                    let q = q.clone();
                    scope.spawn(move || {
                        barrier.wait();
                        service.query_monadic(&q)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for response in &responses {
            assert_eq!(*response.result, expected);
        }
        let stats = service.stats();
        assert_eq!(stats.misses, 1, "exactly one evaluation");
        assert_eq!(
            stats.coalesced + stats.hits,
            clients as u64 - 1,
            "every duplicate reused the one evaluation"
        );
        assert!(stats.coalesced >= 1, "at least one concurrent coalesce");
    }

    #[test]
    fn post_rebuild_submissions_never_coalesce_onto_old_graph_evals() {
        let graph = figure3_g0();
        let config = ServeConfig {
            // Keep the old-graph evaluation in flight across the
            // rebuild below.
            eval_holdoff: Duration::from_millis(300),
            ..ServeConfig::default()
        };
        let service = Arc::new(QueryService::new(graph.clone(), config));
        let q = query(&graph, "a");
        let old_expected = eval_monadic(&q, &graph);

        let mut builder = pathlearn_graph::GraphBuilder::with_alphabet(graph.alphabet().clone());
        builder.add_edge("x", "a", "y");
        let rebuilt = builder.build();
        let new_expected = eval_monadic(&q, &rebuilt);
        assert_ne!(old_expected, new_expected);

        let barrier = Arc::new(std::sync::Barrier::new(2));
        let old_response = {
            let service = service.clone();
            let barrier = barrier.clone();
            let q = q.clone();
            std::thread::spawn(move || {
                barrier.wait();
                service.query_monadic(&q)
            })
        };
        barrier.wait();
        // The owner is inside its 300ms publication holdoff; swap the
        // graph under it.
        std::thread::sleep(Duration::from_millis(100));
        service.rebuild_graph(rebuilt);

        // A post-rebuild submission must evaluate against the new
        // graph, not coalesce onto the drained old-graph ticket.
        let after = service.query_monadic(&q);
        assert!(
            matches!(after.served, Served::Evaluated { .. }),
            "coalesced onto a pre-rebuild evaluation: {:?}",
            after.served
        );
        assert_eq!(*after.result, new_expected);

        // The pre-rebuild caller still gets a consistent old-graph
        // answer, and the old evaluation never repopulated the cache:
        // the lone entry is the new graph's.
        let old_response = old_response.join().unwrap();
        assert_eq!(*old_response.result, old_expected);
        assert_eq!(service.cache_usage().0, 1);
        assert_eq!(service.query_monadic(&q).served, Served::Hit);
    }

    #[test]
    fn abandoned_tickets_wake_waiters_and_free_the_key() {
        let graph = figure3_g0();
        let service = QueryService::new(graph.clone(), ServeConfig::default());
        let q = query(&graph, "a");
        let key = CacheKey::monadic(CanonicalQuery::new(&q));
        // Become the owner, then simulate the owner unwinding before
        // publication: the armed guard's drop is exactly that path.
        let Admission::Evaluate { ticket, .. } = service.admit(&key) else {
            panic!("first admission must be an Evaluate");
        };
        let waiter = {
            let ticket = ticket.clone();
            std::thread::spawn(move || ticket.wait())
        };
        drop(AdmissionGuard::new(&service, &key, &ticket));
        assert!(
            waiter.join().unwrap().is_none(),
            "waiter must be released with an abandon signal, not hang"
        );
        // The key is free again: a fresh submission evaluates normally.
        let response = service.query_monadic(&q);
        assert!(matches!(response.served, Served::Evaluated { .. }));
        assert_eq!(*response.result, eval_monadic(&q, &graph));
        // Identity-guarded removal: after a first owner loses the key
        // (as a rebuild's drain does) and a second owner registers, the
        // first owner's late publish must not evict the second ticket.
        let bkey = CacheKey::binary(CanonicalQuery::new(&q), 0);
        let Admission::Evaluate {
            ticket: first,
            epoch,
            ..
        } = service.admit(&bkey)
        else {
            panic!("binary admission must be an Evaluate");
        };
        service.inner.lock().unwrap().inflight.remove(&bkey);
        let Admission::Evaluate { ticket: second, .. } = service.admit(&bkey) else {
            panic!("re-admission must be an Evaluate");
        };
        service.publish(
            &bkey,
            &first,
            (epoch.wrapping_add(1), 0), // stale epoch: no cache insert either
            Arc::new(BitSet::new(graph.num_nodes())),
            EvalOutcome {
                mode: EvalMode::Sequential,
                strategy: Strategy::Forward,
            },
            1,
        );
        assert!(
            service
                .inner
                .lock()
                .unwrap()
                .inflight
                .get(&bkey)
                .is_some_and(|t| Arc::ptr_eq(t, &second)),
            "late publish of a displaced ticket evicted the new owner"
        );
        drop(AdmissionGuard::new(&service, &bkey, &second));
    }

    #[test]
    fn interruptible_hooks_match_and_count_verdicts() {
        let graph = figure3_g0();
        let service = QueryService::new(graph.clone(), ServeConfig::default());
        let q = query(&graph, "(a·b)*·c");
        let never = CancelToken::never();
        // Never-token interruptible serving is the plain path.
        let first = service
            .query_monadic_interruptible(&q, &never)
            .expect("never token");
        assert_eq!(*first.result, eval_monadic(&q, &graph));
        let bin = service
            .query_binary_from_interruptible(&q, 0, &never)
            .expect("never token");
        assert_eq!(*bin.result, eval_binary_from(&q, &graph, 0));
        // An expired deadline is rejected before admission and counted.
        let expired = CancelToken::with_deadline(Instant::now());
        assert_eq!(
            service
                .query_monadic_interruptible(&query(&graph, "a"), &expired)
                .unwrap_err(),
            Interrupt::Deadline
        );
        // A tripped drain flag is the Cancelled verdict.
        let tripped = CancelToken::with_flag(Arc::new(std::sync::atomic::AtomicBool::new(true)));
        assert_eq!(
            service
                .query_monadic_interruptible(&query(&graph, "b"), &tripped)
                .unwrap_err(),
            Interrupt::Cancelled
        );
        let stats = service.stats();
        assert_eq!((stats.deadline_exceeded, stats.cancelled), (1, 1));
        // The rejected keys were never admitted: no dangling tickets,
        // and a later submission evaluates normally.
        assert!(service.inner.lock().unwrap().inflight.is_empty());
        assert!(matches!(
            service.query_monadic(&query(&graph, "a")).served,
            Served::Evaluated { .. }
        ));
        // Canonical variants agree with the Dfa-taking ones.
        let canonical = CanonicalQuery::new(&q);
        let via_canonical = service
            .query_monadic_canonical_interruptible(canonical.clone(), &never)
            .expect("never token");
        assert!(Arc::ptr_eq(&via_canonical.result, &first.result));
        let bin_canonical = service
            .query_binary_canonical_interruptible(canonical.clone(), 0, &never)
            .expect("never token");
        assert!(Arc::ptr_eq(&bin_canonical.result, &bin.result));
        assert_eq!(
            *service.query_binary_canonical(canonical, 1).result,
            eval_binary_from(&q, &graph, 1)
        );
    }

    #[test]
    fn coalesced_waiter_with_deadline_times_out_without_hurting_the_owner() {
        let graph = figure3_g0();
        let config = ServeConfig {
            // Keep the owner's publication far beyond the waiter's
            // budget.
            eval_holdoff: Duration::from_millis(300),
            ..ServeConfig::default()
        };
        let service = Arc::new(QueryService::new(graph.clone(), config));
        let q = query(&graph, "(a+b)*·c");
        let expected = eval_monadic(&q, &graph);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let owner = {
            let service = service.clone();
            let barrier = barrier.clone();
            let q = q.clone();
            std::thread::spawn(move || {
                barrier.wait();
                service.query_monadic(&q)
            })
        };
        barrier.wait();
        std::thread::sleep(Duration::from_millis(50));
        // The owner is inside its holdoff; a waiter with a 50ms budget
        // must give up with the Deadline verdict…
        let hurried = CancelToken::with_deadline(Instant::now() + Duration::from_millis(50));
        assert_eq!(
            service
                .query_monadic_interruptible(&q, &hurried)
                .unwrap_err(),
            Interrupt::Deadline
        );
        // …while the owner still publishes the full answer.
        let owned = owner.join().unwrap();
        assert_eq!(*owned.result, expected);
        assert_eq!(service.stats().deadline_exceeded, 1);
        assert_eq!(service.query_monadic(&q).served, Served::Hit);
    }

    #[test]
    fn interrupted_owner_abandons_so_waiters_readmit() {
        let graph = figure3_g0();
        let service = Arc::new(QueryService::new(graph.clone(), ServeConfig::default()));
        let q = query(&graph, "c·a*");
        let key = CacheKey::monadic(CanonicalQuery::new(&q));
        // Become the owner with a doomed token: evaluation is never
        // reached — but simulate the owner path by admitting, then
        // letting serve_interruptible hit the eval-time interrupt.
        let Admission::Evaluate { ticket, .. } = service.admit(&key) else {
            panic!("first admission must be an Evaluate");
        };
        // A concurrent coalesced waiter (unbounded token) blocks on the
        // ticket…
        let waiter = {
            let service = service.clone();
            let q = q.clone();
            std::thread::spawn(move || service.query_monadic(&q))
        };
        std::thread::sleep(Duration::from_millis(50));
        // …until the owner's interrupt abandons the ticket; the waiter
        // re-admits and evaluates the query itself.
        drop(AdmissionGuard::new(&service, &key, &ticket));
        let served = waiter.join().unwrap();
        assert_eq!(*served.result, eval_monadic(&q, &graph));
        assert!(matches!(served.served, Served::Evaluated { .. }));
    }

    #[test]
    fn planner_strategies_are_recorded_and_bit_identical() {
        let graph = figure3_g0();
        let q = query(&graph, "(a·b)*·c");
        let expected_monadic = eval_monadic(&q, &graph);
        // Forcing each direction serves identical bits and lands in the
        // matching stats bucket.
        for (forced, field) in [
            (Strategy::Forward, "forward"),
            (Strategy::Backward, "backward"),
            (Strategy::Bidirectional, "bidirectional"),
        ] {
            let service = QueryService::new(
                graph.clone(),
                ServeConfig {
                    strategy: forced,
                    ..ServeConfig::default()
                },
            );
            let response = service.query_monadic(&q);
            assert_eq!(*response.result, expected_monadic, "{field}");
            let bin = service.query_binary_from(&q, 0);
            assert_eq!(*bin.result, eval_binary_from(&q, &graph, 0), "{field}");
            let Served::Evaluated { strategy, .. } = bin.served else {
                panic!("binary miss must evaluate");
            };
            assert_eq!(strategy, forced, "{field}");
            let stats = service.stats();
            let per = [
                stats.forward_evals,
                stats.backward_evals,
                stats.bidirectional_evals,
            ];
            assert_eq!(per.iter().sum::<u64>(), stats.misses, "{field}");
            // The binary eval is in the forced bucket; the monadic one
            // resolves Bidirectional to a direction, so only assert it
            // for the two pure directions.
            if forced == Strategy::Bidirectional {
                assert_eq!(stats.bidirectional_evals, 1, "{field}");
            } else {
                assert_eq!(
                    per,
                    [
                        2 * u64::from(forced == Strategy::Forward),
                        2 * u64::from(forced == Strategy::Backward),
                        0
                    ],
                    "{field}"
                );
            }
        }
        // Auto: the resolution is recorded (never Auto itself) and the
        // plan is cached per canonical query — a second distinct source
        // on the same query replans nothing.
        let service = QueryService::new(graph.clone(), ServeConfig::default());
        let first = service.query_monadic(&q);
        let Served::Evaluated { strategy, .. } = first.served else {
            panic!("first submission must evaluate");
        };
        assert_ne!(strategy, Strategy::Auto);
        service.query_binary_from(&q, 0);
        service.query_binary_from(&q, 1);
        assert_eq!(
            service.inner.lock().unwrap().plans.len(),
            1,
            "one canonical query = one cached plan"
        );
        // Rebuild clears the plan cache (plans embed graph statistics).
        service.rebuild_graph(figure3_g0());
        assert!(service.inner.lock().unwrap().plans.is_empty());
    }

    #[test]
    fn delta_invalidates_touched_labels_and_spares_the_rest() {
        let graph = figure3_g0();
        let service = QueryService::new(graph.clone(), ServeConfig::default());
        let qa = query(&graph, "a·b");
        let qb = query(&graph, "b");
        let qc = query(&graph, "c");
        service.query_monadic(&qa);
        service.query_monadic(&qb);
        service.query_monadic(&qc);
        assert_eq!(service.cache_usage().0, 3);

        // Remove one a-edge: only the a-reading entry may die.
        let a = graph.alphabet().symbol("a").unwrap();
        let (v1, v2) = (graph.node_id("v1").unwrap(), graph.node_id("v2").unwrap());
        let applied = service.apply_delta(&[], &[(v1, a, v2)]).unwrap();
        assert_eq!(applied.invalidated, 1);
        assert!(!applied.compacted);
        assert_eq!(applied.delta_edges, 1);
        assert_eq!(service.cache_usage().0, 2);
        assert_eq!(service.query_monadic(&qb).served, Served::Hit);
        assert_eq!(service.query_monadic(&qc).served, Served::Hit);

        // The re-evaluated touched query matches a from-scratch rebuild
        // of the patched graph: no stale bits anywhere.
        let served = service.query_monadic(&qa);
        assert!(matches!(served.served, Served::Evaluated { .. }));
        let patched = service.graph();
        assert!(patched.has_delta());
        let compacted = patched.compact();
        assert_eq!(*served.result, eval_monadic(&qa, &compacted));
        assert_eq!(
            *service.query_monadic(&qb).result,
            eval_monadic(&qb, &compacted)
        );

        let stats = service.stats();
        assert_eq!(stats.deltas_applied, 1);
        assert_eq!(stats.label_invalidations, 1);
        assert_eq!(stats.invalidations, 0, "no full rebuild happened");

        // Unknown endpoints are rejected without touching anything.
        let err = service.apply_delta(&[(10_000, a, v2)], &[]).unwrap_err();
        assert!(matches!(err, DeltaError::NodeOutOfRange { .. }));
        assert_eq!(service.stats().deltas_applied, 1);
    }

    #[test]
    fn delta_fences_stale_inflight_publishes_but_disjoint_ones_land() {
        let graph = figure3_g0();
        let config = ServeConfig {
            // Keep evaluations in flight long enough to race the delta.
            eval_holdoff: Duration::from_millis(200),
            ..ServeConfig::default()
        };
        let service = Arc::new(QueryService::new(graph.clone(), config));
        let qa = query(&graph, "a");
        let qb = query(&graph, "b");
        let barrier = Arc::new(std::sync::Barrier::new(3));
        let owners: Vec<_> = [qa.clone(), qb.clone()]
            .into_iter()
            .map(|q| {
                let service = service.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    service.query_monadic(&q)
                })
            })
            .collect();
        barrier.wait();
        std::thread::sleep(Duration::from_millis(50));
        // Both owners are inside their holdoff; patch label a under them.
        let a = graph.alphabet().symbol("a").unwrap();
        let (v1, v2) = (graph.node_id("v1").unwrap(), graph.node_id("v2").unwrap());
        service.apply_delta(&[], &[(v1, a, v2)]).unwrap();
        for owner in owners {
            owner.join().unwrap();
        }
        // The a-owner's pre-delta answer was fenced out of the cache;
        // the b-owner's answer is provably delta-proof and was kept.
        assert_eq!(service.query_monadic(&qb).served, Served::Hit);
        let after = service.query_monadic(&qa);
        assert!(
            matches!(after.served, Served::Evaluated { .. }),
            "stale a-result must not be served: {:?}",
            after.served
        );
        assert_eq!(*after.result, eval_monadic(&qa, &service.graph().compact()));
    }

    #[test]
    fn subsumption_probe_reuses_a_cached_superset_as_bound() {
        let graph = figure3_g0();
        let service = QueryService::new(graph.clone(), ServeConfig::default());
        // Prime the cache with the superset a·b*; then a·b ⊆ a·b* is
        // provable by inclusion and its cached answer bounds the miss.
        let superset = query(&graph, "a·b*");
        service.query_monadic(&superset);
        let subset = query(&graph, "a·b");
        let served = service.query_monadic(&subset);
        assert!(matches!(served.served, Served::Evaluated { .. }));
        assert_eq!(*served.result, eval_monadic(&subset, &graph), "bit-exact");
        assert_eq!(service.stats().subsumption_reuses, 1);
        // A non-subset miss probes but finds nothing (b ⊄ a·b*).
        let other = query(&graph, "b");
        assert_eq!(
            *service.query_monadic(&other).result,
            eval_monadic(&other, &graph)
        );
        assert_eq!(service.stats().subsumption_reuses, 1);
        // The bounded result was published: a replay is a plain hit.
        assert_eq!(service.query_monadic(&subset).served, Served::Hit);
    }

    #[test]
    fn overlay_compacts_past_the_threshold() {
        let graph = figure3_g0();
        let service = QueryService::new(
            graph.clone(),
            ServeConfig {
                delta_compact_threshold: Some(1),
                ..ServeConfig::default()
            },
        );
        let c = graph.alphabet().symbol("c").unwrap();
        let v = |name: &str| graph.node_id(name).unwrap();
        // One overlay edge: at the threshold, carried as an overlay.
        let first = service.apply_delta(&[(v("v1"), c, v("v5"))], &[]).unwrap();
        assert!(!first.compacted);
        assert!(service.graph().has_delta());
        // A second pushes past it: folded into a fresh CSR.
        let second = service.apply_delta(&[(v("v2"), c, v("v6"))], &[]).unwrap();
        assert!(second.compacted);
        assert_eq!(second.delta_edges, 0);
        assert!(!service.graph().has_delta());
        assert_eq!(service.stats().compactions, 1);
        assert_eq!(service.graph().num_edges(), graph.num_edges() + 2);
        // Compaction preserved ids: a query still answers correctly.
        let q = query(&graph, "c");
        assert_eq!(
            *service.query_monadic(&q).result,
            eval_monadic(&q, &service.graph())
        );
    }

    /// Pins the auto-compact boundary exactly: with the default
    /// threshold `max(1024, base_edges / 8)`, a batch leaving the
    /// overlay at **exactly** the threshold is carried as an overlay
    /// (compaction triggers at `>`, not `>=`), and one more edge folds
    /// it.
    #[test]
    fn default_compact_threshold_boundary_is_strictly_greater_than() {
        // 40 nodes, one label, a 40-edge ring: the default threshold is
        // max(1024, 40 / 8) = 1024, and 40 × 40 possible edges leave
        // room for 1025 distinct overlay additions.
        let mut builder = pathlearn_graph::GraphBuilder::with_alphabet(
            pathlearn_automata::Alphabet::from_labels(["a"]),
        );
        for i in 0..40 {
            builder.add_node(&format!("n{i}"));
        }
        let a = Symbol::from_index(0);
        for i in 0..40u32 {
            builder.add_edge_ids(i, a, (i + 1) % 40);
        }
        let graph = builder.build();
        assert_eq!(graph.num_edges(), 40);

        // 1025 distinct edges absent from the base ring.
        let fresh: Vec<(NodeId, Symbol, NodeId)> = (0..40u32)
            .flat_map(|s| (0..40u32).map(move |d| (s, a, d)))
            .filter(|&(s, _, d)| d != (s + 1) % 40)
            .take(1025)
            .collect();
        assert_eq!(fresh.len(), 1025);

        let service = QueryService::new(graph, ServeConfig::default());
        // Exactly at the threshold: still an overlay.
        let at = service.apply_delta(&fresh[..1024], &[]).unwrap();
        assert!(
            !at.compacted,
            "an overlay of exactly 1024 edges must NOT compact (threshold is `>`)"
        );
        assert_eq!(at.delta_edges, 1024);
        assert!(service.graph().has_delta());
        assert_eq!(service.stats().compactions, 0);
        // One past it: folded.
        let past = service.apply_delta(&fresh[1024..], &[]).unwrap();
        assert!(past.compacted, "1025 overlay edges must compact");
        assert_eq!(past.delta_edges, 0);
        assert!(!service.graph().has_delta());
        assert_eq!(service.stats().compactions, 1);
        assert_eq!(service.graph().num_edges(), 40 + 1025);
    }

    /// The same boundary under an explicit [`ServeConfig::delta_compact_threshold`].
    #[test]
    fn explicit_compact_threshold_boundary_is_strictly_greater_than() {
        let graph = figure3_g0();
        let service = QueryService::new(
            graph.clone(),
            ServeConfig {
                delta_compact_threshold: Some(3),
                ..ServeConfig::default()
            },
        );
        let c = graph.alphabet().symbol("c").unwrap();
        let v = |name: &str| graph.node_id(name).unwrap();
        let edges = [
            (v("v1"), c, v("v5")),
            (v("v2"), c, v("v6")),
            (v("v3"), c, v("v7")),
            (v("v4"), c, v("v1")),
        ];
        let at = service.apply_delta(&edges[..3], &[]).unwrap();
        assert!(!at.compacted, "exactly 3 overlay edges stay an overlay");
        assert_eq!(at.delta_edges, 3);
        let past = service.apply_delta(&edges[3..], &[]).unwrap();
        assert!(past.compacted, "the 4th edge crosses threshold 3");
        assert_eq!(past.delta_edges, 0);
    }

    #[test]
    fn parallel_pool_uses_intra_mode_above_threshold() {
        let graph = figure3_g0();
        let config = ServeConfig {
            threads: 2,
            intra_query_node_threshold: 4, // g0 has 7 nodes
            ..ServeConfig::default()
        };
        let service = QueryService::new(graph.clone(), config);
        let q = query(&graph, "(a·b)*·c");
        let response = service.query_monadic(&q);
        assert!(matches!(
            response.served,
            Served::Evaluated {
                mode: EvalMode::IntraQuery,
                ..
            }
        ));
        assert_eq!(*response.result, eval_monadic(&q, &graph));
        assert_eq!(service.stats().intra_evals, 1);
        assert_eq!(service.threads(), 2);
    }
}
