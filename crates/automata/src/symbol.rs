//! Interned symbols and ordered alphabets.
//!
//! The paper (§2) fixes a finite **ordered** alphabet `Σ`; the canonical
//! order on words is derived from the symbol order. We intern label strings
//! into dense `u32` identifiers so automata and graphs can use plain array
//! indexing; the interning order *is* the symbol order.

use std::collections::HashMap;
use std::fmt;

/// An interned edge label / alphabet symbol.
///
/// Symbols are ordered by their interning index in the owning [`Alphabet`];
/// this order induces the lexicographic component of the canonical order on
/// words (see [`crate::word::canonical_cmp`]).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Creates a symbol from a raw dense index.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        Symbol(index as u32)
    }

    /// Dense index of the symbol, usable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A finite, ordered set of label strings with O(1) symbol↔name mapping.
///
/// The order of symbols is the insertion order. Use
/// [`Alphabet::from_labels`] to get the conventional "sorted by name" order
/// used throughout the paper's examples (`a < b < c < …`).
#[derive(Clone, Debug, Default)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, Symbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet whose symbol order is the **sorted** order of the
    /// given labels (duplicates are ignored).
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut names: Vec<String> = labels.into_iter().map(|s| s.as_ref().to_owned()).collect();
        names.sort();
        names.dedup();
        let mut alphabet = Self::new();
        for name in names {
            alphabet.intern(&name);
        }
        alphabet
    }

    /// Returns the symbol for `name`, interning it at the end of the order
    /// if it is new.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), sym);
        sym
    }

    /// Looks up an existing symbol by name.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// Name of a symbol.
    ///
    /// # Panics
    /// Panics if the symbol does not belong to this alphabet.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len()).map(Symbol::from_index)
    }

    /// Iterates over `(symbol, name)` pairs in order.
    pub fn entries(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol::from_index(i), n.as_str()))
    }

    /// Parses a whitespace-separated sequence of labels into a word.
    ///
    /// Every label must already be present in the alphabet.
    pub fn parse_word(&self, text: &str) -> Result<crate::word::Word, String> {
        text.split_whitespace()
            .map(|tok| {
                self.symbol(tok)
                    .ok_or_else(|| format!("unknown label `{tok}`"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut alphabet = Alphabet::new();
        let a = alphabet.intern("a");
        let b = alphabet.intern("b");
        assert_eq!(alphabet.intern("a"), a);
        assert_ne!(a, b);
        assert_eq!(alphabet.len(), 2);
        assert_eq!(alphabet.name(a), "a");
        assert_eq!(alphabet.name(b), "b");
    }

    #[test]
    fn from_labels_sorts_and_dedups() {
        let alphabet = Alphabet::from_labels(["tram", "bus", "cinema", "bus"]);
        assert_eq!(alphabet.len(), 3);
        let names: Vec<&str> = alphabet.entries().map(|(_, n)| n).collect();
        assert_eq!(names, ["bus", "cinema", "tram"]);
        // Symbol order follows sorted name order.
        assert!(alphabet.symbol("bus").unwrap() < alphabet.symbol("cinema").unwrap());
        assert!(alphabet.symbol("cinema").unwrap() < alphabet.symbol("tram").unwrap());
    }

    #[test]
    fn symbol_lookup_miss() {
        let alphabet = Alphabet::from_labels(["a"]);
        assert_eq!(alphabet.symbol("z"), None);
    }

    #[test]
    fn parse_word_roundtrip() {
        let alphabet = Alphabet::from_labels(["a", "b"]);
        let word = alphabet.parse_word("a b a").unwrap();
        assert_eq!(word.len(), 3);
        assert_eq!(alphabet.name(word[0]), "a");
        assert_eq!(alphabet.name(word[1]), "b");
        assert!(alphabet.parse_word("a z").is_err());
    }

    #[test]
    fn symbols_iterates_in_order() {
        let alphabet = Alphabet::from_labels(["c", "a", "b"]);
        let symbols: Vec<Symbol> = alphabet.symbols().collect();
        assert_eq!(symbols.len(), 3);
        assert!(symbols.windows(2).all(|w| w[0] < w[1]));
    }
}
