//! Characteristic samples for RPNI.
//!
//! The completeness half of Theorem 3.5 starts from the classical fact that
//! RPNI identifies a target regular language from a *characteristic sample*
//! `(P⁺, P⁻)` of polynomial size \[35\]. This module constructs such a
//! sample for any target DFA, following the textbook recipe (de la Higuera,
//! ch. 12):
//!
//! * `Sp` — the **short prefixes**: for every state `q`, the `≤`-minimal
//!   word reaching `q`;
//! * `K` — the **kernel**: `{ε} ∪ Sp·Σ` restricted to defined transitions;
//! * every kernel word is completed to an accepted word through the
//!   `≤`-minimal accepting suffix (populating `P⁺`);
//! * every pair of distinct states reached by `Sp × (Sp ∪ K)` is separated
//!   by the `≤`-minimal distinguishing suffix, putting the accepting side
//!   in `P⁺` and the rejecting side in `P⁻`.
//!
//! For the graph construction of Theorem 3.5 the paper additionally needs
//! `P⁻` words that avoid accepting states along their runs (so that a
//! single negative graph node can cover them); choosing *minimal*
//! distinguishing suffixes guarantees this for prefix-free targets, which
//! [`characteristic_sample`]'s tests assert.

use crate::dfa::Dfa;
use crate::symbol::Symbol;
use crate::word::{sort_canonical, Word};
use crate::StateId;
use std::collections::VecDeque;

/// A positive/negative word sample.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WordSample {
    /// Words the target accepts.
    pub pos: Vec<Word>,
    /// Words the target rejects.
    pub neg: Vec<Word>,
}

/// Builds a characteristic sample for the language of `target`.
///
/// The result is characteristic for RPNI: `rpni(S⁺, S⁻)` is
/// language-equivalent to `target` for every consistent extension
/// `S⁺ ⊇ P⁺`, `S⁻ ⊇ P⁻`. `target` is minimized internally, so any DFA for
/// the language works.
pub fn characteristic_sample(target: &Dfa) -> WordSample {
    let minimal = target.minimize();
    if minimal.language_is_empty() {
        // No positive words exist; the empty sample is characteristic for
        // the empty language only vacuously. Callers treat this specially.
        return WordSample::default();
    }
    let (complete, _) = minimal.complete();

    let short_prefixes = shortest_access_words(&minimal);

    // Kernel: short prefixes extended by every defined transition.
    let mut kernel: Vec<Word> = vec![Vec::new()];
    for (q, u) in short_prefixes.iter().enumerate() {
        for a in 0..minimal.alphabet_len() {
            let sym = Symbol::from_index(a);
            if minimal.step(q as StateId, sym).is_some() {
                let mut w = u.clone();
                w.push(sym);
                kernel.push(w);
            }
        }
    }
    let mut basis: Vec<Word> = short_prefixes.clone();
    basis.extend(kernel.iter().cloned());
    sort_canonical(&mut basis);

    let mut sample = WordSample::default();

    // 1. Structural positives: every basis word completed to acceptance.
    for w in &basis {
        let state = minimal
            .run(w)
            .expect("basis words stay within the trimmed target");
        let completion = shortest_accepting_suffix(&minimal, state);
        let mut positive = w.clone();
        positive.extend_from_slice(&completion);
        sample.pos.push(positive);
    }

    // 2. Distinguishing pairs: separate every pair of distinct states
    //    reached by basis words.
    for (i, u) in basis.iter().enumerate() {
        let p = minimal.run(u).expect("basis word runs");
        for v in basis.iter().skip(i + 1) {
            let q = minimal.run(v).expect("basis word runs");
            if p == q {
                continue;
            }
            let suffix = shortest_distinguishing_suffix(&complete, p, q)
                .expect("distinct states of a minimal DFA are distinguishable");
            let mut from_u = u.clone();
            from_u.extend_from_slice(&suffix);
            let mut from_v = v.clone();
            from_v.extend_from_slice(&suffix);
            debug_assert_ne!(minimal.accepts(&from_u), minimal.accepts(&from_v));
            if minimal.accepts(&from_u) {
                sample.pos.push(from_u);
                sample.neg.push(from_v);
            } else {
                sample.neg.push(from_u);
                sample.pos.push(from_v);
            }
        }
    }

    sort_canonical(&mut sample.pos);
    sort_canonical(&mut sample.neg);
    sample
}

/// `≤`-minimal access word of every state (BFS with symbols ascending).
pub fn shortest_access_words(dfa: &Dfa) -> Vec<Word> {
    let n = dfa.num_states();
    let mut words: Vec<Option<Word>> = vec![None; n];
    words[dfa.initial() as usize] = Some(Vec::new());
    let mut queue = VecDeque::from([dfa.initial()]);
    while let Some(s) = queue.pop_front() {
        for a in 0..dfa.alphabet_len() {
            let sym = Symbol::from_index(a);
            if let Some(t) = dfa.step(s, sym) {
                if words[t as usize].is_none() {
                    let mut w = words[s as usize].clone().expect("visited");
                    w.push(sym);
                    words[t as usize] = Some(w);
                    queue.push_back(t);
                }
            }
        }
    }
    words
        .into_iter()
        .map(|w| w.expect("minimized DFA has only reachable states"))
        .collect()
}

/// `≤`-minimal word leading from `state` to an accepting state.
pub fn shortest_accepting_suffix(dfa: &Dfa, state: StateId) -> Word {
    if dfa.is_final(state) {
        return Vec::new();
    }
    let n = dfa.num_states();
    let mut parent: Vec<Option<(StateId, Symbol)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[state as usize] = true;
    let mut queue = VecDeque::from([state]);
    while let Some(s) = queue.pop_front() {
        for a in 0..dfa.alphabet_len() {
            let sym = Symbol::from_index(a);
            if let Some(t) = dfa.step(s, sym) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    parent[t as usize] = Some((s, sym));
                    if dfa.is_final(t) {
                        let mut word = Vec::new();
                        let mut cur = t;
                        while cur != state {
                            let (p, sym) = parent[cur as usize].expect("path");
                            word.push(sym);
                            cur = p;
                        }
                        word.reverse();
                        return word;
                    }
                    queue.push_back(t);
                }
            }
        }
    }
    unreachable!("state in a trimmed DFA reaches a final state")
}

/// `≤`-minimal word `e` with `final(δ(p,e)) ≠ final(δ(q,e))` in a
/// **complete** DFA, or `None` if `p` and `q` are equivalent.
pub fn shortest_distinguishing_suffix(complete: &Dfa, p: StateId, q: StateId) -> Option<Word> {
    if complete.is_final(p) != complete.is_final(q) {
        return Some(Vec::new());
    }
    let n = complete.num_states();
    let pack = |x: StateId, y: StateId| x as usize * n + y as usize;
    let mut parent: Vec<Option<(usize, Symbol)>> = vec![None; n * n];
    let mut seen = vec![false; n * n];
    seen[pack(p, q)] = true;
    let mut queue = VecDeque::from([(p, q)]);
    while let Some((x, y)) = queue.pop_front() {
        for a in 0..complete.alphabet_len() {
            let sym = Symbol::from_index(a);
            let tx = complete.step(x, sym).expect("complete DFA");
            let ty = complete.step(y, sym).expect("complete DFA");
            let id = pack(tx, ty);
            if !seen[id] {
                seen[id] = true;
                parent[id] = Some((pack(x, y), sym));
                if complete.is_final(tx) != complete.is_final(ty) {
                    let mut word = Vec::new();
                    let mut cur = id;
                    while cur != pack(p, q) {
                        let (prev, sym) = parent[cur].expect("path");
                        word.push(sym);
                        cur = prev;
                    }
                    word.reverse();
                    return Some(word);
                }
                queue.push_back((tx, ty));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::rpni::rpni;
    use crate::symbol::Alphabet;

    fn target(expr: &str, labels: &[&str]) -> (Dfa, Alphabet) {
        let alphabet = Alphabet::from_labels(labels.iter().copied());
        let dfa = Regex::parse(expr, &alphabet)
            .unwrap()
            .to_dfa(alphabet.len());
        (dfa, alphabet)
    }

    #[test]
    fn sample_is_consistent_with_target() {
        let (dfa, _) = target("(a·b)*·c", &["a", "b", "c"]);
        let sample = characteristic_sample(&dfa);
        for w in &sample.pos {
            assert!(dfa.accepts(w), "{w:?} should be accepted");
        }
        for w in &sample.neg {
            assert!(!dfa.accepts(w), "{w:?} should be rejected");
        }
        assert!(!sample.pos.is_empty());
    }

    #[test]
    fn paper_example_sample_contains_expected_words() {
        // Theorem 3.5 proof example for (a·b)*·c:
        // P⁺ ⊇ {c, abc}; P⁻ ⊇ distinguishing rejections.
        let (dfa, alphabet) = target("(a·b)*·c", &["a", "b", "c"]);
        let sample = characteristic_sample(&dfa);
        let c = alphabet.parse_word("c").unwrap();
        let abc = alphabet.parse_word("a b c").unwrap();
        assert!(sample.pos.contains(&c));
        assert!(sample.pos.contains(&abc));
        assert!(sample.neg.contains(&Vec::new())); // ε is rejected
    }

    #[test]
    fn rpni_identifies_targets_from_characteristic_samples() {
        let cases: &[(&str, &[&str])] = &[
            ("(a·b)*·c", &["a", "b", "c"]),
            ("a*·b", &["a", "b"]),
            ("a·(b+c)", &["a", "b", "c"]),
            ("(a+b)·(a+b)·c", &["a", "b", "c"]),
            ("a·b·c", &["a", "b", "c"]),
            ("(a+b)*·c·c", &["a", "b", "c"]),
            ("a", &["a", "b"]),
            ("(b·a)* · a", &["a", "b"]),
        ];
        for (expr, labels) in cases {
            let (dfa, alphabet) = target(expr, labels);
            let sample = characteristic_sample(&dfa);
            let learned = rpni(&sample.pos, &sample.neg, alphabet.len());
            assert!(
                learned.equivalent(&dfa),
                "failed to identify {expr}: learned {}",
                crate::state_elim::dfa_to_regex(&learned).display(&alphabet)
            );
        }
    }

    #[test]
    fn identification_survives_consistent_extension() {
        // Definition 3.4(2): any sample extending CS consistently with the
        // target must still yield the target.
        let (dfa, alphabet) = target("(a·b)*·c", &["a", "b", "c"]);
        let mut sample = characteristic_sample(&dfa);
        sample.pos.push(alphabet.parse_word("a b a b c").unwrap());
        sample.neg.push(alphabet.parse_word("a a").unwrap());
        sample.neg.push(alphabet.parse_word("c c").unwrap());
        let learned = rpni(&sample.pos, &sample.neg, alphabet.len());
        assert!(learned.equivalent(&dfa));
    }

    #[test]
    fn negatives_avoid_final_states_for_prefix_free_targets() {
        // Needed by the Theorem 3.5 graph construction: every P⁻ word must
        // be coverable by the completed-DFA-minus-finals component, i.e.
        // its run never visits an accepting state.
        for (expr, labels) in [
            ("(a·b)*·c", vec!["a", "b", "c"]),
            ("a·(b+c)", vec!["a", "b", "c"]),
            ("(a+b)·(a+b)·c", vec!["a", "b", "c"]),
        ] {
            let (dfa, _) = target(expr, &labels);
            assert!(dfa.is_prefix_free());
            let (complete, _) = dfa.complete();
            let sample = characteristic_sample(&dfa);
            for w in &sample.neg {
                let mut state = complete.initial();
                for &sym in w {
                    assert!(
                        !complete.is_final(state),
                        "negative {w:?} visits a final state ({expr})"
                    );
                    state = complete.step(state, sym).unwrap();
                }
                assert!(!complete.is_final(state));
            }
        }
    }

    #[test]
    fn sample_size_is_modest() {
        let (dfa, _) = target("(a·b)*·c", &["a", "b", "c"]);
        let sample = characteristic_sample(&dfa);
        // Polynomial in the 3-state target; sanity-bound it.
        assert!(sample.pos.len() + sample.neg.len() < 60);
    }

    #[test]
    fn helpers_compute_minimal_words() {
        let (dfa, alphabet) = target("(a·b)*·c", &["a", "b", "c"]);
        let access = shortest_access_words(&dfa);
        // canonical DFA: state0=ε, and the a-state accessed by "a",
        // final state accessed by "c".
        assert!(access.contains(&Vec::new()));
        assert!(access.contains(&alphabet.parse_word("a").unwrap()));
        assert!(access.contains(&alphabet.parse_word("c").unwrap()));
        let initial = dfa.initial();
        assert_eq!(
            shortest_accepting_suffix(&dfa, initial),
            alphabet.parse_word("c").unwrap()
        );
    }

    #[test]
    fn empty_language_yields_empty_sample() {
        let dfa = Dfa::empty_language(2);
        assert_eq!(characteristic_sample(&dfa), WordSample::default());
    }
}
