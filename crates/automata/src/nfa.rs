//! ε-free nondeterministic finite automata.
//!
//! NFAs are the workhorse representation: the language `paths_G(X)` of a
//! graph database (paper §2) is exactly an NFA whose states are the graph
//! nodes, whose initial states are `X` and whose states are **all**
//! accepting (path languages are prefix-closed). Keeping NFAs ε-free makes
//! every product/simulation loop a plain worklist over `(Symbol, StateId)`
//! pairs.

use crate::bitset::BitSet;
use crate::symbol::Symbol;
use crate::word::Word;
use crate::StateId;
use std::collections::VecDeque;

/// An ε-free NFA over a dense alphabet `0..alphabet_len`.
///
/// Transitions are stored per state, sorted by `(symbol, target)`, so
/// per-symbol successor lookup is a binary-searched slice and iteration
/// order is deterministic (which the canonical-order searches rely on).
#[derive(Clone, Debug)]
pub struct Nfa {
    alphabet_len: usize,
    transitions: Vec<Vec<(Symbol, StateId)>>,
    initials: Vec<StateId>,
    finals: BitSet,
}

impl Nfa {
    /// Creates an NFA with `num_states` states and no transitions.
    pub fn new(num_states: usize, alphabet_len: usize) -> Self {
        Nfa {
            alphabet_len,
            transitions: vec![Vec::new(); num_states],
            initials: Vec::new(),
            finals: BitSet::new(num_states),
        }
    }

    /// Builds an NFA in one shot from an edge list; sorts transitions once.
    pub fn from_edges(
        num_states: usize,
        alphabet_len: usize,
        edges: impl IntoIterator<Item = (StateId, Symbol, StateId)>,
        initials: impl IntoIterator<Item = StateId>,
        finals: impl IntoIterator<Item = StateId>,
    ) -> Self {
        let mut nfa = Self::new(num_states, alphabet_len);
        for (from, sym, to) in edges {
            nfa.transitions[from as usize].push((sym, to));
        }
        for row in &mut nfa.transitions {
            row.sort_unstable();
            row.dedup();
        }
        for s in initials {
            nfa.set_initial(s);
        }
        for s in finals {
            nfa.set_final(s);
        }
        nfa
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// Appends a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = self.transitions.len() as StateId;
        self.transitions.push(Vec::new());
        let mut finals = BitSet::new(self.transitions.len());
        for i in self.finals.iter() {
            finals.insert(i);
        }
        self.finals = finals;
        id
    }

    /// Adds a transition, keeping the per-state rows sorted and deduped.
    pub fn add_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        debug_assert!(sym.index() < self.alphabet_len);
        let row = &mut self.transitions[from as usize];
        match row.binary_search(&(sym, to)) {
            Ok(_) => {}
            Err(pos) => row.insert(pos, (sym, to)),
        }
    }

    /// Marks a state as initial.
    pub fn set_initial(&mut self, state: StateId) {
        if let Err(pos) = self.initials.binary_search(&state) {
            self.initials.insert(pos, state);
        }
    }

    /// Replaces the initial-state set.
    pub fn set_initials(&mut self, states: &[StateId]) {
        self.initials = states.to_vec();
        self.initials.sort_unstable();
        self.initials.dedup();
    }

    /// Marks a state as accepting.
    pub fn set_final(&mut self, state: StateId) {
        self.finals.insert(state as usize);
    }

    /// Marks every state as accepting (prefix-closed path languages).
    pub fn set_all_final(&mut self) {
        self.finals = BitSet::full(self.num_states());
    }

    /// Whether `state` is accepting.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains(state as usize)
    }

    /// The sorted initial-state slice.
    pub fn initials(&self) -> &[StateId] {
        &self.initials
    }

    /// The accepting-state set.
    pub fn finals(&self) -> &BitSet {
        &self.finals
    }

    /// All transitions out of `state`, sorted by `(symbol, target)`.
    pub fn transitions_from(&self, state: StateId) -> &[(Symbol, StateId)] {
        &self.transitions[state as usize]
    }

    /// Successor states of `state` on `sym`, as a sorted slice.
    pub fn successors(&self, state: StateId, sym: Symbol) -> &[(Symbol, StateId)] {
        let row = &self.transitions[state as usize];
        let start = row.partition_point(|&(s, _)| s < sym);
        let end = row.partition_point(|&(s, _)| s <= sym);
        &row[start..end]
    }

    /// One simulation step on a set of states: `{ t | s ∈ set, s -sym-> t }`.
    pub fn step_set(&self, set: &BitSet, sym: Symbol) -> BitSet {
        let mut next = BitSet::new(self.num_states());
        for s in set.iter() {
            for &(_, t) in self.successors(s as StateId, sym) {
                next.insert(t as usize);
            }
        }
        next
    }

    /// The initial-state set as a [`BitSet`].
    pub fn initial_set(&self) -> BitSet {
        BitSet::from_indices(self.num_states(), self.initials.iter().map(|&s| s as usize))
    }

    /// Word-membership by set simulation: `O(|w| · |E|)`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut current = self.initial_set();
        for &sym in word {
            if current.is_empty() {
                return false;
            }
            current = self.step_set(&current, sym);
        }
        current.intersects(&self.finals)
    }

    /// States reachable from the initial set.
    pub fn reachable(&self) -> BitSet {
        let mut seen = self.initial_set();
        let mut queue: VecDeque<StateId> = self.initials.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for &(_, t) in self.transitions_from(s) {
                if seen.insert(t as usize) {
                    queue.push_back(t);
                }
            }
        }
        seen
    }

    /// The reversed NFA: transitions flipped, initials↔finals.
    pub fn reverse(&self) -> Nfa {
        let n = self.num_states();
        let mut rev = Nfa::new(n, self.alphabet_len);
        for (from, row) in self.transitions.iter().enumerate() {
            for &(sym, to) in row {
                rev.transitions[to as usize].push((sym, from as StateId));
            }
        }
        for row in &mut rev.transitions {
            row.sort_unstable();
            row.dedup();
        }
        rev.initials = self.finals.iter().map(|i| i as StateId).collect();
        for &i in &self.initials {
            rev.finals.insert(i as usize);
        }
        rev
    }

    /// States from which an accepting state is reachable.
    pub fn coreachable(&self) -> BitSet {
        self.reverse().reachable()
    }

    /// Returns the trimmed NFA (reachable ∩ co-reachable states only) and
    /// the mapping `old state -> new state` (dense) for kept states.
    pub fn trim(&self) -> (Nfa, Vec<Option<StateId>>) {
        let mut live = self.reachable();
        live.intersect_with(&self.coreachable());
        let mut map: Vec<Option<StateId>> = vec![None; self.num_states()];
        let mut next = 0u32;
        for s in live.iter() {
            map[s] = Some(next);
            next += 1;
        }
        let mut out = Nfa::new(next as usize, self.alphabet_len);
        for (from, row) in self.transitions.iter().enumerate() {
            let Some(nf) = map[from] else { continue };
            for &(sym, to) in row {
                if let Some(nt) = map[to as usize] {
                    out.transitions[nf as usize].push((sym, nt));
                }
            }
        }
        for row in &mut out.transitions {
            row.sort_unstable();
            row.dedup();
        }
        for &i in &self.initials {
            if let Some(ni) = map[i as usize] {
                out.set_initial(ni);
            }
        }
        for f in self.finals.iter() {
            if let Some(nf) = map[f] {
                out.set_final(nf);
            }
        }
        (out, map)
    }

    /// `true` iff the recognized language is empty.
    pub fn language_is_empty(&self) -> bool {
        !self.reachable().intersects(&self.finals)
    }

    /// The `≤`-minimal accepted word (canonical order: shortest, then lex),
    /// or `None` if the language is empty.
    ///
    /// The search runs on the **lazily determinized** automaton: each word
    /// maps to a unique reach-set, so a BFS over reach-sets expanding
    /// symbols in ascending order discovers sets in canonical order of
    /// their minimal words, and the first accepting set carries the
    /// `≤`-minimal accepted word. (A BFS over plain NFA states would break
    /// the lexicographic tie when two states share a minimal word — e.g.
    /// with several initial states.)
    pub fn shortest_accepted(&self) -> Option<Word> {
        let initial = self.initial_set();
        if initial.intersects(&self.finals) {
            return Some(Vec::new());
        }
        if initial.is_empty() {
            return None;
        }
        let mut seen: std::collections::HashSet<BitSet> = std::collections::HashSet::new();
        let mut queue: VecDeque<(BitSet, Word)> = VecDeque::new();
        seen.insert(initial.clone());
        queue.push_back((initial, Vec::new()));
        while let Some((set, word)) = queue.pop_front() {
            for a in 0..self.alphabet_len {
                let sym = Symbol::from_index(a);
                let next = self.step_set(&set, sym);
                if next.is_empty() || seen.contains(&next) {
                    continue;
                }
                let mut next_word = word.clone();
                next_word.push(sym);
                if next.intersects(&self.finals) {
                    return Some(next_word);
                }
                seen.insert(next.clone());
                queue.push_back((next, next_word));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    /// NFA for (ab)*c over {a=0, b=1, c=2} plus a nondeterministic branch.
    fn sample() -> Nfa {
        let mut nfa = Nfa::new(3, 3);
        nfa.add_transition(0, sym(0), 1);
        nfa.add_transition(1, sym(1), 0);
        nfa.add_transition(0, sym(2), 2);
        nfa.set_initial(0);
        nfa.set_final(2);
        nfa
    }

    #[test]
    fn accepts_simulation() {
        let nfa = sample();
        assert!(nfa.accepts(&[sym(2)]));
        assert!(nfa.accepts(&[sym(0), sym(1), sym(2)]));
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[sym(0)]));
        assert!(!nfa.accepts(&[sym(1), sym(2)]));
    }

    #[test]
    fn successors_are_symbol_sliced() {
        let mut nfa = Nfa::new(2, 2);
        nfa.add_transition(0, sym(1), 1);
        nfa.add_transition(0, sym(0), 0);
        nfa.add_transition(0, sym(0), 1);
        let a_succ: Vec<StateId> = nfa.successors(0, sym(0)).iter().map(|&(_, t)| t).collect();
        assert_eq!(a_succ, vec![0, 1]);
        let b_succ: Vec<StateId> = nfa.successors(0, sym(1)).iter().map(|&(_, t)| t).collect();
        assert_eq!(b_succ, vec![1]);
    }

    #[test]
    fn shortest_accepted_is_canonical_minimum() {
        // Two accepting routes: "c" (len 1) and "ab...":
        let nfa = sample();
        assert_eq!(nfa.shortest_accepted(), Some(vec![sym(2)]));
        // ε accepted when an initial state is final.
        let mut eps = Nfa::new(1, 1);
        eps.set_initial(0);
        eps.set_final(0);
        assert_eq!(eps.shortest_accepted(), Some(vec![]));
    }

    #[test]
    fn shortest_accepted_prefers_lex_smaller_same_length() {
        // Both "b a" and "a b" accepted; canonical min is "a b" (0,1).
        let mut nfa = Nfa::new(4, 2);
        nfa.set_initial(0);
        nfa.add_transition(0, sym(0), 1);
        nfa.add_transition(1, sym(1), 3);
        nfa.add_transition(0, sym(1), 2);
        nfa.add_transition(2, sym(0), 3);
        nfa.set_final(3);
        assert_eq!(nfa.shortest_accepted(), Some(vec![sym(0), sym(1)]));
    }

    #[test]
    fn empty_language() {
        let mut nfa = Nfa::new(2, 1);
        nfa.set_initial(0);
        nfa.set_final(1); // unreachable
        assert!(nfa.language_is_empty());
        assert_eq!(nfa.shortest_accepted(), None);
    }

    #[test]
    fn trim_drops_dead_states() {
        let mut nfa = Nfa::new(4, 2);
        nfa.set_initial(0);
        nfa.add_transition(0, sym(0), 1); // live path
        nfa.add_transition(0, sym(1), 2); // dead end (2 not coreachable)
        nfa.set_final(1);
        // state 3 unreachable.
        let (trimmed, map) = nfa.trim();
        assert_eq!(trimmed.num_states(), 2);
        assert!(map[2].is_none() && map[3].is_none());
        assert!(trimmed.accepts(&[sym(0)]));
        assert!(!trimmed.accepts(&[sym(1)]));
    }

    #[test]
    fn reverse_accepts_mirror() {
        let nfa = sample();
        let rev = nfa.reverse();
        assert!(rev.accepts(&[sym(2)]));
        assert!(rev.accepts(&[sym(2), sym(1), sym(0)]));
        assert!(!rev.accepts(&[sym(0), sym(1), sym(2)]));
    }

    #[test]
    fn all_final_marks_every_state() {
        let mut nfa = sample();
        nfa.set_all_final();
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&[sym(0)]));
        assert!(nfa.accepts(&[sym(0), sym(1)]));
        // but not words leaving the support:
        assert!(!nfa.accepts(&[sym(1)]));
    }
}
