//! DFA minimization.
//!
//! The primary algorithm is **Hopcroft's partition refinement**
//! (`O(|Σ| n log n)`); a straightforward **Moore iteration** (`O(|Σ| n²)`)
//! is kept as an independently-implemented cross-check used by the tests
//! and as an ablation baseline for the benchmark suite.
//!
//! Both entry points return the *canonical* DFA of the language: trimmed
//! (every state reachable and co-reachable — so the sink introduced by
//! completion disappears again), with states renumbered in BFS order. This
//! is the representation the paper uses to define query size (§2).

use crate::dfa::{Dfa, DEAD};
use crate::StateId;
use std::collections::VecDeque;

/// Minimizes a DFA with Hopcroft's algorithm; returns the canonical form.
pub fn minimize(dfa: &Dfa) -> Dfa {
    let trimmed = dfa.trim();
    if trimmed.language_is_empty() {
        return Dfa::empty_language(trimmed.alphabet_len());
    }
    let (complete, _) = trimmed.complete();
    let partition = hopcroft_partition(&complete);
    quotient(&complete, &partition).trim().canonicalize()
}

/// Minimizes a DFA with Moore's iterative refinement; returns the
/// canonical form. Cross-check / ablation implementation.
pub fn minimize_moore(dfa: &Dfa) -> Dfa {
    let trimmed = dfa.trim();
    if trimmed.language_is_empty() {
        return Dfa::empty_language(trimmed.alphabet_len());
    }
    let (complete, _) = trimmed.complete();
    let partition = moore_partition(&complete);
    quotient(&complete, &partition).trim().canonicalize()
}

/// Hopcroft partition refinement on a **complete** DFA. Returns
/// `block_of[state]`.
// Index loops over (state × symbol) grids mirror the textbook
// presentation of the algorithm; iterator adaptors obscure it here.
#[allow(clippy::needless_range_loop)]
fn hopcroft_partition(dfa: &Dfa) -> Vec<u32> {
    let n = dfa.num_states();
    let alphabet = dfa.alphabet_len();

    // Reverse transitions, per symbol: preds[a][t] = states s with s-a->t.
    let mut preds: Vec<Vec<Vec<StateId>>> = vec![vec![Vec::new(); n]; alphabet];
    for s in 0..n as StateId {
        for a in 0..alphabet {
            let t = dfa.step_raw(s, crate::Symbol::from_index(a));
            debug_assert_ne!(t, DEAD, "hopcroft requires a complete DFA");
            preds[a][t as usize].push(s);
        }
    }

    // Blocks as index sets; block_of maps states to their block.
    let mut blocks: Vec<Vec<StateId>> = Vec::new();
    let mut block_of: Vec<u32> = vec![0; n];
    let finals: Vec<StateId> = dfa.finals().iter().map(|s| s as StateId).collect();
    let non_finals: Vec<StateId> = (0..n as StateId).filter(|&s| !dfa.is_final(s)).collect();
    for group in [finals, non_finals] {
        if group.is_empty() {
            continue;
        }
        let id = blocks.len() as u32;
        for &s in &group {
            block_of[s as usize] = id;
        }
        blocks.push(group);
    }

    // Worklist of (block, symbol) splitters. Start from the smaller block
    // for every symbol (classic optimization); starting from both is also
    // correct, and with at most two initial blocks we simply enqueue the
    // smaller (or the only) one.
    let smaller = if blocks.len() == 2 && blocks[1].len() < blocks[0].len() {
        1u32
    } else {
        0u32
    };
    let mut worklist: VecDeque<(u32, usize)> = (0..alphabet).map(|a| (smaller, a)).collect();
    let mut in_worklist: Vec<Vec<bool>> = vec![vec![false; alphabet]; blocks.len()];
    for a in 0..alphabet {
        in_worklist[smaller as usize][a] = true;
    }

    // Scratch: membership marks for the current preimage, and per-block hit
    // counters. The marks make the split independent of `block_of` updates
    // that happen while processing the same splitter (the splitter block
    // itself may be among the blocks being split).
    let mut marked: Vec<bool> = vec![false; n];
    let mut touched_count: Vec<u32> = vec![0; blocks.len()];
    let mut touched_blocks: Vec<u32> = Vec::new();

    while let Some((splitter, a)) = worklist.pop_front() {
        in_worklist[splitter as usize][a] = false;

        // X = preimage of the splitter block under symbol a. In a complete
        // DFA each state has exactly one a-successor, so X has no
        // duplicates.
        let mut preimage: Vec<StateId> = Vec::new();
        for &t in &blocks[splitter as usize] {
            preimage.extend_from_slice(&preds[a][t as usize]);
        }
        if preimage.is_empty() {
            continue;
        }

        touched_blocks.clear();
        for &s in &preimage {
            marked[s as usize] = true;
            let b = block_of[s as usize];
            if touched_count[b as usize] == 0 {
                touched_blocks.push(b);
            }
            touched_count[b as usize] += 1;
        }

        for &b in &touched_blocks {
            let hit = touched_count[b as usize];
            touched_count[b as usize] = 0;
            let total = blocks[b as usize].len() as u32;
            if hit == total {
                continue; // block entirely inside preimage: no split
            }
            // Split block b into (in preimage) and (out of preimage).
            let old = std::mem::take(&mut blocks[b as usize]);
            let mut inside = Vec::with_capacity(hit as usize);
            let mut outside = Vec::with_capacity((total - hit) as usize);
            for s in old {
                if marked[s as usize] {
                    inside.push(s);
                } else {
                    outside.push(s);
                }
            }
            debug_assert_eq!(inside.len() as u32, hit);
            let new_id = blocks.len() as u32;
            for &s in &inside {
                block_of[s as usize] = new_id;
            }
            blocks[b as usize] = outside;
            blocks.push(inside);
            in_worklist.push(vec![false; alphabet]);
            touched_count.push(0);
            // Update the worklist per Hopcroft: if (b, c) is pending, the
            // new block must also be processed; otherwise enqueue the
            // smaller of the two halves.
            for c in 0..alphabet {
                if in_worklist[b as usize][c] {
                    in_worklist[new_id as usize][c] = true;
                    worklist.push_back((new_id, c));
                } else {
                    let pick = if blocks[new_id as usize].len() < blocks[b as usize].len() {
                        new_id
                    } else {
                        b
                    };
                    if !in_worklist[pick as usize][c] {
                        in_worklist[pick as usize][c] = true;
                        worklist.push_back((pick, c));
                    }
                }
            }
        }

        for &s in &preimage {
            marked[s as usize] = false;
        }
    }

    block_of
}

/// Moore partition refinement on a **complete** DFA. Returns
/// `block_of[state]`.
fn moore_partition(dfa: &Dfa) -> Vec<u32> {
    let n = dfa.num_states();
    let alphabet = dfa.alphabet_len();
    let mut block_of: Vec<u32> = (0..n)
        .map(|s| u32::from(dfa.finals().contains(s)))
        .collect();
    let mut num_blocks = 2;
    loop {
        // Signature of a state: (block, successor blocks per symbol).
        let mut signatures: Vec<(u32, Vec<u32>)> = Vec::with_capacity(n);
        for s in 0..n {
            let succ: Vec<u32> = (0..alphabet)
                .map(|a| {
                    let t = dfa.step_raw(s as StateId, crate::Symbol::from_index(a));
                    block_of[t as usize]
                })
                .collect();
            signatures.push((block_of[s], succ));
        }
        let mut index: std::collections::HashMap<&(u32, Vec<u32>), u32> =
            std::collections::HashMap::new();
        let mut next: Vec<u32> = vec![0; n];
        for s in 0..n {
            let fresh = index.len() as u32;
            let id = *index.entry(&signatures[s]).or_insert(fresh);
            next[s] = id;
        }
        let new_blocks = index.len();
        if new_blocks == num_blocks {
            return next;
        }
        num_blocks = new_blocks;
        block_of = next;
    }
}

/// Builds the quotient DFA for a block assignment.
fn quotient(dfa: &Dfa, block_of: &[u32]) -> Dfa {
    let num_blocks = block_of.iter().copied().max().map_or(0, |m| m as usize + 1);
    let alphabet = dfa.alphabet_len();
    let mut out = Dfa::new(num_blocks, alphabet, block_of[dfa.initial() as usize]);
    for s in 0..dfa.num_states() as StateId {
        let b = block_of[s as usize];
        for a in 0..alphabet {
            let sym = crate::Symbol::from_index(a);
            if let Some(t) = dfa.step(s, sym) {
                out.set_transition(b, sym, block_of[t as usize]);
            }
        }
        if dfa.is_final(s) {
            out.set_final(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;
    use crate::word::enumerate_words;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    /// A redundant DFA for (a·b)*·c with duplicated states.
    fn redundant_fig4() -> Dfa {
        // states: 0 start, 1 after-a, 2 final, 3 duplicate of 0, 4 dup of 1.
        let mut dfa = Dfa::new(5, 3, 0);
        dfa.set_transition(0, sym(0), 1);
        dfa.set_transition(1, sym(1), 3);
        dfa.set_transition(3, sym(0), 4);
        dfa.set_transition(4, sym(1), 0);
        dfa.set_transition(0, sym(2), 2);
        dfa.set_transition(3, sym(2), 2);
        dfa.set_final(2);
        dfa
    }

    #[test]
    fn hopcroft_reduces_to_three_states() {
        let min = minimize(&redundant_fig4());
        assert_eq!(min.num_states(), 3);
        let reference = crate::dfa::tests::fig4();
        for word in enumerate_words(3, 5) {
            assert_eq!(min.accepts(&word), reference.accepts(&word), "{word:?}");
        }
    }

    #[test]
    fn moore_agrees_with_hopcroft() {
        let dfa = redundant_fig4();
        assert_eq!(minimize(&dfa), minimize_moore(&dfa));
    }

    #[test]
    fn minimize_is_idempotent() {
        let min = minimize(&redundant_fig4());
        assert_eq!(min, minimize(&min));
    }

    #[test]
    fn minimize_empty_and_epsilon() {
        let empty = Dfa::new(4, 2, 0);
        assert_eq!(minimize(&empty).num_states(), 1);
        assert!(minimize(&empty).language_is_empty());

        let eps = Dfa::epsilon_language(2);
        let min = minimize(&eps);
        assert_eq!(min.num_states(), 1);
        assert!(min.accepts(&[]));
        assert!(!min.accepts(&[sym(0)]));
    }

    #[test]
    fn minimize_merges_language_equal_finals() {
        // Two final states both with residual {ε}: a | b.
        let mut dfa = Dfa::new(3, 2, 0);
        dfa.set_transition(0, sym(0), 1);
        dfa.set_transition(0, sym(1), 2);
        dfa.set_final(1);
        dfa.set_final(2);
        let min = minimize(&dfa);
        assert_eq!(min.num_states(), 2);
        assert!(min.accepts(&[sym(0)]) && min.accepts(&[sym(1)]));
        assert!(!min.accepts(&[]) && !min.accepts(&[sym(0), sym(0)]));
    }

    #[test]
    fn universal_language_minimizes_to_one_state() {
        let mut dfa = Dfa::new(2, 2, 0);
        for s in 0..2 {
            for a in 0..2 {
                dfa.set_transition(s, sym(a), (s + 1) % 2);
            }
        }
        dfa.set_final(0);
        dfa.set_final(1);
        let min = minimize(&dfa);
        assert_eq!(min.num_states(), 1);
        assert!(min.accepts(&[sym(0), sym(1), sym(1)]));
    }

    #[test]
    fn randomized_hopcroft_vs_moore_language_check() {
        // Deterministic pseudo-random DFAs; compare minimal forms and
        // language membership on all short words.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..40 {
            let n = 2 + (next() % 7) as usize;
            let alphabet = 1 + (next() % 3) as usize;
            let mut dfa = Dfa::new(n, alphabet, 0);
            for s in 0..n as StateId {
                for a in 0..alphabet {
                    if next() % 4 != 0 {
                        dfa.set_transition(s, sym(a), (next() % n as u64) as StateId);
                    }
                }
            }
            for s in 0..n {
                if next() % 3 == 0 {
                    dfa.set_final(s as StateId);
                }
            }
            let hop = minimize(&dfa);
            let moore = minimize_moore(&dfa);
            assert_eq!(hop, moore, "trial {trial}");
            for word in enumerate_words(alphabet, 4) {
                assert_eq!(
                    dfa.accepts(&word),
                    hop.accepts(&word),
                    "trial {trial}, word {word:?}"
                );
            }
        }
    }
}
