//! RPNI-style state merging, generic over a merge-consistency oracle.
//!
//! The paper's Algorithm 1 generalizes the PTA of the selected SCPs *"by
//! merging two of its states if the obtained DFA selects no negative
//! node"* (lines 4–5), explicitly mirroring RPNI \[35\]. The difference
//! between classic RPNI and the graph learner is **only the consistency
//! test**: classic RPNI rejects a merge when the quotient accepts a
//! negative *word*; the graph learner rejects it when the quotient's
//! language intersects `paths_G(S⁻)`. We therefore implement the red-blue
//! merge loop once, parameterized by a [`MergeOracle`], and let the two
//! callers plug in their test.
//!
//! States of the input PTA must be numbered in canonical order of their
//! access words (guaranteed by [`crate::pta::build_pta`]); both the blue
//! selection and the red iteration follow that order, which is what makes
//! the characteristic-sample guarantee of Theorem 3.5 carry over.

use crate::dfa::Dfa;
use crate::symbol::Symbol;
use crate::word::Word;
use crate::StateId;

/// Decides whether a candidate quotient automaton is still consistent with
/// the negative information.
pub trait MergeOracle {
    /// `true` iff `candidate` may replace the current hypothesis.
    fn is_consistent(&mut self, candidate: &Dfa) -> bool;
}

/// Classic RPNI oracle: consistent iff no negative word is accepted.
#[derive(Clone, Debug)]
pub struct NegativeWordsOracle<'a> {
    negatives: &'a [Word],
}

impl<'a> NegativeWordsOracle<'a> {
    /// Creates an oracle from negative example words.
    pub fn new(negatives: &'a [Word]) -> Self {
        NegativeWordsOracle { negatives }
    }
}

impl MergeOracle for NegativeWordsOracle<'_> {
    fn is_consistent(&mut self, candidate: &Dfa) -> bool {
        self.negatives.iter().all(|w| !candidate.accepts(w))
    }
}

/// Union-find with union-by-minimum-id, so each class is represented by
/// the canonically smallest PTA state it contains.
#[derive(Clone)]
struct Partition {
    parent: Vec<StateId>,
}

impl Partition {
    fn identity(n: usize) -> Self {
        Partition {
            parent: (0..n as StateId).collect(),
        }
    }

    fn find(&mut self, mut x: StateId) -> StateId {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Unions the classes of `a` and `b`; the smaller representative wins.
    fn union_min(&mut self, a: StateId, b: StateId) -> StateId {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (keep, absorb) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[absorb as usize] = keep;
        keep
    }
}

/// Merges `blue` into `red` and restores determinism by folding: whenever a
/// class has two same-symbol transitions to different classes, those target
/// classes are unioned in turn. Returns the folded partition.
// The `target_of[a]` grid access mirrors the determinism-check shape.
#[allow(clippy::needless_range_loop)]
fn merge_and_fold(pta: &Dfa, partition: &Partition, red: StateId, blue: StateId) -> Partition {
    let mut p = partition.clone();
    let merged = p.union_min(red, blue);
    let mut worklist = vec![merged];
    while let Some(class) = worklist.pop() {
        let class = p.find(class);
        // Per-symbol target class across all member states.
        let mut target_of: Vec<Option<StateId>> = vec![None; pta.alphabet_len()];
        let mut changed = false;
        for s in 0..pta.num_states() as StateId {
            if p.find(s) != class {
                continue;
            }
            for a in 0..pta.alphabet_len() {
                let sym = Symbol::from_index(a);
                let Some(t) = pta.step(s, sym) else { continue };
                let tc = p.find(t);
                match target_of[a] {
                    None => target_of[a] = Some(tc),
                    Some(existing) if existing != tc => {
                        let survivor = p.union_min(existing, tc);
                        target_of[a] = Some(survivor);
                        worklist.push(survivor);
                        changed = true;
                    }
                    Some(_) => {}
                }
            }
        }
        if changed {
            // The folded targets may have introduced new conflicts within
            // this very class (e.g. through a chain of unions); re-check.
            worklist.push(class);
        }
    }
    p
}

/// Builds the quotient DFA of the PTA under a partition. Classes are
/// renumbered densely in ascending order of their representative (i.e.
/// canonical order of the smallest access word in each class).
fn quotient(pta: &Dfa, partition: &Partition) -> (Dfa, Vec<StateId>) {
    let n = pta.num_states();
    let mut p = partition.clone();
    let mut reps: Vec<StateId> = (0..n as StateId).map(|s| p.find(s)).collect();
    let mut class_ids: Vec<StateId> = reps.clone();
    class_ids.sort_unstable();
    class_ids.dedup();
    let dense = |rep: StateId, class_ids: &[StateId]| -> StateId {
        class_ids.binary_search(&rep).expect("rep present") as StateId
    };
    let mut out = Dfa::new(
        class_ids.len(),
        pta.alphabet_len(),
        dense(reps[pta.initial() as usize], &class_ids),
    );
    for s in 0..n as StateId {
        let from = dense(reps[s as usize], &class_ids);
        for a in 0..pta.alphabet_len() {
            let sym = Symbol::from_index(a);
            if let Some(t) = pta.step(s, sym) {
                out.set_transition(from, sym, dense(reps[t as usize], &class_ids));
            }
        }
        if pta.is_final(s) {
            out.set_final(from);
        }
    }
    for rep in &mut reps {
        *rep = dense(*rep, &class_ids);
    }
    (out, reps)
}

/// Red-blue RPNI generalization of a PTA under a merge oracle.
///
/// Returns the generalized DFA (the quotient of the PTA by the accepted
/// merges — not minimized; callers normalize as needed).
pub fn generalize(pta: &Dfa, oracle: &mut dyn MergeOracle) -> Dfa {
    let n = pta.num_states();
    let mut partition = Partition::identity(n);
    // Red classes by representative id. State 0 (ε) starts red.
    let mut red: Vec<StateId> = vec![pta.initial()];

    loop {
        // Blue = successor classes of red classes that are not red.
        let mut blue: Vec<StateId> = Vec::new();
        for &r in &red {
            for s in 0..n as StateId {
                if partition.find(s) != r {
                    continue;
                }
                for a in 0..pta.alphabet_len() {
                    if let Some(t) = pta.step(s, Symbol::from_index(a)) {
                        let tc = partition.find(t);
                        if !red.contains(&tc) && !blue.contains(&tc) {
                            blue.push(tc);
                        }
                    }
                }
            }
        }
        let Some(&chosen_blue) = blue.iter().min() else {
            break; // no blue left: every class is red
        };

        let mut merged = false;
        let mut reds_sorted = red.clone();
        reds_sorted.sort_unstable();
        for &r in &reds_sorted {
            let candidate_partition = merge_and_fold(pta, &partition, r, chosen_blue);
            let (candidate, _) = quotient(pta, &candidate_partition);
            if oracle.is_consistent(&candidate) {
                partition = candidate_partition;
                // Folding may have absorbed red classes into one another;
                // refresh representatives.
                for r in &mut red {
                    *r = partition.find(*r);
                }
                red.sort_unstable();
                red.dedup();
                merged = true;
                break;
            }
        }
        if !merged {
            red.push(partition.find(chosen_blue));
        }
    }

    quotient(pta, &partition).0
}

/// Classic RPNI \[35\]: learns a DFA from positive and negative words.
///
/// With a characteristic sample for a target language (see
/// [`crate::char_sample`]), the result is language-equivalent to the
/// target; on arbitrary consistent input it returns *some* DFA accepting
/// all positives and no negatives.
///
/// ```
/// use pathlearn_automata::{rpni::rpni, Alphabet, Regex};
///
/// let alphabet = Alphabet::from_labels(["a", "b", "c"]);
/// let word = |s| alphabet.parse_word(s).unwrap();
/// // The characteristic words from the Theorem 3.5 proof example:
/// let pos = [word("c"), word("a b c")];
/// let neg = [word(""), word("a"), word("a b"), word("a c"), word("b c")];
/// let learned = rpni(&pos, &neg, alphabet.len());
/// let target = Regex::parse("(a·b)*·c", &alphabet).unwrap().to_dfa(3);
/// assert!(learned.equivalent(&target));
/// ```
pub fn rpni(positives: &[Word], negatives: &[Word], alphabet_len: usize) -> Dfa {
    let pta = crate::pta::build_pta(positives, alphabet_len);
    let mut oracle = NegativeWordsOracle::new(negatives);
    debug_assert!(
        oracle.is_consistent(&pta),
        "input sample is inconsistent (a negative word is also positive-prefixed)"
    );
    generalize(&pta, &mut oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Alphabet, Symbol};
    use crate::word::enumerate_words;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    #[test]
    fn paper_running_example() {
        // §3.2: P = {abc, c}, negatives covered by ν2/ν7 include bc and ε
        // (and a, ab as non-selecting prefixes is fine). With the word
        // negatives of the RPNI view (Theorem 3.5 proof):
        // P− = {ε, a, ab, ac, bc}, RPNI learns (a·b)*·c.
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        let pos = vec![vec![a, b, c], vec![c]];
        let neg = vec![vec![], vec![a], vec![a, b], vec![a, c], vec![b, c]];
        let learned = rpni(&pos, &neg, 3);
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        let target = crate::regex::Regex::parse("(a·b)*·c", &alphabet)
            .unwrap()
            .to_dfa(3);
        assert!(
            learned.equivalent(&target),
            "learned {:?}",
            crate::state_elim::dfa_to_regex(&learned)
                .display(&alphabet)
                .to_string()
        );
    }

    #[test]
    fn consistency_always_holds() {
        // Whatever RPNI returns must accept all positives, no negatives.
        let a = sym(0);
        let b = sym(1);
        let pos = vec![vec![a], vec![a, b, a]];
        let neg = vec![vec![b], vec![a, b]];
        let learned = rpni(&pos, &neg, 2);
        for w in &pos {
            assert!(learned.accepts(w));
        }
        for w in &neg {
            assert!(!learned.accepts(w));
        }
    }

    #[test]
    fn no_negatives_collapses_hard() {
        // With no negative evidence every merge is allowed; the result
        // accepts at least the positives (and typically much more).
        let a = sym(0);
        let pos = vec![vec![a, a, a]];
        let learned = rpni(&pos, &[], 1);
        assert!(learned.accepts(&[a, a, a]));
        // All states collapse into one: a* (containing ε? state ε merged
        // with finals). The single class is final, so ε is accepted.
        assert_eq!(learned.num_states(), 1);
        assert!(learned.accepts(&[]));
        assert!(learned.accepts(&[a, a, a, a, a]));
    }

    #[test]
    fn merge_and_fold_keeps_determinism() {
        // PTA of {aa, ab}: merging root with its a-child forces folding.
        let a = sym(0);
        let b = sym(1);
        let pta = crate::pta::build_pta(&[vec![a, a], vec![a, b]], 2);
        let partition = Partition::identity(pta.num_states());
        let folded = merge_and_fold(&pta, &partition, 0, 1);
        let (q, _) = quotient(&pta, &folded);
        // Determinism: at most one transition per (state, symbol) — by
        // construction of `Dfa`; check the language is still sane.
        assert!(q.accepts(&[a, a]));
        assert!(q.accepts(&[a, b]));
    }

    #[test]
    fn learns_even_a_star_b() {
        // Target: a*·b. Characteristic-ish sample chosen by hand.
        let a = sym(0);
        let b = sym(1);
        let pos = vec![vec![b], vec![a, b], vec![a, a, b]];
        let neg = vec![vec![], vec![a], vec![b, b], vec![a, a]];
        let learned = rpni(&pos, &neg, 2);
        let alphabet = Alphabet::from_labels(["a", "b"]);
        let target = crate::regex::Regex::parse("a*·b", &alphabet)
            .unwrap()
            .to_dfa(2);
        assert!(learned.equivalent(&target));
    }

    #[test]
    fn generalize_with_always_false_oracle_returns_pta() {
        struct Never;
        impl MergeOracle for Never {
            fn is_consistent(&mut self, _c: &Dfa) -> bool {
                false
            }
        }
        let a = sym(0);
        let pta = crate::pta::build_pta(&[vec![a, a]], 1);
        let out = generalize(&pta, &mut Never);
        for word in enumerate_words(1, 4) {
            assert_eq!(out.accepts(&word), pta.accepts(&word));
        }
        assert_eq!(out.num_states(), pta.num_states());
    }
}
