//! Deterministic finite automata with a dense transition table.
//!
//! The paper represents every path query by its **canonical DFA** — the
//! unique minimal DFA of the regular language — and measures query size as
//! its number of states (§2). This module provides the DFA container plus
//! the normalizations the paper relies on: completion, complementation,
//! canonical (BFS) state numbering, and the **prefix-free transform**
//! ("remove all outgoing transitions of every final state"), which maps a
//! query to the minimal representative of its equivalence class.

use crate::bitset::BitSet;
use crate::nfa::Nfa;
use crate::symbol::Symbol;
use crate::word::Word;
use crate::StateId;
use std::collections::VecDeque;

/// Sentinel for "no transition" in the dense table.
pub const DEAD: StateId = StateId::MAX;

/// A (possibly partial) DFA over a dense alphabet `0..alphabet_len`.
///
/// `Hash` is structural (table, initial, finals): two DFAs hash equal iff
/// they are field-for-field identical, which after
/// [`Dfa::minimize`] + canonical numbering means *language* equality —
/// the property [`crate::canonical::CanonicalQuery`] keys caches on.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Dfa {
    alphabet_len: usize,
    num_states: usize,
    /// Row-major table: `table[state * alphabet_len + symbol]`, [`DEAD`] if
    /// the transition is undefined.
    table: Vec<StateId>,
    initial: StateId,
    finals: BitSet,
}

impl Dfa {
    /// Creates a DFA with `num_states` states, no transitions and no
    /// accepting states, starting in `initial`.
    pub fn new(num_states: usize, alphabet_len: usize, initial: StateId) -> Self {
        assert!(
            (initial as usize) < num_states.max(1),
            "initial out of range"
        );
        Dfa {
            alphabet_len,
            num_states,
            table: vec![DEAD; num_states * alphabet_len],
            initial,
            finals: BitSet::new(num_states),
        }
    }

    /// The canonical DFA of the empty language: one non-accepting state.
    pub fn empty_language(alphabet_len: usize) -> Self {
        Dfa::new(1, alphabet_len, 0)
    }

    /// The canonical DFA of `{ε}`: one accepting state, no transitions.
    pub fn epsilon_language(alphabet_len: usize) -> Self {
        let mut dfa = Dfa::new(1, alphabet_len, 0);
        dfa.set_final(0);
        dfa
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The accepting-state set.
    pub fn finals(&self) -> &BitSet {
        &self.finals
    }

    /// Marks `state` accepting.
    pub fn set_final(&mut self, state: StateId) {
        self.finals.insert(state as usize);
    }

    /// Whether `state` is accepting.
    pub fn is_final(&self, state: StateId) -> bool {
        self.finals.contains(state as usize)
    }

    /// Defines `from --sym--> to`.
    pub fn set_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        debug_assert!(sym.index() < self.alphabet_len);
        self.table[from as usize * self.alphabet_len + sym.index()] = to;
    }

    /// Removes the transition `from --sym-->`.
    pub fn clear_transition(&mut self, from: StateId, sym: Symbol) {
        self.table[from as usize * self.alphabet_len + sym.index()] = DEAD;
    }

    /// The successor of `state` on `sym`, if defined.
    ///
    /// `sym` must be within the DFA's alphabet: the table is dense, so a
    /// larger index would alias into another state's row. Callers joining
    /// against a bigger alphabet (graph NFAs) must skip foreign symbols —
    /// they cannot occur in `L(self)` anyway.
    #[inline]
    pub fn step(&self, state: StateId, sym: Symbol) -> Option<StateId> {
        debug_assert!(sym.index() < self.alphabet_len, "symbol out of alphabet");
        let t = self.table[state as usize * self.alphabet_len + sym.index()];
        (t != DEAD).then_some(t)
    }

    /// Raw table entry ([`DEAD`] when undefined); hot-loop variant of
    /// [`Dfa::step`] with the same alphabet precondition.
    #[inline]
    pub fn step_raw(&self, state: StateId, sym: Symbol) -> StateId {
        debug_assert!(sym.index() < self.alphabet_len, "symbol out of alphabet");
        self.table[state as usize * self.alphabet_len + sym.index()]
    }

    /// Runs the DFA on `word` from the initial state.
    pub fn run(&self, word: &[Symbol]) -> Option<StateId> {
        self.run_from(self.initial, word)
    }

    /// Runs the DFA on `word` from an arbitrary state.
    pub fn run_from(&self, mut state: StateId, word: &[Symbol]) -> Option<StateId> {
        for &sym in word {
            state = self.step(state, sym)?;
        }
        Some(state)
    }

    /// Word membership.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        self.run(word).is_some_and(|s| self.is_final(s))
    }

    /// Iterates over all defined transitions as `(from, symbol, to)`.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Symbol, StateId)> + '_ {
        (0..self.num_states).flat_map(move |s| {
            (0..self.alphabet_len).filter_map(move |a| {
                let t = self.table[s * self.alphabet_len + a];
                (t != DEAD).then_some((s as StateId, Symbol::from_index(a), t))
            })
        })
    }

    /// Converts to an equivalent NFA (shares no structure).
    pub fn to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::from_edges(
            self.num_states.max(1),
            self.alphabet_len,
            self.transitions(),
            [self.initial],
            self.finals.iter().map(|f| f as StateId),
        );
        nfa.set_initial(self.initial);
        nfa
    }

    /// Completes the DFA: if any transition is undefined, adds a sink state
    /// and routes every undefined transition (including the sink's) to it.
    /// Returns the completed DFA and the sink id if one was added.
    pub fn complete(&self) -> (Dfa, Option<StateId>) {
        let incomplete = self.table.contains(&DEAD) || self.num_states == 0;
        if !incomplete {
            return (self.clone(), None);
        }
        let sink = self.num_states as StateId;
        let mut out = Dfa::new(self.num_states + 1, self.alphabet_len, self.initial);
        for f in self.finals.iter() {
            out.finals.insert(f);
        }
        for s in 0..self.num_states {
            for a in 0..self.alphabet_len {
                let t = self.table[s * self.alphabet_len + a];
                out.table[s * self.alphabet_len + a] = if t == DEAD { sink } else { t };
            }
        }
        for a in 0..self.alphabet_len {
            out.table[sink as usize * self.alphabet_len + a] = sink;
        }
        (out, Some(sink))
    }

    /// The complement DFA (recognizing `Σ* \ L`).
    pub fn complement(&self) -> Dfa {
        let (mut complete, _) = self.complete();
        let mut flipped = BitSet::new(complete.num_states);
        for s in 0..complete.num_states {
            if !complete.finals.contains(s) {
                flipped.insert(s);
            }
        }
        complete.finals = flipped;
        complete
    }

    /// States reachable from the initial state.
    pub fn reachable(&self) -> BitSet {
        let mut seen = BitSet::new(self.num_states.max(1));
        if self.num_states == 0 {
            return seen;
        }
        seen.insert(self.initial as usize);
        let mut queue = VecDeque::from([self.initial]);
        while let Some(s) = queue.pop_front() {
            for a in 0..self.alphabet_len {
                let t = self.table[s as usize * self.alphabet_len + a];
                if t != DEAD && seen.insert(t as usize) {
                    queue.push_back(t);
                }
            }
        }
        seen
    }

    /// States from which some accepting state is reachable.
    pub fn coreachable(&self) -> BitSet {
        // Reverse adjacency walk.
        let mut preds: Vec<Vec<StateId>> = vec![Vec::new(); self.num_states];
        for (from, _, to) in self.transitions() {
            preds[to as usize].push(from);
        }
        let mut seen = BitSet::new(self.num_states.max(1));
        let mut queue: VecDeque<usize> = VecDeque::new();
        for f in self.finals.iter() {
            if seen.insert(f) {
                queue.push_back(f);
            }
        }
        while let Some(s) = queue.pop_front() {
            for &p in &preds[s] {
                if seen.insert(p as usize) {
                    queue.push_back(p as usize);
                }
            }
        }
        seen
    }

    /// Restricts to reachable-and-coreachable states ("trimming").
    ///
    /// If the language is empty the result is the canonical one-state
    /// empty-language DFA. Returns the trimmed DFA.
    pub fn trim(&self) -> Dfa {
        let mut live = self.reachable();
        live.intersect_with(&self.coreachable());
        if self.num_states == 0 || !live.contains(self.initial as usize) {
            return Dfa::empty_language(self.alphabet_len);
        }
        let mut map: Vec<StateId> = vec![DEAD; self.num_states];
        let mut next = 0;
        for s in live.iter() {
            map[s] = next;
            next += 1;
        }
        let mut out = Dfa::new(next as usize, self.alphabet_len, map[self.initial as usize]);
        for s in live.iter() {
            for a in 0..self.alphabet_len {
                let t = self.table[s * self.alphabet_len + a];
                if t != DEAD && map[t as usize] != DEAD {
                    out.table[map[s] as usize * self.alphabet_len + a] = map[t as usize];
                }
            }
            if self.finals.contains(s) {
                out.finals.insert(map[s] as usize);
            }
        }
        out
    }

    /// Renumbers states in BFS discovery order from the initial state,
    /// expanding symbols in alphabet order. Two isomorphic trimmed DFAs
    /// canonicalize to identical tables, so structural equality after
    /// `minimize() + canonicalize()` is language equivalence.
    ///
    /// Unreachable states are dropped.
    pub fn canonicalize(&self) -> Dfa {
        if self.num_states == 0 {
            return Dfa::empty_language(self.alphabet_len);
        }
        let mut map: Vec<StateId> = vec![DEAD; self.num_states];
        let mut order: Vec<StateId> = Vec::with_capacity(self.num_states);
        map[self.initial as usize] = 0;
        order.push(self.initial);
        let mut head = 0;
        while head < order.len() {
            let s = order[head];
            head += 1;
            for a in 0..self.alphabet_len {
                let t = self.table[s as usize * self.alphabet_len + a];
                if t != DEAD && map[t as usize] == DEAD {
                    map[t as usize] = order.len() as StateId;
                    order.push(t);
                }
            }
        }
        let mut out = Dfa::new(order.len(), self.alphabet_len, 0);
        for (new_id, &old) in order.iter().enumerate() {
            for a in 0..self.alphabet_len {
                let t = self.table[old as usize * self.alphabet_len + a];
                if t != DEAD {
                    out.table[new_id * self.alphabet_len + a] = map[t as usize];
                }
            }
            if self.finals.contains(old as usize) {
                out.finals.insert(new_id);
            }
        }
        out
    }

    /// The reversal DFA: recognizes `rev(L)` = `{ rev(w) | w ∈ L }`.
    ///
    /// Built by reversing the underlying NFA (finals become initials and
    /// every transition flips) and re-determinizing. The subset
    /// construction numbers states in BFS order with ascending symbols, so
    /// the result is already canonically numbered; it is *not* necessarily
    /// minimal (Brzozowski would need a second reversal), which is fine —
    /// the planner only needs the language and a deterministic table.
    pub fn reverse(&self) -> Dfa {
        crate::determinize::determinize(&self.to_nfa().reverse())
    }

    /// Planner preprocessing: dead/unreachable-state pruning followed by
    /// BFS state reordering — `trim()` then [`Dfa::canonicalize`].
    ///
    /// Language-preserving and alphabet-preserving, so
    /// [`crate::canonical::CanonicalQuery`] keys are unchanged; every
    /// evaluation engine sees a smaller, cache-friendlier product.
    pub fn reduced(&self) -> Dfa {
        self.trim().canonicalize()
    }

    /// Minimal canonical form: trim → Hopcroft → canonical numbering.
    /// See [`crate::minimize`].
    pub fn minimize(&self) -> Dfa {
        crate::minimize::minimize(self)
    }

    /// Language equivalence via canonical minimal forms.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        assert_eq!(
            self.alphabet_len, other.alphabet_len,
            "comparing DFAs over different alphabets"
        );
        self.minimize() == other.minimize()
    }

    /// `true` iff no accepted word is a proper prefix of another accepted
    /// word (paper §2: prefix-free queries are the minimal representatives
    /// of query-equivalence classes).
    pub fn is_prefix_free(&self) -> bool {
        let trimmed = self.trim();
        // In a trimmed DFA every state reaches a final state, so the
        // language is prefix-free iff no final state has an outgoing
        // transition.
        for f in trimmed.finals.iter() {
            for a in 0..trimmed.alphabet_len {
                if trimmed.table[f * trimmed.alphabet_len + a] != DEAD {
                    return false;
                }
            }
        }
        true
    }

    /// The prefix-free query equivalent to this one: removes every
    /// outgoing transition of every final state, then minimizes (§2).
    pub fn make_prefix_free(&self) -> Dfa {
        let mut pruned = self.clone();
        for f in self.finals.iter() {
            for a in 0..self.alphabet_len {
                pruned.table[f * self.alphabet_len + a] = DEAD;
            }
        }
        pruned.minimize()
    }

    /// `true` iff the recognized language is empty.
    pub fn language_is_empty(&self) -> bool {
        !self.reachable().intersects(&self.finals)
    }

    /// The `≤`-minimal accepted word, or `None` if the language is empty.
    pub fn shortest_accepted(&self) -> Option<Word> {
        self.to_nfa().shortest_accepted()
    }

    /// The paper's notion of query size: the number of states of the
    /// canonical (minimal, trimmed) DFA.
    pub fn canonical_size(&self) -> usize {
        self.minimize().num_states()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    /// Canonical DFA for (a·b)*·c over {a=0,b=1,c=2} — Figure 4 of the
    /// paper (3 states).
    pub(crate) fn fig4() -> Dfa {
        let mut dfa = Dfa::new(3, 3, 0);
        dfa.set_transition(0, sym(0), 1);
        dfa.set_transition(1, sym(1), 0);
        dfa.set_transition(0, sym(2), 2);
        dfa.set_final(2);
        dfa
    }

    #[test]
    fn accepts_fig4_language() {
        let dfa = fig4();
        assert!(dfa.accepts(&[sym(2)]));
        assert!(dfa.accepts(&[sym(0), sym(1), sym(2)]));
        assert!(dfa.accepts(&[sym(0), sym(1), sym(0), sym(1), sym(2)]));
        assert!(!dfa.accepts(&[]));
        assert!(!dfa.accepts(&[sym(0)]));
        assert!(!dfa.accepts(&[sym(0), sym(2)]));
    }

    #[test]
    fn complete_adds_single_sink() {
        let dfa = fig4();
        let (complete, sink) = dfa.complete();
        assert_eq!(sink, Some(3));
        assert_eq!(complete.num_states(), 4);
        // All transitions defined.
        assert!(complete.table.iter().all(|&t| t != DEAD));
        // Language unchanged.
        assert!(complete.accepts(&[sym(0), sym(1), sym(2)]));
        assert!(!complete.accepts(&[sym(1)]));
        // Completing a complete DFA is the identity.
        let (again, sink2) = complete.complete();
        assert_eq!(sink2, None);
        assert_eq!(again, complete);
    }

    #[test]
    fn complement_flips_membership() {
        let dfa = fig4();
        let comp = dfa.complement();
        for word in crate::word::enumerate_words(3, 4) {
            assert_ne!(dfa.accepts(&word), comp.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn trim_removes_dead_and_unreachable() {
        let mut dfa = Dfa::new(5, 2, 0);
        dfa.set_transition(0, sym(0), 1);
        dfa.set_transition(0, sym(1), 2); // 2 is dead
        dfa.set_transition(3, sym(0), 1); // 3 unreachable
        dfa.set_final(1);
        let trimmed = dfa.trim();
        assert_eq!(trimmed.num_states(), 2);
        assert!(trimmed.accepts(&[sym(0)]));
        assert!(!trimmed.accepts(&[sym(1)]));
    }

    #[test]
    fn trim_of_empty_language_is_one_state() {
        let dfa = Dfa::new(3, 2, 0); // no finals at all
        let trimmed = dfa.trim();
        assert_eq!(trimmed.num_states(), 1);
        assert!(trimmed.language_is_empty());
    }

    #[test]
    fn canonicalize_is_isomorphism_invariant() {
        let dfa = fig4();
        // Relabel states: 0->2, 1->0, 2->1.
        let mut relabeled = Dfa::new(3, 3, 2);
        relabeled.set_transition(2, sym(0), 0);
        relabeled.set_transition(0, sym(1), 2);
        relabeled.set_transition(2, sym(2), 1);
        relabeled.set_final(1);
        assert_eq!(dfa.canonicalize(), relabeled.canonicalize());
    }

    #[test]
    fn prefix_free_checks() {
        let dfa = fig4();
        assert!(dfa.is_prefix_free());
        // a·b* is not prefix-free; its prefix-free form is `a`.
        let mut ab_star = Dfa::new(2, 2, 0);
        ab_star.set_transition(0, sym(0), 1);
        ab_star.set_transition(1, sym(1), 1);
        ab_star.set_final(1);
        assert!(!ab_star.is_prefix_free());
        let pf = ab_star.make_prefix_free();
        assert!(pf.is_prefix_free());
        assert!(pf.accepts(&[sym(0)]));
        assert!(!pf.accepts(&[sym(0), sym(1)]));
        assert_eq!(pf.num_states(), 2);
    }

    #[test]
    fn equivalence_and_size() {
        let dfa = fig4();
        assert!(dfa.equivalent(&dfa.complete().0));
        assert!(!dfa.equivalent(&Dfa::empty_language(3)));
        assert_eq!(dfa.canonical_size(), 3); // paper: size of (a·b)*·c is 3
    }

    #[test]
    fn shortest_accepted_word() {
        let dfa = fig4();
        assert_eq!(dfa.shortest_accepted(), Some(vec![sym(2)]));
        assert_eq!(Dfa::empty_language(3).shortest_accepted(), None);
        assert_eq!(Dfa::epsilon_language(3).shortest_accepted(), Some(vec![]));
    }

    #[test]
    fn run_from_partial() {
        let dfa = fig4();
        assert_eq!(dfa.run(&[sym(0)]), Some(1));
        assert_eq!(dfa.run(&[sym(1)]), None);
        assert_eq!(dfa.run_from(1, &[sym(1), sym(2)]), Some(2));
    }
}
