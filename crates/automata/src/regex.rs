//! Regular expressions: AST, parser, printer, Thompson construction.
//!
//! The grammar is the paper's (§2):
//! `q := ε | a (a ∈ Σ) | q₁ + q₂ | q₁ · q₂ | q*` — extended with
//! parentheses and with `|` accepted as a synonym for `+`. Labels are
//! identifiers (`[A-Za-z_][A-Za-z0-9_]*`), so multi-character labels like
//! `tram` or `ProteinPurification` parse naturally; juxtaposition with
//! whitespace is an implicit concatenation (`a b` ≡ `a·b`).

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::symbol::{Alphabet, Symbol};
use crate::StateId;
use std::fmt;

/// Regular-expression abstract syntax tree.
///
/// ```
/// use pathlearn_automata::{Alphabet, Regex};
///
/// let alphabet = Alphabet::from_labels(["a", "b", "c"]);
/// let regex = Regex::parse("(a·b)*·c", &alphabet).unwrap();
/// let dfa = regex.to_dfa(alphabet.len());
/// assert_eq!(dfa.num_states(), 3); // Figure 4 of the paper
/// assert!(dfa.accepts(&alphabet.parse_word("a b c").unwrap()));
/// assert!(!dfa.accepts(&alphabet.parse_word("a c").unwrap()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex {
    /// The empty language `∅` (needed as an algebraic zero by state
    /// elimination; not produced by the parser).
    Empty,
    /// The empty word `ε`.
    Epsilon,
    /// A single symbol.
    Symbol(Symbol),
    /// Concatenation of two or more factors.
    Concat(Vec<Regex>),
    /// Disjunction of two or more alternatives.
    Alt(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
}

impl Regex {
    /// Builds a concatenation, flattening trivial cases.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Regex::Epsilon,
            1 => flat.pop().unwrap(),
            _ => Regex::Concat(flat),
        }
    }

    /// Builds a disjunction, flattening and deduplicating alternatives.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut flat: Vec<Regex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => {
                    for q in inner {
                        if !flat.contains(&q) {
                            flat.push(q);
                        }
                    }
                }
                other => {
                    if !flat.contains(&other) {
                        flat.push(other);
                    }
                }
            }
        }
        match flat.len() {
            0 => Regex::Empty,
            1 => flat.pop().unwrap(),
            _ => Regex::Alt(flat),
        }
    }

    /// Builds a star, collapsing `(r*)* = r*`, `∅* = ε*` = `ε`.
    pub fn star(inner: Regex) -> Regex {
        match inner {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            star @ Regex::Star(_) => star,
            other => Regex::Star(Box::new(other)),
        }
    }

    /// A disjunction of single symbols — the paper's `A = a₁ + … + aₙ`
    /// label classes (Table 1).
    pub fn symbol_class(symbols: &[Symbol]) -> Regex {
        Regex::alt(symbols.iter().map(|&s| Regex::Symbol(s)).collect())
    }

    /// `true` iff `ε ∈ L(self)`.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty => false,
            Regex::Epsilon => true,
            Regex::Symbol(_) => false,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
            Regex::Star(_) => true,
        }
    }

    /// Number of AST nodes (a crude complexity measure used by the state
    /// elimination heuristics).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(inner) => 1 + inner.size(),
        }
    }

    /// Thompson construction followed by ε-elimination: an ε-free NFA
    /// recognizing `L(self)`.
    pub fn to_nfa(&self, alphabet_len: usize) -> Nfa {
        let mut builder = ThompsonBuilder::new(alphabet_len);
        let fragment = builder.build(self);
        builder.finish(fragment)
    }

    /// The canonical (minimal) DFA of `L(self)`.
    pub fn to_dfa(&self, alphabet_len: usize) -> Dfa {
        crate::determinize::determinize(&self.to_nfa(alphabet_len)).minimize()
    }

    /// Parses a regex over an existing alphabet; unknown labels are errors.
    pub fn parse(input: &str, alphabet: &Alphabet) -> Result<Regex, ParseError> {
        Parser::new(input, Lookup::Fixed(alphabet)).parse()
    }

    /// Parses a regex, interning unknown labels into `alphabet`.
    pub fn parse_interning(input: &str, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
        Parser::new(input, Lookup::Interning(alphabet)).parse()
    }

    /// Renders the regex with label names from `alphabet`.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> impl fmt::Display + 'a {
        RegexDisplay {
            regex: self,
            alphabet,
        }
    }
}

// ---------------------------------------------------------------------------
// Thompson construction
// ---------------------------------------------------------------------------

/// ε-NFA under construction; edges carry `Option<Symbol>` (None = ε).
struct ThompsonBuilder {
    alphabet_len: usize,
    edges: Vec<Vec<(Option<Symbol>, StateId)>>,
}

/// A fragment with one entry and one exit state.
struct Fragment {
    start: StateId,
    end: StateId,
}

impl ThompsonBuilder {
    fn new(alphabet_len: usize) -> Self {
        ThompsonBuilder {
            alphabet_len,
            edges: Vec::new(),
        }
    }

    fn state(&mut self) -> StateId {
        self.edges.push(Vec::new());
        (self.edges.len() - 1) as StateId
    }

    fn edge(&mut self, from: StateId, label: Option<Symbol>, to: StateId) {
        self.edges[from as usize].push((label, to));
    }

    fn build(&mut self, regex: &Regex) -> Fragment {
        match regex {
            Regex::Empty => {
                let start = self.state();
                let end = self.state();
                Fragment { start, end }
            }
            Regex::Epsilon => {
                let start = self.state();
                let end = self.state();
                self.edge(start, None, end);
                Fragment { start, end }
            }
            Regex::Symbol(sym) => {
                let start = self.state();
                let end = self.state();
                self.edge(start, Some(*sym), end);
                Fragment { start, end }
            }
            Regex::Concat(parts) => {
                debug_assert!(!parts.is_empty());
                let mut iter = parts.iter();
                let first = self.build(iter.next().expect("non-empty concat"));
                let mut current = first.end;
                let start = first.start;
                for part in iter {
                    let next = self.build(part);
                    self.edge(current, None, next.start);
                    current = next.end;
                }
                Fragment {
                    start,
                    end: current,
                }
            }
            Regex::Alt(parts) => {
                let start = self.state();
                let end = self.state();
                for part in parts {
                    let frag = self.build(part);
                    self.edge(start, None, frag.start);
                    self.edge(frag.end, None, end);
                }
                Fragment { start, end }
            }
            Regex::Star(inner) => {
                let start = self.state();
                let end = self.state();
                let frag = self.build(inner);
                self.edge(start, None, frag.start);
                self.edge(frag.end, None, end);
                self.edge(start, None, end);
                self.edge(frag.end, None, frag.start);
                Fragment { start, end }
            }
        }
    }

    /// ε-closure elimination, producing an ε-free [`Nfa`].
    fn finish(self, fragment: Fragment) -> Nfa {
        let n = self.edges.len();
        // Per-state ε-closure by DFS.
        let mut closures: Vec<Vec<StateId>> = Vec::with_capacity(n);
        for s in 0..n as StateId {
            let mut seen = vec![false; n];
            let mut stack = vec![s];
            seen[s as usize] = true;
            let mut closure = Vec::new();
            while let Some(q) = stack.pop() {
                closure.push(q);
                for &(label, t) in &self.edges[q as usize] {
                    if label.is_none() && !seen[t as usize] {
                        seen[t as usize] = true;
                        stack.push(t);
                    }
                }
            }
            closures.push(closure);
        }
        let mut edge_list = Vec::new();
        for s in 0..n as StateId {
            for &q in &closures[s as usize] {
                for &(label, t) in &self.edges[q as usize] {
                    if let Some(sym) = label {
                        edge_list.push((s, sym, t));
                    }
                }
            }
        }
        let finals: Vec<StateId> = (0..n as StateId)
            .filter(|&s| closures[s as usize].contains(&fragment.end))
            .collect();
        let nfa = Nfa::from_edges(n, self.alphabet_len, edge_list, [fragment.start], finals);
        nfa.trim().0
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Error produced by [`Regex::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

enum Lookup<'a> {
    Fixed(&'a Alphabet),
    Interning(&'a mut Alphabet),
}

impl Lookup<'_> {
    fn resolve(&mut self, name: &str, position: usize) -> Result<Symbol, ParseError> {
        match self {
            Lookup::Fixed(alphabet) => alphabet.symbol(name).ok_or_else(|| ParseError {
                position,
                message: format!("unknown label `{name}`"),
            }),
            Lookup::Interning(alphabet) => Ok(alphabet.intern(name)),
        }
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    lookup: Lookup<'a>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, lookup: Lookup<'a>) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            lookup,
        }
    }

    fn parse(mut self) -> Result<Regex, ParseError> {
        let regex = self.parse_alt()?;
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(regex)
    }

    fn error(&self, message: &str) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn parse_alt(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_concat()?];
        while let Some(c) = self.peek() {
            if c == b'+' || c == b'|' {
                self.pos += 1;
                parts.push(self.parse_concat()?);
            } else {
                break;
            }
        }
        Ok(Regex::alt(parts))
    }

    /// `true` if the input at the current position starts with the UTF-8
    /// encoding of `ch`; consumes it when it does.
    fn eat_utf8(&mut self, ch: char) -> bool {
        let mut buf = [0u8; 4];
        let encoded = ch.encode_utf8(&mut buf).as_bytes();
        if self.input[self.pos..].starts_with(encoded) {
            self.pos += encoded.len();
            true
        } else {
            false
        }
    }

    fn parse_concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_postfix()?];
        loop {
            match self.peek() {
                Some(b'.') => {
                    self.pos += 1;
                    parts.push(self.parse_postfix()?);
                }
                // The paper's concatenation dot `·` (U+00B7).
                Some(0xC2) if self.eat_utf8('·') => {
                    parts.push(self.parse_postfix()?);
                }
                // Implicit concatenation before an atom start.
                Some(c) if c == b'(' || is_ident_start(c) || c == 0xCE => {
                    parts.push(self.parse_postfix()?);
                }
                _ => break,
            }
        }
        Ok(Regex::concat(parts))
    }

    fn parse_postfix(&mut self) -> Result<Regex, ParseError> {
        let mut atom = self.parse_atom()?;
        while let Some(b'*') = self.peek() {
            self.pos += 1;
            atom = Regex::star(atom);
        }
        Ok(atom)
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        match self.peek() {
            // The paper's `ε` (U+03B5).
            Some(0xCE) => {
                if self.eat_utf8('ε') {
                    Ok(Regex::Epsilon)
                } else {
                    Err(self.error("expected label, `(` or `eps`"))
                }
            }
            Some(b'(') => {
                self.pos += 1;
                let inner = self.parse_alt()?;
                if self.peek() != Some(b')') {
                    return Err(self.error("expected `)`"));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(c) if is_ident_start(c) => {
                let start = self.pos;
                while self.pos < self.input.len() && is_ident_continue(self.input[self.pos]) {
                    self.pos += 1;
                }
                let name =
                    std::str::from_utf8(&self.input[start..self.pos]).expect("ascii identifier");
                if name == "eps" {
                    return Ok(Regex::Epsilon);
                }
                let sym = self.lookup.resolve(name, start)?;
                Ok(Regex::Symbol(sym))
            }
            Some(_) => Err(self.error("expected label, `(` or `eps`")),
            None => Err(self.error("unexpected end of input")),
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

struct RegexDisplay<'a> {
    regex: &'a Regex,
    alphabet: &'a Alphabet,
}

/// Operator precedence levels for printing.
fn precedence(regex: &Regex) -> u8 {
    match regex {
        Regex::Alt(_) => 0,
        Regex::Concat(_) => 1,
        Regex::Star(_) => 2,
        _ => 3,
    }
}

fn write_regex(
    f: &mut fmt::Formatter<'_>,
    regex: &Regex,
    alphabet: &Alphabet,
    parent_precedence: u8,
) -> fmt::Result {
    let own = precedence(regex);
    let parens = own < parent_precedence;
    if parens {
        write!(f, "(")?;
    }
    match regex {
        Regex::Empty => write!(f, "∅")?,
        Regex::Epsilon => write!(f, "ε")?,
        Regex::Symbol(sym) => write!(f, "{}", alphabet.name(*sym))?,
        Regex::Concat(parts) => {
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, "·")?;
                }
                write_regex(f, part, alphabet, 2)?;
            }
        }
        Regex::Alt(parts) => {
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " + ")?;
                }
                write_regex(f, part, alphabet, 1)?;
            }
        }
        Regex::Star(inner) => {
            write_regex(f, inner, alphabet, 3)?;
            write!(f, "*")?;
        }
    }
    if parens {
        write!(f, ")")?;
    }
    Ok(())
}

impl fmt::Display for RegexDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_regex(f, self.regex, self.alphabet, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::enumerate_words;

    fn alphabet() -> Alphabet {
        Alphabet::from_labels(["a", "b", "c"])
    }

    fn parse(s: &str) -> (Regex, Alphabet) {
        let alphabet = alphabet();
        let regex = Regex::parse(s, &alphabet).unwrap();
        (regex, alphabet)
    }

    #[test]
    fn parse_paper_query() {
        let (regex, alphabet) = parse("(a·b)*·c");
        assert_eq!(regex.display(&alphabet).to_string(), "(a·b)*·c");
        let dfa = regex.to_dfa(alphabet.len());
        assert_eq!(dfa.num_states(), 3); // Figure 4: canonical size 3
        let a = alphabet.symbol("a").unwrap();
        let b = alphabet.symbol("b").unwrap();
        let c = alphabet.symbol("c").unwrap();
        assert!(dfa.accepts(&[c]));
        assert!(dfa.accepts(&[a, b, c]));
        assert!(!dfa.accepts(&[a, c]));
    }

    #[test]
    fn parse_variants_agree() {
        let (r1, alpha) = parse("(a·b)*·c");
        let r2 = Regex::parse("(a b)* c", &alpha).unwrap();
        let r3 = Regex::parse("(a.b)*.c", &alpha).unwrap();
        assert!(r1.to_dfa(3).equivalent(&r2.to_dfa(3)));
        assert!(r1.to_dfa(3).equivalent(&r3.to_dfa(3)));
    }

    #[test]
    fn parse_alt_and_pipe() {
        let (r1, alpha) = parse("a + b");
        let r2 = Regex::parse("a | b", &alpha).unwrap();
        assert_eq!(r1, r2);
        let dfa = r1.to_dfa(3);
        assert!(dfa.accepts(&[alpha.symbol("a").unwrap()]));
        assert!(dfa.accepts(&[alpha.symbol("b").unwrap()]));
        assert!(!dfa.accepts(&[alpha.symbol("c").unwrap()]));
    }

    #[test]
    fn parse_epsilon_and_multichar_labels() {
        let mut alphabet = Alphabet::new();
        let regex = Regex::parse_interning("tram (bus + eps) cinema*", &mut alphabet).unwrap();
        assert!(!regex.nullable());
        assert_eq!(alphabet.len(), 3);
        let dfa = regex.to_dfa(alphabet.len());
        let tram = alphabet.symbol("tram").unwrap();
        let bus = alphabet.symbol("bus").unwrap();
        let cinema = alphabet.symbol("cinema").unwrap();
        assert!(dfa.accepts(&[tram]));
        assert!(dfa.accepts(&[tram, bus]));
        assert!(dfa.accepts(&[tram, cinema, cinema]));
        assert!(!dfa.accepts(&[bus]));
    }

    #[test]
    fn parse_errors() {
        let alphabet = alphabet();
        assert!(Regex::parse("a + ", &alphabet).is_err());
        assert!(Regex::parse("(a", &alphabet).is_err());
        assert!(Regex::parse("a )", &alphabet).is_err());
        assert!(Regex::parse("unknown", &alphabet).is_err());
        assert!(Regex::parse("", &alphabet).is_err());
        assert!(Regex::parse("*a", &alphabet).is_err());
    }

    #[test]
    fn thompson_matches_direct_semantics() {
        // Check L((a+b)*·c·(a+ε)) by brute force against a hand model.
        let (regex, alphabet) = parse("(a+b)* c (a + eps)");
        let nfa = regex.to_nfa(alphabet.len());
        let a = alphabet.symbol("a").unwrap();
        let b = alphabet.symbol("b").unwrap();
        let c = alphabet.symbol("c").unwrap();
        let model = |w: &[Symbol]| -> bool {
            // prefix of a/b, then c, optional trailing a.
            let mut rest = w;
            if rest.last() == Some(&a) && rest.len() >= 2 && rest[rest.len() - 2] == c {
                rest = &rest[..rest.len() - 1];
            }
            if rest.last() != Some(&c) {
                return false;
            }
            rest[..rest.len() - 1].iter().all(|&s| s == a || s == b)
        };
        for word in enumerate_words(alphabet.len(), 5) {
            assert_eq!(nfa.accepts(&word), model(&word), "{word:?}");
        }
    }

    #[test]
    fn smart_constructors_normalize() {
        let a = Regex::Symbol(Symbol::from_index(0));
        assert_eq!(Regex::concat(vec![Regex::Epsilon, a.clone()]), a);
        assert_eq!(Regex::concat(vec![]), Regex::Epsilon);
        assert_eq!(Regex::concat(vec![Regex::Empty, a.clone()]), Regex::Empty);
        assert_eq!(Regex::alt(vec![a.clone(), a.clone()]), a);
        assert_eq!(Regex::alt(vec![]), Regex::Empty);
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::star(a.clone())), Regex::star(a.clone()));
    }

    #[test]
    fn nullable_cases() {
        let (r, _) = parse("(a·b)*·c");
        assert!(!r.nullable());
        let (r2, _) = parse("(a·b)*");
        assert!(r2.nullable());
        let (r3, _) = parse("a* + b");
        assert!(r3.nullable());
    }

    #[test]
    fn display_round_trips_through_parser() {
        let alphabet = alphabet();
        for text in ["(a·b)*·c", "a + b·c", "a·(b + c)*·a", "eps + a"] {
            let regex = Regex::parse(text, &alphabet).unwrap();
            let printed = regex.display(&alphabet).to_string();
            // `ε` prints but does not lex; replace for re-parsing.
            let reparsed = Regex::parse(&printed.replace('ε', "eps"), &alphabet).unwrap();
            assert!(
                regex.to_dfa(3).equivalent(&reparsed.to_dfa(3)),
                "{text} -> {printed}"
            );
        }
    }
}
