//! Product constructions and intersection-emptiness tests.
//!
//! Two operations from the paper's complexity toolbox live here:
//!
//! * **emptiness of the intersection of two NFAs** — PTIME (\[29\] in the
//!   paper) — used by Algorithm 1 both for the merge-consistency test
//!   (line 4: `L(A_{s'→s}) ∩ paths_G(S⁻) = ∅`) and for the final
//!   positive-coverage test (line 6);
//! * the **canonically-minimal witness word** of a non-empty intersection,
//!   used by tests and by the SCP machinery's cross-checks.
//!
//! All searches are on-the-fly: pair states are only materialized when
//! reached, so intersecting a small query DFA with a 30k-node graph NFA
//! touches `O(|Q|·|V|)` pairs at worst.

use crate::bitset::BitSet;
use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::symbol::Symbol;
use crate::word::Word;
use crate::StateId;
use std::collections::VecDeque;

/// `true` iff `L(a) ∩ L(b) = ∅` — BFS over nondeterministic pair states
/// (cheap; no word-order guarantee is needed for emptiness).
pub fn nfa_intersection_is_empty(a: &Nfa, b: &Nfa) -> bool {
    let bn = b.num_states();
    let pair = |sa: StateId, sb: StateId| sa as usize * bn + sb as usize;
    let mut seen = BitSet::new(a.num_states().max(1) * bn.max(1));
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();
    for &sa in a.initials() {
        for &sb in b.initials() {
            if a.is_final(sa) && b.is_final(sb) {
                return false;
            }
            if seen.insert(pair(sa, sb)) {
                queue.push_back((sa, sb));
            }
        }
    }
    while let Some((sa, sb)) = queue.pop_front() {
        // Merge-join the two sorted transition rows by symbol.
        let row_a = a.transitions_from(sa);
        let row_b = b.transitions_from(sb);
        let mut i = 0;
        while i < row_a.len() {
            let sym = row_a[i].0;
            let end_a = row_a[i..].partition_point(|&(s, _)| s == sym) + i;
            let start_b = row_b.partition_point(|&(s, _)| s < sym);
            let end_b = row_b.partition_point(|&(s, _)| s <= sym);
            for &(_, ta) in &row_a[i..end_a] {
                for &(_, tb) in &row_b[start_b..end_b] {
                    if a.is_final(ta) && b.is_final(tb) {
                        return false;
                    }
                    if seen.insert(pair(ta, tb)) {
                        queue.push_back((ta, tb));
                    }
                }
            }
            i = end_a;
        }
    }
    true
}

/// The `≤`-minimal word of `L(a) ∩ L(b)`, or `None` if empty.
///
/// Runs on the **jointly determinized** product — state = (reach-set of
/// `a`, reach-set of `b`) — so each word maps to a unique search state and
/// BFS with ascending symbols discovers states in canonical order of
/// their minimal words. (A pair-state BFS would break lexicographic ties
/// between states sharing a minimal word.)
pub fn nfa_intersection_shortest(a: &Nfa, b: &Nfa) -> Option<Word> {
    let init_a = a.initial_set();
    let init_b = b.initial_set();
    if init_a.intersects(a.finals()) && init_b.intersects(b.finals()) {
        return Some(Vec::new());
    }
    if init_a.is_empty() || init_b.is_empty() {
        return None;
    }
    let alphabet = a.alphabet_len();
    let mut seen: std::collections::HashSet<(BitSet, BitSet)> = std::collections::HashSet::new();
    let mut queue: VecDeque<(BitSet, BitSet, Word)> = VecDeque::new();
    seen.insert((init_a.clone(), init_b.clone()));
    queue.push_back((init_a, init_b, Vec::new()));
    while let Some((set_a, set_b, word)) = queue.pop_front() {
        for i in 0..alphabet {
            let sym = Symbol::from_index(i);
            let next_a = a.step_set(&set_a, sym);
            if next_a.is_empty() {
                continue;
            }
            let next_b = b.step_set(&set_b, sym);
            if next_b.is_empty() {
                continue;
            }
            let mut next_word = word.clone();
            next_word.push(sym);
            if next_a.intersects(a.finals()) && next_b.intersects(b.finals()) {
                return Some(next_word);
            }
            let key = (next_a, next_b);
            if !seen.contains(&key) {
                seen.insert(key.clone());
                queue.push_back((key.0, key.1, next_word));
            }
        }
    }
    None
}

/// `true` iff `L(dfa) ∩ L(nfa) = ∅`.
///
/// Specialized hot path for Algorithm 1's merge test: the DFA side is the
/// merge candidate (a handful of states), the NFA side the graph's
/// negative-paths language.
pub fn dfa_nfa_intersection_is_empty(dfa: &Dfa, nfa: &Nfa) -> bool {
    if dfa.num_states() == 0 {
        return true;
    }
    let nn = nfa.num_states();
    let pair = |q: StateId, s: StateId| q as usize * nn + s as usize;
    let mut seen = BitSet::new(dfa.num_states() * nn.max(1));
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();

    let q0 = dfa.initial();
    for &s in nfa.initials() {
        if dfa.is_final(q0) && nfa.is_final(s) {
            return false;
        }
        if seen.insert(pair(q0, s)) {
            queue.push_back((q0, s));
        }
    }
    while let Some((q, s)) = queue.pop_front() {
        for &(sym, t) in nfa.transitions_from(s) {
            // Symbols beyond the DFA's alphabet cannot occur in L(dfa);
            // stepping with them would also read out of (or alias into
            // the wrong row of) its dense transition table.
            if sym.index() >= dfa.alphabet_len() {
                continue;
            }
            if let Some(qt) = dfa.step(q, sym) {
                if dfa.is_final(qt) && nfa.is_final(t) {
                    return false;
                }
                if seen.insert(pair(qt, t)) {
                    queue.push_back((qt, t));
                }
            }
        }
    }
    true
}

/// Materialized product NFA recognizing `L(a) ∩ L(b)` (used by tests; the
/// searches above are preferred in production paths).
pub fn nfa_product(a: &Nfa, b: &Nfa) -> Nfa {
    let bn = b.num_states();
    let n = a.num_states() * bn;
    let mut edges = Vec::new();
    for sa in 0..a.num_states() as StateId {
        for &(sym, ta) in a.transitions_from(sa) {
            for sb in 0..bn as StateId {
                for &(_, tb) in b.successors(sb, sym) {
                    edges.push((sa * bn as StateId + sb, sym, ta * bn as StateId + tb));
                }
            }
        }
    }
    let initials = a
        .initials()
        .iter()
        .flat_map(|&sa| b.initials().iter().map(move |&sb| sa * bn as StateId + sb))
        .collect::<Vec<_>>();
    let finals = a
        .finals()
        .iter()
        .flat_map(|fa| b.finals().iter().map(move |fb| (fa * bn + fb) as StateId))
        .collect::<Vec<_>>();
    Nfa::from_edges(n.max(1), a.alphabet_len(), edges, initials, finals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    /// NFA for (ab)*c.
    fn abc() -> Nfa {
        let mut nfa = Nfa::new(3, 3);
        nfa.set_initial(0);
        nfa.add_transition(0, sym(0), 1);
        nfa.add_transition(1, sym(1), 0);
        nfa.add_transition(0, sym(2), 2);
        nfa.set_final(2);
        nfa
    }

    /// All-final NFA for the prefix-closed language {ε, a, ab, abc, c-ish}.
    fn paths_like() -> Nfa {
        let mut nfa = Nfa::new(4, 3);
        nfa.set_initial(0);
        nfa.add_transition(0, sym(0), 1);
        nfa.add_transition(1, sym(1), 2);
        nfa.add_transition(2, sym(2), 3);
        nfa.set_all_final();
        nfa
    }

    #[test]
    fn nonempty_intersection_with_witness() {
        let a = abc();
        let b = paths_like();
        assert!(!nfa_intersection_is_empty(&a, &b));
        assert_eq!(
            nfa_intersection_shortest(&a, &b),
            Some(vec![sym(0), sym(1), sym(2)])
        );
    }

    #[test]
    fn empty_intersection() {
        let a = abc();
        // Language {b}:
        let mut b = Nfa::new(2, 3);
        b.set_initial(0);
        b.add_transition(0, sym(1), 1);
        b.set_final(1);
        assert!(nfa_intersection_is_empty(&a, &b));
        assert_eq!(nfa_intersection_shortest(&a, &b), None);
    }

    #[test]
    fn epsilon_in_both() {
        let mut a = Nfa::new(1, 1);
        a.set_initial(0);
        a.set_final(0);
        let mut b = Nfa::new(1, 1);
        b.set_initial(0);
        b.set_final(0);
        assert!(!nfa_intersection_is_empty(&a, &b));
        assert_eq!(nfa_intersection_shortest(&a, &b), Some(vec![]));
    }

    #[test]
    fn witness_is_canonical_minimum() {
        // a: accepts {ba, c}; b: accepts everything (all-final complete).
        let mut a = Nfa::new(3, 3);
        a.set_initial(0);
        a.add_transition(0, sym(1), 1);
        a.add_transition(1, sym(0), 2);
        a.add_transition(0, sym(2), 2);
        a.set_final(2);
        let mut b = Nfa::new(1, 3);
        b.set_initial(0);
        for i in 0..3 {
            b.add_transition(0, sym(i), 0);
        }
        b.set_all_final();
        // Shortest is "c" (length 1) even though "ba" exists.
        assert_eq!(nfa_intersection_shortest(&a, &b), Some(vec![sym(2)]));
    }

    #[test]
    fn dfa_nfa_emptiness_agrees_with_nfa_version() {
        let dfa = crate::determinize::determinize(&abc()).minimize();
        let b = paths_like();
        assert!(!dfa_nfa_intersection_is_empty(&dfa, &b));
        let mut only_b = Nfa::new(2, 3);
        only_b.set_initial(0);
        only_b.add_transition(0, sym(1), 1);
        only_b.set_final(1);
        assert!(dfa_nfa_intersection_is_empty(&dfa, &only_b));
    }

    #[test]
    fn dfa_nfa_emptiness_with_smaller_dfa_alphabet() {
        // Regression (found by the cross-engine differential suite): an
        // NFA symbol beyond the DFA's alphabet must be treated as dead,
        // not index into the dense table (which aliases into the next
        // state's row, or panics on the last row).
        // DFA over {a} accepting {a}; NFA over {a, b, c} whose only
        // accepting runs use c — the intersection is empty.
        let mut dfa = Dfa::new(2, 1, 0);
        dfa.set_transition(0, sym(0), 1);
        dfa.set_final(1);
        let mut nfa = Nfa::new(2, 3);
        nfa.set_initial(0);
        nfa.add_transition(0, sym(2), 1);
        nfa.set_final(1);
        assert!(dfa_nfa_intersection_is_empty(&dfa, &nfa));
        // And with an accepting a-run the intersection is non-empty.
        nfa.add_transition(0, sym(0), 1);
        assert!(!dfa_nfa_intersection_is_empty(&dfa, &nfa));
    }

    #[test]
    fn product_nfa_language_matches_search() {
        let a = abc();
        let b = paths_like();
        let prod = nfa_product(&a, &b);
        for word in crate::word::enumerate_words(3, 4) {
            assert_eq!(
                prod.accepts(&word),
                a.accepts(&word) && b.accepts(&word),
                "{word:?}"
            );
        }
    }
}
