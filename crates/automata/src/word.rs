//! Words over an alphabet and the canonical order `≤` of the paper.
//!
//! §2 of the paper: *"we extend the order on Σ to the standard
//! lexicographical order `≤_lex` on words over Σ and define a well-founded
//! canonical order `≤` on words: `w ≤ u` iff `|w| < |u|` or `|w| = |u|` and
//! `w ≤_lex u`."* Paths, SCPs and characteristic samples are all ranked by
//! this order, so it lives here once and is reused everywhere.

use crate::symbol::{Alphabet, Symbol};
use std::cmp::Ordering;

/// A word is a sequence of interned symbols. The empty vector is `ε`.
pub type Word = Vec<Symbol>;

/// Canonical order on words: shorter first, ties broken lexicographically
/// by symbol order.
pub fn canonical_cmp(a: &[Symbol], b: &[Symbol]) -> Ordering {
    a.len().cmp(&b.len()).then_with(|| a.cmp(b))
}

/// `true` iff `a` strictly precedes `b` in the canonical order.
pub fn canonical_lt(a: &[Symbol], b: &[Symbol]) -> bool {
    canonical_cmp(a, b) == Ordering::Less
}

/// Sorts a collection of words in canonical order and removes duplicates.
pub fn sort_canonical(words: &mut Vec<Word>) {
    words.sort_by(|a, b| canonical_cmp(a, b));
    words.dedup();
}

/// Renders a word with `·`-separated label names, or `ε` when empty.
pub fn format_word(word: &[Symbol], alphabet: &Alphabet) -> String {
    if word.is_empty() {
        return "ε".to_owned();
    }
    word.iter()
        .map(|&s| alphabet.name(s))
        .collect::<Vec<_>>()
        .join("·")
}

/// Returns `true` iff `prefix` is a (not necessarily proper) prefix of
/// `word`.
pub fn is_prefix(prefix: &[Symbol], word: &[Symbol]) -> bool {
    word.len() >= prefix.len() && &word[..prefix.len()] == prefix
}

/// Enumerates all words over an alphabet of size `alphabet_len` with length
/// at most `max_len`, in canonical order. Intended for tests and
/// brute-force cross-checks only: the output has `Σ_{i≤k} |Σ|^i` entries.
pub fn enumerate_words(alphabet_len: usize, max_len: usize) -> Vec<Word> {
    let mut all: Vec<Word> = vec![Vec::new()];
    let mut frontier: Vec<Word> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::with_capacity(frontier.len() * alphabet_len.max(1));
        for word in &frontier {
            for s in 0..alphabet_len {
                let mut extended = word.clone();
                extended.push(Symbol::from_index(s));
                next.push(extended);
            }
        }
        all.extend(next.iter().cloned());
        frontier = next;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    #[test]
    fn canonical_order_prefers_shorter() {
        // |b| < |aa| so b < aa despite b >_lex a.
        assert!(canonical_lt(&[sym(1)], &[sym(0), sym(0)]));
        assert!(!canonical_lt(&[sym(0), sym(0)], &[sym(1)]));
    }

    #[test]
    fn canonical_order_same_length_is_lex() {
        assert!(canonical_lt(&[sym(0), sym(1)], &[sym(1), sym(0)]));
        assert_eq!(
            canonical_cmp(&[sym(0), sym(1)], &[sym(0), sym(1)]),
            Ordering::Equal
        );
    }

    #[test]
    fn epsilon_is_minimum() {
        let eps: Word = Vec::new();
        assert!(canonical_lt(&eps, &[sym(0)]));
    }

    #[test]
    fn enumerate_words_is_canonically_sorted_and_complete() {
        let words = enumerate_words(2, 3);
        // 1 + 2 + 4 + 8 = 15 words.
        assert_eq!(words.len(), 15);
        for pair in words.windows(2) {
            assert!(canonical_lt(&pair[0], &pair[1]));
        }
    }

    #[test]
    fn format_word_renders_epsilon_and_labels() {
        let alphabet = Alphabet::from_labels(["a", "b"]);
        assert_eq!(format_word(&[], &alphabet), "ε");
        let word = alphabet.parse_word("a b").unwrap();
        assert_eq!(format_word(&word, &alphabet), "a·b");
    }

    #[test]
    fn prefix_check() {
        let a = sym(0);
        let b = sym(1);
        assert!(is_prefix(&[], &[a, b]));
        assert!(is_prefix(&[a], &[a, b]));
        assert!(is_prefix(&[a, b], &[a, b]));
        assert!(!is_prefix(&[b], &[a, b]));
        assert!(!is_prefix(&[a, b, a], &[a, b]));
    }

    #[test]
    fn sort_canonical_dedups() {
        let a = sym(0);
        let b = sym(1);
        let mut words = vec![vec![b], vec![a], vec![a, b], vec![a], vec![]];
        sort_canonical(&mut words);
        assert_eq!(words, vec![vec![], vec![a], vec![b], vec![a, b]]);
    }
}
