//! Subset construction (NFA → DFA).

use crate::bitset::BitSet;
use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::symbol::Symbol;
use crate::StateId;
use std::collections::HashMap;

/// Determinizes an NFA by subset construction.
///
/// Macro-states are explored in BFS order with symbols ascending, so the
/// output is already canonically numbered. The empty macro-state is never
/// materialized (the output stays partial instead of gaining a sink).
///
/// Worst case `O(2^n)` states — the callers in this workspace only
/// determinize small automata (PTAs, query DFAs, characteristic
/// constructions); graph-sized NFAs are handled by the on-the-fly
/// algorithms in [`crate::product`] and [`crate::inclusion`].
pub fn determinize(nfa: &Nfa) -> Dfa {
    let alphabet = nfa.alphabet_len();
    let initial = nfa.initial_set();

    let mut index: HashMap<BitSet, StateId> = HashMap::new();
    let mut subsets: Vec<BitSet> = Vec::new();
    index.insert(initial.clone(), 0);
    subsets.push(initial);

    // Transitions discovered so far, row-major like `Dfa`.
    let mut rows: Vec<StateId> = Vec::new();
    let mut head = 0usize;
    while head < subsets.len() {
        let current = subsets[head].clone();
        head += 1;
        for a in 0..alphabet {
            let next = nfa.step_set(&current, Symbol::from_index(a));
            if next.is_empty() {
                rows.push(crate::dfa::DEAD);
                continue;
            }
            let fresh = subsets.len() as StateId;
            let id = *index.entry(next.clone()).or_insert_with(|| {
                subsets.push(next);
                fresh
            });
            rows.push(id);
        }
    }

    let mut dfa = Dfa::new(subsets.len(), alphabet, 0);
    for (s, subset) in subsets.iter().enumerate() {
        for a in 0..alphabet {
            let t = rows[s * alphabet + a];
            if t != crate::dfa::DEAD {
                dfa.set_transition(s as StateId, Symbol::from_index(a), t);
            }
        }
        if subset.intersects(nfa.finals()) {
            dfa.set_final(s as StateId);
        }
    }
    dfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::enumerate_words;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    #[test]
    fn determinize_preserves_language() {
        // NFA for Σ*·a·b over {a,b}: nondeterministic guess of the suffix.
        let mut nfa = Nfa::new(3, 2);
        nfa.set_initial(0);
        nfa.add_transition(0, sym(0), 0);
        nfa.add_transition(0, sym(1), 0);
        nfa.add_transition(0, sym(0), 1);
        nfa.add_transition(1, sym(1), 2);
        nfa.set_final(2);
        let dfa = determinize(&nfa);
        for word in enumerate_words(2, 6) {
            assert_eq!(nfa.accepts(&word), dfa.accepts(&word), "{word:?}");
        }
    }

    #[test]
    fn determinize_multiple_initials() {
        let mut nfa = Nfa::new(3, 2);
        nfa.set_initial(0);
        nfa.set_initial(1);
        nfa.add_transition(0, sym(0), 2);
        nfa.add_transition(1, sym(1), 2);
        nfa.set_final(2);
        let dfa = determinize(&nfa);
        assert!(dfa.accepts(&[sym(0)]));
        assert!(dfa.accepts(&[sym(1)]));
        assert!(!dfa.accepts(&[]));
        assert!(!dfa.accepts(&[sym(0), sym(1)]));
    }

    #[test]
    fn determinize_empty_language() {
        let mut nfa = Nfa::new(1, 2);
        nfa.set_initial(0);
        let dfa = determinize(&nfa);
        assert!(dfa.language_is_empty());
    }

    #[test]
    fn determinized_output_is_deterministic_and_canonical() {
        let mut nfa = Nfa::new(2, 2);
        nfa.set_initial(0);
        nfa.add_transition(0, sym(0), 0);
        nfa.add_transition(0, sym(0), 1);
        nfa.set_final(1);
        let dfa = determinize(&nfa);
        assert_eq!(dfa.canonicalize(), dfa);
    }
}
