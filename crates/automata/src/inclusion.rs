//! Antichain-based language inclusion for NFAs.
//!
//! Deciding `L(A) ⊆ L(B)` for NFAs is PSPACE-complete (\[39\] in the paper,
//! Stockmeyer & Meyer); it is the computational core of both consistency
//! checking (Lemma 3.1 / 3.2) and certain-node detection (Lemma 4.1 / 4.2).
//! The paper proves these problems intractable and then *approximates* them
//! in practice; we additionally ship the exact procedure so the approximate
//! variants can be validated on small inputs and so library users can run
//! the exact checks when their graphs allow it.
//!
//! The algorithm explores pairs `(s, T)` where `s` is an `A`-state and `T`
//! the set of `B`-states reachable on the same word, determinizing `B`
//! on-the-fly. A counterexample is a pair with `s` accepting and `T`
//! containing no accepting state. The **antichain optimization** prunes any
//! pair `(s, T)` when some visited `(s, T')` has `T' ⊆ T`: every
//! counterexample reachable from `(s, T)` is also reachable from `(s, T')`.
//! Exploration is BFS with symbols ascending, so the returned
//! counterexample is `≤`-minimal.

use crate::bitset::BitSet;
use crate::nfa::Nfa;
use crate::symbol::Symbol;
use crate::word::Word;
use std::collections::VecDeque;

/// Result of an inclusion check: `Ok(())` if `L(a) ⊆ L(b)`, otherwise the
/// `≤`-minimal counterexample word.
///
/// The search state is the **determinized pair** (reach-set of `a`,
/// reach-set of `b`) so each word maps to a unique state and the BFS
/// discovery order is the canonical order of minimal words — making the
/// returned counterexample `≤`-minimal. Antichain pruning is keyed by the
/// `a`-side set: `(S_a, S_b)` is subsumed by a visited `(S_a, S_b')` with
/// `S_b' ⊆ S_b`, because any suffix escaping `b` from the larger set also
/// escapes from the smaller one.
pub fn nfa_included_in(a: &Nfa, b: &Nfa) -> Result<(), Word> {
    assert_eq!(a.alphabet_len(), b.alphabet_len(), "alphabet mismatch");
    let alphabet = a.alphabet_len();

    let a_init = a.initial_set();
    let b_init = b.initial_set();
    if a_init.intersects(a.finals()) && !b_init.intersects(b.finals()) {
        return Err(Vec::new());
    }
    if a_init.is_empty() {
        return Ok(());
    }

    // visited[S_a] = antichain of ⊆-minimal B-sets seen with S_a.
    let mut visited: std::collections::HashMap<BitSet, Vec<BitSet>> =
        std::collections::HashMap::new();
    let mut queue: VecDeque<(BitSet, BitSet, Word)> = VecDeque::new();
    antichain_insert(visited.entry(a_init.clone()).or_default(), &b_init);
    queue.push_back((a_init, b_init, Vec::new()));

    while let Some((a_set, b_set, word)) = queue.pop_front() {
        for sym_index in 0..alphabet {
            let sym = Symbol::from_index(sym_index);
            let a_next = a.step_set(&a_set, sym);
            if a_next.is_empty() {
                continue; // no word of L(a) continues this way
            }
            let b_next = b.step_set(&b_set, sym);
            if a_next.intersects(a.finals()) && !b_next.intersects(b.finals()) {
                let mut counterexample = word.clone();
                counterexample.push(sym);
                return Err(counterexample);
            }
            if antichain_insert(visited.entry(a_next.clone()).or_default(), &b_next) {
                let mut next_word = word.clone();
                next_word.push(sym);
                queue.push_back((a_next, b_next, next_word));
            }
        }
    }
    Ok(())
}

/// Inserts `set` into an antichain of ⊆-minimal sets. Returns `false` if
/// `set` is subsumed by (a subset-or-equal) existing member; otherwise
/// removes members subsumed by `set` and inserts it.
fn antichain_insert(chain: &mut Vec<BitSet>, set: &BitSet) -> bool {
    for existing in chain.iter() {
        if existing.is_subset(set) {
            return false;
        }
    }
    chain.retain(|existing| !set.is_subset(existing));
    chain.push(set.clone());
    true
}

/// Reference implementation via full determinization of `b` (exponential);
/// used by tests to validate the antichain algorithm.
pub fn nfa_included_in_naive(a: &Nfa, b: &Nfa) -> Result<(), Word> {
    let b_dfa = crate::determinize::determinize(b);
    let b_complement = b_dfa.complement();
    match crate::product::nfa_intersection_shortest(a, &b_complement.to_nfa()) {
        None => Ok(()),
        Some(word) => Err(word),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateId;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    /// All-final "paths" NFA of a chain a·b·c starting at state 0.
    fn chain_paths() -> Nfa {
        let mut nfa = Nfa::new(4, 3);
        nfa.set_initial(0);
        nfa.add_transition(0, sym(0), 1);
        nfa.add_transition(1, sym(1), 2);
        nfa.add_transition(2, sym(2), 3);
        nfa.set_all_final();
        nfa
    }

    #[test]
    fn prefix_language_inclusion_holds() {
        // Prefixes of a·b ⊆ prefixes of a·b·c.
        let mut small = Nfa::new(3, 3);
        small.set_initial(0);
        small.add_transition(0, sym(0), 1);
        small.add_transition(1, sym(1), 2);
        small.set_all_final();
        assert_eq!(nfa_included_in(&small, &chain_paths()), Ok(()));
    }

    #[test]
    fn counterexample_is_canonical_minimum() {
        // L(a) = prefixes of a·b·c; L(b) = prefixes of a·b only.
        let mut small = Nfa::new(3, 3);
        small.set_initial(0);
        small.add_transition(0, sym(0), 1);
        small.add_transition(1, sym(1), 2);
        small.set_all_final();
        let err = nfa_included_in(&chain_paths(), &small).unwrap_err();
        assert_eq!(err, vec![sym(0), sym(1), sym(2)]);
    }

    #[test]
    fn epsilon_counterexample() {
        // a accepts ε, b accepts nothing.
        let mut a = Nfa::new(1, 1);
        a.set_initial(0);
        a.set_final(0);
        let mut b = Nfa::new(1, 1);
        b.set_initial(0);
        assert_eq!(nfa_included_in(&a, &b), Err(vec![]));
    }

    #[test]
    fn antichain_insert_prunes_supersets() {
        let mut chain: Vec<BitSet> = Vec::new();
        let big = BitSet::from_indices(8, [1, 2, 3]);
        let small = BitSet::from_indices(8, [1, 2]);
        assert!(antichain_insert(&mut chain, &big));
        // Subsumed check: the smaller set replaces the bigger one.
        assert!(antichain_insert(&mut chain, &small));
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0], small);
        // Superset of an existing member is rejected.
        assert!(!antichain_insert(&mut chain, &big));
    }

    #[test]
    fn randomized_agreement_with_naive() {
        let mut seed = 0xDEADBEEFCAFEF00Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..60 {
            let alphabet = 2;
            let gen_nfa = |next: &mut dyn FnMut() -> u64| {
                let n = 1 + (next() % 5) as usize;
                let mut nfa = Nfa::new(n, alphabet);
                nfa.set_initial((next() % n as u64) as StateId);
                let edges = next() % 10;
                for _ in 0..edges {
                    nfa.add_transition(
                        (next() % n as u64) as StateId,
                        sym((next() % alphabet as u64) as usize),
                        (next() % n as u64) as StateId,
                    );
                }
                for s in 0..n {
                    if next().is_multiple_of(2) {
                        nfa.set_final(s as StateId);
                    }
                }
                nfa
            };
            let a = gen_nfa(&mut next);
            let b = gen_nfa(&mut next);
            let fast = nfa_included_in(&a, &b);
            let slow = nfa_included_in_naive(&a, &b);
            match (fast, slow) {
                (Ok(()), Ok(())) => {}
                (Err(w1), Err(w2)) => {
                    // Both must be genuine counterexamples of minimal rank.
                    assert!(a.accepts(&w1) && !b.accepts(&w1), "trial {trial}");
                    assert!(a.accepts(&w2) && !b.accepts(&w2), "trial {trial}");
                    assert_eq!(
                        crate::word::canonical_cmp(&w1, &w2),
                        std::cmp::Ordering::Equal,
                        "trial {trial}: {w1:?} vs {w2:?}"
                    );
                }
                (f, s) => panic!("trial {trial}: antichain={f:?} naive={s:?}"),
            }
        }
    }
}
