//! Graphviz DOT export for automata (debugging / documentation aid).

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::symbol::Alphabet;
use std::fmt::Write as _;

/// Renders a DFA in Graphviz DOT syntax.
pub fn dfa_to_dot(dfa: &Dfa, alphabet: &Alphabet, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  __start [shape=point];");
    let _ = writeln!(out, "  __start -> q{};", dfa.initial());
    for s in 0..dfa.num_states() {
        let shape = if dfa.is_final(s as u32) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{s} [shape={shape}];");
    }
    for (from, sym, to) in dfa.transitions() {
        let _ = writeln!(
            out,
            "  q{from} -> q{to} [label=\"{}\"];",
            alphabet.name(sym)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders an NFA in Graphviz DOT syntax.
pub fn nfa_to_dot(nfa: &Nfa, alphabet: &Alphabet, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for (i, &init) in nfa.initials().iter().enumerate() {
        let _ = writeln!(out, "  __start{i} [shape=point];");
        let _ = writeln!(out, "  __start{i} -> q{init};");
    }
    for s in 0..nfa.num_states() {
        let shape = if nfa.is_final(s as u32) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{s} [shape={shape}];");
    }
    for s in 0..nfa.num_states() as u32 {
        for &(sym, t) in nfa.transitions_from(s) {
            let _ = writeln!(out, "  q{s} -> q{t} [label=\"{}\"];", alphabet.name(sym));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    #[test]
    fn dot_output_mentions_all_states_and_labels() {
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        let dfa = Regex::parse("(a·b)*·c", &alphabet).unwrap().to_dfa(3);
        let dot = dfa_to_dot(&dfa, &alphabet, "fig4");
        assert!(dot.contains("digraph fig4"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("label=\"c\""));
        let nfa = dfa.to_nfa();
        let dot = nfa_to_dot(&nfa, &alphabet, "fig4_nfa");
        assert!(dot.contains("__start0"));
    }
}
