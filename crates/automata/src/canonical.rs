//! Canonical query forms — the unit of result reuse.
//!
//! The paper identifies every path query with the **unique minimal DFA**
//! of its language (§2); [`crate::minimize`] computes exactly that form
//! (trim → Hopcroft → BFS renumbering), so two syntactically different
//! but equivalent queries — `a·(b·c)` vs `(a·b)·c`, reordered unions, a
//! completed DFA vs its trimmed twin — collapse to *structurally
//! identical* tables. [`CanonicalQuery`] freezes that form behind
//! `Eq`/`Hash`, turning language equivalence into plain `HashMap` key
//! equality: the serving layer in `pathlearn-server` canonicalizes every
//! incoming query once and then shares one cache entry per language.
//!
//! ```
//! use pathlearn_automata::{Alphabet, CanonicalQuery, Regex};
//!
//! let alphabet = Alphabet::from_labels(["a", "b", "c"]);
//! let parse = |expr: &str| {
//!     CanonicalQuery::new(&Regex::parse(expr, &alphabet).unwrap().to_dfa(3))
//! };
//! // Associativity and union order vanish in the canonical form...
//! assert_eq!(parse("a·(b·c)"), parse("(a·b)·c"));
//! assert_eq!(parse("a+b+c"), parse("c+b+a"));
//! // ...but different languages stay different keys.
//! assert_ne!(parse("a·b"), parse("b·a"));
//! ```

use crate::dfa::Dfa;
use std::hash::{Hash, Hasher};

/// A path query in canonical minimal-DFA form, usable as a hash-map key.
///
/// Construction minimizes (the `O(|Σ| n log n)` Hopcroft pass — paid
/// once per *submitted* query, not per evaluation); equality and hashing
/// are then structural over the canonical table, so
/// `a == b ⇔ L(a) = L(b)` for queries over the same alphabet.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalQuery {
    dfa: Dfa,
}

impl CanonicalQuery {
    /// Canonicalizes `dfa` (minimize + canonical BFS numbering).
    pub fn new(dfa: &Dfa) -> Self {
        CanonicalQuery {
            dfa: dfa.minimize(),
        }
    }

    /// The canonical minimal DFA — evaluate this, not the submitted
    /// form: it is never larger, so one canonicalization also buys every
    /// later evaluation the smallest `|Q|`.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The paper's query size: states of the canonical DFA.
    pub fn num_states(&self) -> usize {
        self.dfa.num_states()
    }

    /// A stable 64-bit digest of the canonical form (FNV-1a over the
    /// table), for logs and stats where a short name for "this language"
    /// is needed. Equal queries always digest equal; the converse holds
    /// only up to hash collision — keying storage must use the full
    /// [`CanonicalQuery`], never the fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = Fnv1a(0xcbf2_9ce4_8422_2325);
        self.dfa.hash(&mut hasher);
        hasher.0
    }
}

/// Minimal FNV-1a so fingerprints are stable across runs and platforms
/// (`DefaultHasher` seeds are unspecified between std releases).
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Alphabet;
    use crate::Regex;
    use std::collections::HashMap;

    fn key(expr: &str) -> CanonicalQuery {
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        CanonicalQuery::new(&Regex::parse(expr, &alphabet).unwrap().to_dfa(3))
    }

    #[test]
    fn equivalent_forms_share_a_key() {
        assert_eq!(key("a·(b·c)"), key("(a·b)·c"));
        assert_eq!(key("a+b"), key("b+a"));
        assert_eq!(key("(a·b)*·c"), key("c+a·b·(a·b)*·c"));
        assert_eq!(key("a·a*"), key("a*·a"));
    }

    #[test]
    fn different_languages_get_different_keys() {
        assert_ne!(key("a·b"), key("b·a"));
        assert_ne!(key("a*"), key("a"));
        assert_ne!(key("eps"), key("a"));
    }

    #[test]
    fn completion_noise_vanishes() {
        // A completed DFA (extra sink state) is language-equal to the
        // original and must canonicalize to the same key.
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        let dfa = Regex::parse("(a·b)*·c", &alphabet).unwrap().to_dfa(3);
        let (completed, sink) = dfa.complete();
        assert!(sink.is_some());
        assert_eq!(CanonicalQuery::new(&dfa), CanonicalQuery::new(&completed));
    }

    #[test]
    fn keys_work_as_hashmap_keys() {
        let mut cache: HashMap<CanonicalQuery, &str> = HashMap::new();
        cache.insert(key("a·(b·c)"), "first");
        assert_eq!(cache.get(&key("(a·b)·c")), Some(&"first"));
        assert_eq!(cache.get(&key("b·a")), None);
    }

    #[test]
    fn fingerprint_consistent_with_equality() {
        assert_eq!(key("a·(b·c)").fingerprint(), key("(a·b)·c").fingerprint());
        assert_ne!(key("a").fingerprint(), key("b").fingerprint());
        // Accessors expose the canonical DFA.
        let k = key("(a·b)*·c");
        assert_eq!(k.num_states(), 3);
        assert!(k.dfa().is_prefix_free());
    }
}
