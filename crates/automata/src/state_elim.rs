//! DFA/NFA → regular expression via state elimination (GNFA method).
//!
//! Learned queries are DFAs internally; users read them as regular
//! expressions (the paper displays `(a·b)*·c`, `(tram+bus)*·cinema`, …).
//! We build a generalized NFA with a fresh source/sink, then eliminate
//! states one at a time, picking the state with the fewest incident
//! edge-regex combinations first (a standard heuristic to limit blowup).
//! The smart constructors in [`crate::regex`] keep the output reasonably
//! small (`ε` absorption, alternative dedup, `(r*)* = r*`).

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::regex::Regex;
use crate::StateId;

/// Converts a DFA to an equivalent regular expression.
pub fn dfa_to_regex(dfa: &Dfa) -> Regex {
    nfa_to_regex(&dfa.to_nfa())
}

/// Converts an NFA to an equivalent regular expression.
pub fn nfa_to_regex(nfa: &Nfa) -> Regex {
    let (nfa, _) = nfa.trim();
    if nfa.num_states() == 0 || nfa.finals().is_empty() {
        return Regex::Empty;
    }
    let n = nfa.num_states();
    // GNFA states: 0..n are the NFA states, n = fresh source, n+1 = sink.
    let source = n;
    let sink = n + 1;
    let total = n + 2;
    // Edge matrix of regexes; None = no edge (∅).
    let mut edges: Vec<Vec<Option<Regex>>> = vec![vec![None; total]; total];

    let connect = |edges: &mut Vec<Vec<Option<Regex>>>, from: usize, to: usize, r: Regex| {
        let slot = &mut edges[from][to];
        *slot = Some(match slot.take() {
            None => r,
            Some(existing) => Regex::alt(vec![existing, r]),
        });
    };

    for s in 0..n as StateId {
        for &(sym, t) in nfa.transitions_from(s) {
            connect(&mut edges, s as usize, t as usize, Regex::Symbol(sym));
        }
    }
    for &i in nfa.initials() {
        connect(&mut edges, source, i as usize, Regex::Epsilon);
    }
    for f in nfa.finals().iter() {
        connect(&mut edges, f, sink, Regex::Epsilon);
    }

    // Eliminate the interior states, cheapest first.
    let mut alive: Vec<usize> = (0..n).collect();
    while !alive.is_empty() {
        // Pick the state minimizing in-degree × out-degree (self-loops
        // excluded from both counts).
        let (pos, &victim) = alive
            .iter()
            .enumerate()
            .min_by_key(|&(_, &v)| {
                let in_deg = (0..total)
                    .filter(|&u| u != v && edges[u][v].is_some())
                    .count();
                let out_deg = (0..total)
                    .filter(|&w| w != v && edges[v][w].is_some())
                    .count();
                in_deg * out_deg
            })
            .expect("alive non-empty");
        alive.swap_remove(pos);

        let self_loop = edges[victim][victim].take().map(Regex::star);
        let incoming: Vec<(usize, Regex)> = (0..total)
            .filter(|&u| u != victim)
            .filter_map(|u| edges[u][victim].take().map(|r| (u, r)))
            .collect();
        let outgoing: Vec<(usize, Regex)> = (0..total)
            .filter(|&w| w != victim)
            .filter_map(|w| edges[victim][w].take().map(|r| (w, r)))
            .collect();
        for (u, rin) in &incoming {
            for (w, rout) in &outgoing {
                let mut parts = vec![rin.clone()];
                if let Some(loop_regex) = &self_loop {
                    parts.push(loop_regex.clone());
                }
                parts.push(rout.clone());
                connect(&mut edges, *u, *w, Regex::concat(parts));
            }
        }
    }

    edges[source][sink].take().unwrap_or(Regex::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{Alphabet, Symbol};
    use crate::word::enumerate_words;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    fn roundtrip_preserves_language(dfa: &Dfa, max_len: usize) {
        let regex = dfa_to_regex(dfa);
        let back = regex.to_dfa(dfa.alphabet_len());
        for word in enumerate_words(dfa.alphabet_len(), max_len) {
            assert_eq!(dfa.accepts(&word), back.accepts(&word), "{word:?}");
        }
        assert!(dfa.equivalent(&back));
    }

    #[test]
    fn fig4_roundtrip() {
        let alphabet = Alphabet::from_labels(["a", "b", "c"]);
        let regex = Regex::parse("(a·b)*·c", &alphabet).unwrap();
        let dfa = regex.to_dfa(3);
        roundtrip_preserves_language(&dfa, 6);
    }

    #[test]
    fn empty_language_prints_empty() {
        let dfa = Dfa::empty_language(2);
        assert_eq!(dfa_to_regex(&dfa), Regex::Empty);
    }

    #[test]
    fn epsilon_language() {
        let dfa = Dfa::epsilon_language(2);
        let regex = dfa_to_regex(&dfa);
        assert!(regex.nullable());
        roundtrip_preserves_language(&dfa, 3);
    }

    #[test]
    fn single_symbol() {
        let mut dfa = Dfa::new(2, 2, 0);
        dfa.set_transition(0, sym(0), 1);
        dfa.set_final(1);
        let regex = dfa_to_regex(&dfa);
        assert_eq!(regex, Regex::Symbol(sym(0)));
    }

    #[test]
    fn randomized_roundtrips() {
        let mut seed = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..25 {
            let n = 1 + (next() % 5) as usize;
            let alphabet = 2;
            let mut dfa = Dfa::new(n, alphabet, 0);
            for s in 0..n as StateId {
                for a in 0..alphabet {
                    if next() % 3 != 0 {
                        dfa.set_transition(s, sym(a), (next() % n as u64) as StateId);
                    }
                }
            }
            for s in 0..n {
                if next() % 3 == 0 {
                    dfa.set_final(s as StateId);
                }
            }
            roundtrip_preserves_language(&dfa, 5);
        }
    }
}
