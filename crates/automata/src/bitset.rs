//! A fixed-capacity bitset over `u64` blocks.
//!
//! Hand-rolled (rather than pulling `fixedbitset`) to stay within the
//! session's dependency budget; the operations below are exactly the ones
//! the determinized product searches need: bulk union/intersection, subset
//! tests for antichain pruning, and hashing so reach-sets can key memo
//! tables.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Fixed-capacity set of `usize` indices backed by `u64` blocks.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

const BITS: usize = 64;

impl BitSet {
    /// Bits per storage block (the granularity of [`BitSet::as_blocks`]
    /// and of the word-aligned ranged step kernels in `pathlearn-graph`).
    pub const BLOCK_BITS: usize = BITS;

    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0; capacity.div_ceil(BITS)],
            capacity,
        }
    }

    /// Creates a set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut set = Self::new(capacity);
        for block in &mut set.blocks {
            *block = u64::MAX;
        }
        set.mask_tail();
        set
    }

    /// Creates a set from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, indices: I) -> Self {
        let mut set = Self::new(capacity);
        for i in indices {
            set.insert(i);
        }
        set
    }

    /// Reconstructs a set from raw storage blocks (the inverse of
    /// [`BitSet::as_blocks`], used by the binary snapshot codec).
    /// Returns `None` if the block count does not match the capacity or
    /// any bit at or beyond `capacity` is set — a decoded set must obey
    /// the tail-masking invariant the kernels rely on, so malformed
    /// input is rejected rather than silently masked.
    pub fn from_blocks(capacity: usize, blocks: &[u64]) -> Option<Self> {
        if blocks.len() != capacity.div_ceil(BITS) {
            return None;
        }
        let used = capacity % BITS;
        if used != 0 {
            if let Some(&last) = blocks.last() {
                if last & !((1u64 << used) - 1) != 0 {
                    return None;
                }
            }
        }
        Some(BitSet {
            blocks: blocks.to_vec(),
            capacity,
        })
    }

    fn mask_tail(&mut self) {
        let used = self.capacity % BITS;
        if used != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    /// Number of indices this set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an index; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        debug_assert!(index < self.capacity, "index {index} out of capacity");
        let mask = 1u64 << (index % BITS);
        let block = &mut self.blocks[index / BITS];
        let fresh = *block & mask == 0;
        *block |= mask;
        fresh
    }

    /// Removes an index; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        debug_assert!(index < self.capacity);
        let mask = 1u64 << (index % BITS);
        let block = &mut self.blocks[index / BITS];
        let present = *block & mask != 0;
        *block &= !mask;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        debug_assert!(index < self.capacity);
        self.blocks[index / BITS] & (1u64 << (index % BITS)) != 0
    }

    /// Removes all indices.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Inserts every index in `0..capacity` (the in-place analogue of
    /// [`BitSet::full`], for reusable scratch buffers).
    pub fn insert_all(&mut self) {
        self.blocks.fill(u64::MAX);
        self.mask_tail();
    }

    /// `true` iff no index is present.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Number of indices present.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// In-place union: `self ∪= other`.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference: `self \= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// In-place union that records which indices were new: every index of
    /// `other` absent from `self` is inserted into both `self` and
    /// `newly` (`newly` is OR-accumulated, not cleared). Returns `true`
    /// iff at least one index was new. One pass of word-level operations;
    /// this is the frontier-merge kernel of the level-synchronous BFS in
    /// `pathlearn-graph`.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn union_with_recording_new(&mut self, other: &BitSet, newly: &mut BitSet) -> bool {
        self.union_with_recording_new_count(other, newly) != 0
    }

    /// [`BitSet::union_with_recording_new`] that also **counts** the
    /// fresh indices: returns how many indices of `other` were absent
    /// from `self` (0 ⇔ nothing new). The popcount rides the same pass
    /// over the blocks, so callers that need the next frontier's size —
    /// the step-kernel cost model in `pathlearn-graph` amortizes one
    /// popcount per `(level, state)` — get it without a separate
    /// `len()` scan.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn union_with_recording_new_count(&mut self, other: &BitSet, newly: &mut BitSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        assert_eq!(self.capacity, newly.capacity, "capacity mismatch");
        let mut count = 0usize;
        for ((a, &b), n) in self
            .blocks
            .iter_mut()
            .zip(&other.blocks)
            .zip(&mut newly.blocks)
        {
            let fresh = b & !*a;
            *a |= fresh;
            *n |= fresh;
            count += fresh.count_ones() as usize;
        }
        count
    }

    /// `true` iff `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` iff the sets share at least one index.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// `|self ∩ other|` in one fused pass (AND + popcount per block),
    /// without materializing the intersection. This is the measurement
    /// behind the step-kernel cost model in `pathlearn-graph`: comparing
    /// it against [`BitSet::len`] tells an evaluator how many frontier
    /// nodes a masked kernel would skip.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// The raw `u64` storage blocks, least-significant block first; index
    /// `i` lives at bit `i % 64` of block `i / 64`. Bits at and above
    /// `capacity` in the last block are always zero (every mutator masks
    /// the tail), so word-level consumers — the masked step kernels of
    /// `pathlearn-graph` iterate `frontier_block & label_block` directly —
    /// can AND blocks of equal-capacity sets without re-masking.
    #[inline]
    pub fn as_blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Iterates over present indices in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block_index: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Smallest present index, if any. (Named `first` to avoid clashing
    /// with `Ord::min` in method resolution.)
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

impl Default for BitSet {
    /// The empty set with capacity `0` (resized on first real use; lets
    /// scratch structs derive `Default`).
    fn default() -> Self {
        BitSet::new(0)
    }
}

impl Hash for BitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Capacity is fixed per use site; hashing blocks suffices.
        self.blocks.hash(state);
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the indices present in a [`BitSet`].
pub struct Iter<'a> {
    set: &'a BitSet,
    block_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.block_index * BITS + bit);
            }
            self.block_index += 1;
            if self.block_index >= self.set.blocks.len() {
                return None;
            }
            self.current = self.set.blocks[self.block_index];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized by the maximum index (capacity =
    /// max+1). Prefer [`BitSet::from_indices`] when the capacity is known.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let capacity = indices.iter().copied().max().map_or(0, |m| m + 1);
        BitSet::from_indices(capacity, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_remove() {
        let mut set = BitSet::new(130);
        assert!(set.insert(0));
        assert!(set.insert(64));
        assert!(set.insert(129));
        assert!(!set.insert(64));
        assert!(set.contains(0) && set.contains(64) && set.contains(129));
        assert!(!set.contains(1));
        assert_eq!(set.len(), 3);
        assert!(set.remove(64));
        assert!(!set.remove(64));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn full_respects_capacity() {
        let set = BitSet::full(67);
        assert_eq!(set.len(), 67);
        assert!(set.contains(66));
        let empty = BitSet::full(0);
        assert!(empty.is_empty());
    }

    #[test]
    fn insert_all_matches_full() {
        for capacity in [0usize, 1, 63, 64, 65, 130] {
            let mut set = BitSet::from_indices(capacity, (0..capacity).filter(|i| i % 3 == 0));
            set.insert_all();
            assert_eq!(set, BitSet::full(capacity), "capacity {capacity}");
        }
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(10, [1, 3, 5]);
        let b = BitSet::from_indices(10, [3, 5, 7]);
        let mut union = a.clone();
        union.union_with(&b);
        assert_eq!(union.iter().collect::<Vec<_>>(), vec![1, 3, 5, 7]);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![3, 5]);
        let mut diff = a.clone();
        diff.difference_with(&b);
        assert_eq!(diff.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn union_with_recording_new_tracks_fresh_indices() {
        let mut reached = BitSet::from_indices(130, [1, 64]);
        let incoming = BitSet::from_indices(130, [1, 64, 65, 129]);
        let mut newly = BitSet::from_indices(130, [3]); // pre-existing bit kept
        assert!(reached.union_with_recording_new(&incoming, &mut newly));
        assert_eq!(reached.iter().collect::<Vec<_>>(), vec![1, 64, 65, 129]);
        assert_eq!(newly.iter().collect::<Vec<_>>(), vec![3, 65, 129]);
        // A second merge of the same set adds nothing.
        let mut newly2 = BitSet::new(130);
        assert!(!reached.union_with_recording_new(&incoming, &mut newly2));
        assert!(newly2.is_empty());
    }

    #[test]
    fn union_with_recording_new_count_matches_fresh_popcount() {
        let mut reached = BitSet::from_indices(200, [0, 64, 128]);
        let incoming = BitSet::from_indices(200, [0, 1, 64, 65, 129, 199]);
        let mut newly = BitSet::new(200);
        let fresh = reached.union_with_recording_new_count(&incoming, &mut newly);
        assert_eq!(fresh, 4); // 1, 65, 129, 199
        assert_eq!(newly.len(), 4);
        assert_eq!(
            reached.union_with_recording_new_count(&incoming, &mut newly),
            0
        );
    }

    #[test]
    fn subset_and_intersects() {
        let small = BitSet::from_indices(100, [2, 70]);
        let big = BitSet::from_indices(100, [2, 3, 70]);
        let other = BitSet::from_indices(100, [4]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
        assert!(small.intersects(&big));
        assert!(!small.intersects(&other));
        assert!(BitSet::new(100).is_subset(&other));
    }

    #[test]
    fn intersection_len_matches_materialized_intersection() {
        for capacity in [0usize, 1, 63, 64, 65, 130, 200] {
            let a = BitSet::from_indices(capacity, (0..capacity).filter(|i| i % 3 == 0));
            let b = BitSet::from_indices(capacity, (0..capacity).filter(|i| i % 2 == 0));
            let mut inter = a.clone();
            inter.intersect_with(&b);
            assert_eq!(a.intersection_len(&b), inter.len(), "capacity {capacity}");
            assert_eq!(b.intersection_len(&a), inter.len(), "capacity {capacity}");
            assert_eq!(a.intersection_len(&a), a.len(), "capacity {capacity}");
        }
    }

    #[test]
    fn blocks_expose_layout_with_masked_tail() {
        let set = BitSet::from_indices(130, [0, 63, 64, 129]);
        let blocks = set.as_blocks();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0], 1 | (1 << 63));
        assert_eq!(blocks[1], 1);
        assert_eq!(blocks[2], 2);
        // Tail bits above capacity stay zero even after insert_all.
        let mut full = BitSet::new(130);
        full.insert_all();
        assert_eq!(full.as_blocks()[2], 3);
        assert_eq!(BitSet::BLOCK_BITS, 64);
    }

    #[test]
    fn iter_matches_btreeset_model() {
        let indices = [0usize, 1, 63, 64, 65, 127, 128, 199];
        let set = BitSet::from_indices(200, indices);
        let model: BTreeSet<usize> = indices.into_iter().collect();
        assert_eq!(set.iter().collect::<BTreeSet<_>>(), model);
        assert_eq!(set.first(), Some(0));
        assert_eq!(BitSet::new(8).first(), None);
    }

    #[test]
    fn equality_and_hash_are_content_based() {
        use std::collections::HashSet;
        let a = BitSet::from_indices(100, [5, 50]);
        let mut b = BitSet::new(100);
        b.insert(50);
        b.insert(5);
        assert_eq!(a, b);
        let mut seen = HashSet::new();
        seen.insert(a);
        assert!(seen.contains(&b));
    }
}
