//! Prefix tree acceptors (PTAs).
//!
//! Algorithm 1 (line 3) builds *"the prefix tree acceptor \[18\] of P …
//! basically a tree-like DFA accepting only the paths in P and having as
//! states all their prefixes"*. The RPNI generalization step then merges
//! PTA states in the canonical order of their access words, so this module
//! numbers states accordingly: **state ids are the canonical ranks of the
//! prefixes** (`ε` is state 0).

use crate::dfa::Dfa;
use crate::symbol::Symbol;
use crate::word::{sort_canonical, Word};
use crate::StateId;

/// Builds the PTA of a set of words as a [`Dfa`].
///
/// States correspond one-to-one to the prefixes of the input words and are
/// numbered in canonical order of those prefixes, which is exactly the
/// merge order RPNI expects. Accepting states are the input words.
pub fn build_pta(words: &[Word], alphabet_len: usize) -> Dfa {
    // Collect all prefixes, canonically sorted and deduplicated.
    let mut prefixes: Vec<Word> = Vec::new();
    for word in words {
        for len in 0..=word.len() {
            prefixes.push(word[..len].to_vec());
        }
    }
    if prefixes.is_empty() {
        prefixes.push(Vec::new()); // lone root: PTA of ∅ accepts nothing
    }
    sort_canonical(&mut prefixes);

    let index_of = |needle: &[Symbol]| -> StateId {
        prefixes
            .binary_search_by(|p| crate::word::canonical_cmp(p, needle))
            .expect("prefix present by construction") as StateId
    };

    let mut dfa = Dfa::new(prefixes.len(), alphabet_len, 0);
    for (id, prefix) in prefixes.iter().enumerate() {
        if !prefix.is_empty() {
            let parent = index_of(&prefix[..prefix.len() - 1]);
            dfa.set_transition(parent, prefix[prefix.len() - 1], id as StateId);
        }
    }
    let mut sorted_words: Vec<Word> = words.to_vec();
    sort_canonical(&mut sorted_words);
    for word in &sorted_words {
        dfa.set_final(index_of(word));
    }
    dfa
}

/// The access word of a PTA state (the unique word reaching it), assuming
/// the canonical numbering produced by [`build_pta`]. Used by diagnostics
/// and tests.
pub fn access_word(pta: &Dfa, state: StateId) -> Option<Word> {
    // BFS from the root recording parents.
    let n = pta.num_states();
    let mut parent: Vec<Option<(StateId, Symbol)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[pta.initial() as usize] = true;
    let mut queue = std::collections::VecDeque::from([pta.initial()]);
    while let Some(s) = queue.pop_front() {
        for a in 0..pta.alphabet_len() {
            let sym = Symbol::from_index(a);
            if let Some(t) = pta.step(s, sym) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    parent[t as usize] = Some((s, sym));
                    queue.push_back(t);
                }
            }
        }
    }
    if !seen[state as usize] {
        return None;
    }
    let mut word = Vec::new();
    let mut cur = state;
    while let Some((p, sym)) = parent[cur as usize] {
        word.push(sym);
        cur = p;
    }
    word.reverse();
    Some(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::canonical_cmp;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    #[test]
    fn paper_example_pta() {
        // Figure 6(a): PTA of P = {abc, c} has states {ε, a, c, ab, abc}
        // with finals {c, abc}.
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        let pta = build_pta(&[vec![a, b, c], vec![c]], 3);
        assert_eq!(pta.num_states(), 5);
        assert!(pta.accepts(&[c]));
        assert!(pta.accepts(&[a, b, c]));
        assert!(!pta.accepts(&[]));
        assert!(!pta.accepts(&[a]));
        assert!(!pta.accepts(&[a, b]));
        assert!(!pta.accepts(&[a, b, c, c]));
    }

    #[test]
    fn states_are_canonically_ordered_prefixes() {
        let a = sym(0);
        let b = sym(1);
        let c = sym(2);
        let pta = build_pta(&[vec![a, b, c], vec![c]], 3);
        // Expected order: ε < a < c < ab < abc.
        let expected: Vec<Word> = vec![vec![], vec![a], vec![c], vec![a, b], vec![a, b, c]];
        for (id, word) in expected.iter().enumerate() {
            assert_eq!(access_word(&pta, id as StateId).as_ref(), Some(word));
        }
        // Access words strictly increase with state id.
        for id in 1..pta.num_states() {
            let prev = access_word(&pta, (id - 1) as StateId).unwrap();
            let cur = access_word(&pta, id as StateId).unwrap();
            assert_eq!(canonical_cmp(&prev, &cur), std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn pta_accepts_exactly_input_words() {
        let words = vec![
            vec![sym(0)],
            vec![sym(0), sym(0)],
            vec![sym(1), sym(0)],
            vec![],
        ];
        let pta = build_pta(&words, 2);
        for probe in crate::word::enumerate_words(2, 4) {
            assert_eq!(pta.accepts(&probe), words.contains(&probe), "{probe:?}");
        }
    }

    #[test]
    fn pta_of_empty_set() {
        let pta = build_pta(&[], 2);
        assert_eq!(pta.num_states(), 1);
        assert!(pta.language_is_empty());
    }

    #[test]
    fn duplicate_words_are_deduped() {
        let words = vec![vec![sym(0)], vec![sym(0)]];
        let pta = build_pta(&words, 1);
        assert_eq!(pta.num_states(), 2);
        assert!(pta.accepts(&[sym(0)]));
    }
}
