//! Finite automata, regular expressions and grammatical-inference substrate.
//!
//! This crate implements every language-theoretic building block required by
//! the EDBT 2015 paper *Learning Path Queries on Graph Databases* (Bonifati,
//! Ciucanu, Lemay):
//!
//! * interned, ordered alphabets and the canonical order `≤` on words
//!   (length first, then lexicographic) — [`symbol`], [`word`];
//! * ε-free NFAs with product constructions, emptiness tests and
//!   canonical-order shortest witnesses — [`nfa`], [`product`];
//! * DFAs with subset construction, completion, complementation, Hopcroft
//!   minimization, canonical numbering and the prefix-free transform used to
//!   normalize path queries — [`dfa`], [`determinize`], [`minimize`];
//! * a regular-expression AST with a parser, a precedence-aware printer and
//!   a DFA→regex state-elimination pass — [`regex`], [`state_elim`];
//! * the antichain language-inclusion algorithm used for the paper's exact
//!   (PSPACE) consistency and certain-node checks — [`inclusion`];
//! * canonical query forms behind `Eq`/`Hash` — language equivalence as
//!   hash-map key equality, the cache-key unit of the serving layer —
//!   [`canonical`];
//! * prefix tree acceptors, the classic RPNI state-merging learner
//!   (generalized over a merge-consistency oracle, so the graph-based
//!   learner of the paper can reuse it), and characteristic-sample
//!   generation for RPNI targets — [`pta`], [`rpni`], [`char_sample`].
//!
//! The crate has no dependencies and is `std`-only; integer-indexed
//! structures and a hand-rolled [`bitset::BitSet`] keep the hot paths
//! allocation-light, following the Rust Performance Book guidance.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitset;
pub mod canonical;
pub mod char_sample;
pub mod determinize;
pub mod dfa;
pub mod dot;
pub mod inclusion;
pub mod minimize;
pub mod nfa;
pub mod product;
pub mod pta;
pub mod regex;
pub mod rpni;
pub mod state_elim;
pub mod symbol;
pub mod word;

pub use bitset::BitSet;
pub use canonical::CanonicalQuery;
pub use dfa::{Dfa, DEAD};
pub use nfa::Nfa;
pub use regex::Regex;
pub use symbol::{Alphabet, Symbol};
pub use word::{canonical_cmp, format_word, Word};

/// Numeric identifier of an automaton state.
pub type StateId = u32;
