//! Release-mode regression for the alphabet bound in
//! [`pathlearn_automata::product::dfa_nfa_intersection_is_empty`].
//!
//! PR 3's differential suite found the product search stepping the DFA
//! with NFA symbols **beyond the DFA's alphabet**: the dense transition
//! table is row-major (`table[state · |Σ| + sym]`), so an out-of-range
//! symbol index aliases into the *next state's row* instead of panicking
//! — a silently wrong verdict. The fix guards the symbol in the search
//! loop, and `Dfa::step`/`step_raw` got debug-asserts on the bound. But
//! debug-asserts vanish in release builds: if the guard were dropped,
//! `cargo test` would still catch it (the assert fires) while release
//! binaries — the benchmarks and every production consumer — would
//! silently alias again. This file constructs the aliasing shape so that
//! the **verdict itself** is wrong if the guard regresses, making the
//! failure visible in both profiles; CI runs it under
//! `--release` explicitly.

use pathlearn_automata::product::dfa_nfa_intersection_is_empty;
use pathlearn_automata::{Dfa, Nfa, Symbol};

fn sym(i: usize) -> Symbol {
    Symbol::from_index(i)
}

/// DFA over the 1-symbol alphabet {a} accepting {a}. Its dense table is
/// `[δ(0,a)=1, δ(1,a)=1]`: exactly the layout where stepping state 0
/// with the out-of-alphabet symbol index 1 would alias into state 1's
/// `a`-row (yielding the accepting state 1) instead of being dead.
fn accepts_a() -> Dfa {
    let mut dfa = Dfa::new(2, 1, 0);
    dfa.set_transition(0, sym(0), 1);
    dfa.set_transition(1, sym(0), 1);
    dfa.set_final(1);
    dfa
}

#[test]
fn foreign_nfa_symbol_does_not_alias_into_the_next_row() {
    let dfa = accepts_a();
    // NFA over {a, b} whose only accepting run is the single word "b".
    // L(dfa) ∩ L(nfa) = {a} ∩ {b} = ∅ — but an unguarded product search
    // would read table[0·1 + 1] = δ(1, a) = 1 (accepting) for the b-edge
    // and report the intersection non-empty.
    let mut nfa = Nfa::new(2, 2);
    nfa.set_initial(0);
    nfa.add_transition(0, sym(1), 1);
    nfa.set_final(1);
    assert!(
        dfa_nfa_intersection_is_empty(&dfa, &nfa),
        "foreign symbol b aliased into the DFA's next table row"
    );
}

#[test]
fn last_row_foreign_symbol_does_not_read_out_of_bounds() {
    let dfa = accepts_a();
    // Reach DFA state 1 (the last table row) via "a", then offer only a
    // foreign symbol: an unguarded step would index table[1·1 + 1] = 2,
    // past the end of the table. The guarded search must treat the edge
    // as dead and report emptiness ({a} ∩ {ab} = ∅).
    let mut nfa = Nfa::new(3, 2);
    nfa.set_initial(0);
    nfa.add_transition(0, sym(0), 1);
    nfa.add_transition(1, sym(1), 2);
    nfa.set_final(2);
    assert!(
        dfa_nfa_intersection_is_empty(&dfa, &nfa),
        "foreign symbol at the last DFA row must be dead, not out-of-bounds"
    );
}

#[test]
fn in_alphabet_runs_still_join() {
    // Control: with an accepting a-run present alongside the foreign
    // edges, the intersection is genuinely non-empty — the guard must
    // skip foreign symbols only, not whole states.
    let dfa = accepts_a();
    let mut nfa = Nfa::new(2, 2);
    nfa.set_initial(0);
    nfa.add_transition(0, sym(1), 1); // foreign (dead for the DFA)
    nfa.add_transition(0, sym(0), 1); // the joining a-edge
    nfa.set_final(1);
    assert!(!dfa_nfa_intersection_is_empty(&dfa, &nfa));
}
