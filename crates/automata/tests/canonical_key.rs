//! Property tests for cache-key canonicalization
//! ([`pathlearn_automata::CanonicalQuery`], the serving layer's unit of
//! result reuse).
//!
//! The contract under test: for queries over one alphabet,
//! **key equality ⇔ language equivalence** — equivalent regexes
//! (associativity regroupings, union reorderings, star unrollings,
//! completion noise) minimize to the *same* key, and non-equivalent
//! ones never collide. The `⇒` direction makes the cache share entries
//! across spellings; the `⇐` direction makes sharing sound (a collision
//! would serve one language's nodes for another's query).

use pathlearn_automata::{CanonicalQuery, Dfa, Regex, Symbol};
use proptest::prelude::*;

const SIGMA: usize = 3;

/// Random regex AST over a 3-symbol alphabet (the query shape the
/// learner produces), mirroring the differential suite's strategy.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        (0usize..SIGMA).prop_map(|i| Regex::Symbol(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
}

/// An equivalence-preserving rewrite of a regex, selected by `pick`:
/// these must never change the canonical key.
fn equivalent_variant(regex: &Regex, pick: u8) -> Regex {
    match pick % 4 {
        // r ≡ r + r (union idempotence survives the smart constructor
        // only when spelled through fresh clones, so go via a raw Alt).
        0 => Regex::alt(vec![regex.clone(), regex.clone()]),
        // r ≡ r · ε
        1 => Regex::concat(vec![regex.clone(), Regex::Epsilon]),
        // r ≡ ε · r
        2 => Regex::concat(vec![Regex::Epsilon, regex.clone()]),
        // (r*)* ≡ r*, and for non-stars r ≡ r + ∅.
        _ => Regex::alt(vec![regex.clone(), Regex::Empty]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline biconditional: same key ⇔ same language, on random
    /// regex pairs (language equivalence decided independently via
    /// minimal-form comparison in `Dfa::equivalent`).
    #[test]
    fn key_equality_iff_language_equivalence(a in arb_regex(), b in arb_regex()) {
        let dfa_a = a.to_dfa(SIGMA);
        let dfa_b = b.to_dfa(SIGMA);
        let keys_equal = CanonicalQuery::new(&dfa_a) == CanonicalQuery::new(&dfa_b);
        prop_assert_eq!(
            keys_equal,
            dfa_a.equivalent(&dfa_b),
            "keys must collide exactly for equal languages ({a:?} vs {b:?})"
        );
    }

    /// Equivalence-preserving rewrites — the syntactic noise real
    /// clients produce — never change the key, and the fingerprint
    /// follows the key.
    #[test]
    fn equivalent_rewrites_share_the_key(regex in arb_regex(), pick in any::<u64>()) {
        let variant = equivalent_variant(&regex, pick as u8);
        let key = CanonicalQuery::new(&regex.to_dfa(SIGMA));
        let variant_key = CanonicalQuery::new(&variant.to_dfa(SIGMA));
        prop_assert_eq!(&key, &variant_key, "{:?} vs {:?}", regex, variant);
        prop_assert_eq!(key.fingerprint(), variant_key.fingerprint());
    }

    /// Association and union order never matter: a·(b·c) ≡ (a·b)·c and
    /// r+s ≡ s+r composed from random parts.
    #[test]
    fn regrouping_and_reordering_share_the_key(
        a in arb_regex(), b in arb_regex(), c in arb_regex()
    ) {
        let left = Regex::concat(vec![
            a.clone(),
            Regex::concat(vec![b.clone(), c.clone()]),
        ]);
        let right = Regex::concat(vec![
            Regex::concat(vec![a.clone(), b.clone()]),
            c.clone(),
        ]);
        prop_assert_eq!(
            CanonicalQuery::new(&left.to_dfa(SIGMA)),
            CanonicalQuery::new(&right.to_dfa(SIGMA))
        );
        let union = Regex::alt(vec![a.clone(), b.clone()]);
        let reordered = Regex::alt(vec![b, a]);
        prop_assert_eq!(
            CanonicalQuery::new(&union.to_dfa(SIGMA)),
            CanonicalQuery::new(&reordered.to_dfa(SIGMA))
        );
    }

    /// Canonicalization is idempotent and the canonical DFA is minimal:
    /// re-keying a key's own DFA is a fixed point.
    #[test]
    fn canonicalization_is_a_fixed_point(regex in arb_regex()) {
        let key = CanonicalQuery::new(&regex.to_dfa(SIGMA));
        let again = CanonicalQuery::new(key.dfa());
        prop_assert_eq!(&again, &key);
        prop_assert_eq!(key.dfa().num_states(), key.dfa().minimize().num_states());
    }
}

/// Deterministic spot checks of the non-collision direction on a
/// pairwise-distinct family (proptest rarely draws near-miss pairs).
#[test]
fn distinct_language_family_never_collides() {
    let exprs = [
        "a",
        "b",
        "c",
        "eps",
        "a·b",
        "b·a",
        "a*",
        "a·a",
        "(a+b)*·c",
        "(a·b)*·c",
        "a+b",
        "a+c",
    ];
    let alphabet = pathlearn_automata::Alphabet::from_labels(["a", "b", "c"]);
    let keys: Vec<(&str, CanonicalQuery)> = exprs
        .iter()
        .map(|e| {
            let dfa: Dfa = Regex::parse(e, &alphabet).unwrap().to_dfa(SIGMA);
            (*e, CanonicalQuery::new(&dfa))
        })
        .collect();
    for (i, (expr_a, key_a)) in keys.iter().enumerate() {
        for (expr_b, key_b) in &keys[i + 1..] {
            assert_ne!(key_a, key_b, "{expr_a} vs {expr_b} collided");
        }
    }
}
