//! Property tests for the planner's automaton preprocessing
//! ([`Dfa::reverse`] and [`Dfa::reduced`]).
//!
//! The whole-query planner evaluates the *reversed* DFA when the
//! backward strategy wins, and hands every engine a trimmed,
//! BFS-reordered table. Both transforms sit on the bit-identity path,
//! so the contracts here are absolute: reversal must round-trip the
//! language (`rev(rev(L)) = L`), word membership must mirror exactly
//! (`w ∈ L ⇔ rev(w) ∈ rev(L)`), and pruning/reordering must preserve
//! the language — and therefore the [`CanonicalQuery`] cache key — on
//! every input, including tables full of dead and unreachable states.

use pathlearn_automata::{CanonicalQuery, Dfa, Regex, StateId, Symbol};
use proptest::prelude::*;

const SIGMA: usize = 3;

/// Random regex AST over a 3-symbol alphabet, mirroring the query
/// shapes the learner produces (same strategy as the differential
/// suites in `crates/graph`).
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        (0usize..SIGMA).prop_map(|i| Regex::Symbol(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
}

/// Raw partial DFA with arbitrary (possibly dead/unreachable) states —
/// the adversarial input for `reduced()`: `trim()` must find and drop
/// exactly the useless states without touching the language.
fn arb_raw_dfa() -> impl Strategy<Value = Dfa> {
    (
        1usize..6,
        1usize..4,
        proptest::collection::vec((0usize..6, 0usize..4, 0usize..6), 0..24),
        proptest::collection::vec(0usize..6, 0..6),
        0usize..6,
    )
        .prop_map(|(states, sigma, transitions, finals, initial)| {
            let mut dfa = Dfa::new(states, sigma, (initial % states) as StateId);
            for (p, sym, q) in transitions {
                dfa.set_transition(
                    (p % states) as StateId,
                    Symbol::from_index(sym % sigma),
                    (q % states) as StateId,
                );
            }
            for f in finals {
                dfa.set_final((f % states) as StateId);
            }
            dfa
        })
}

/// Either shape; the transforms must hold on both.
fn arb_dfa() -> impl Strategy<Value = Dfa> {
    prop_oneof![arb_regex().prop_map(|r| r.to_dfa(SIGMA)), arb_raw_dfa(),]
}

/// Random word over the DFA's alphabet.
fn arb_word(sigma: usize) -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec((0..sigma).prop_map(Symbol::from_index), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline round trip: reversing twice recovers the language.
    #[test]
    fn reverse_round_trips_language(dfa in arb_dfa()) {
        let twice = dfa.reverse().reverse();
        prop_assert!(
            dfa.equivalent(&twice),
            "rev(rev(L)) != L for {} states",
            dfa.num_states()
        );
    }

    /// Pointwise mirror: `w ∈ L ⇔ rev(w) ∈ rev(L)` on random words —
    /// the membership-level fact the backward evaluation engine rests
    /// on (it walks the reversed DFA and maps path endpoints back).
    #[test]
    fn reverse_mirrors_membership(dfa in arb_dfa(), word in arb_word(SIGMA)) {
        // Raw DFAs may have a smaller alphabet; clip the word.
        let word: Vec<Symbol> =
            word.into_iter().filter(|s| s.index() < dfa.alphabet_len()).collect();
        let rev_dfa = dfa.reverse();
        let rev_word: Vec<Symbol> = word.iter().rev().copied().collect();
        prop_assert_eq!(dfa.accepts(&word), rev_dfa.accepts(&rev_word));
    }

    /// Preprocessing is language-preserving, hence key-preserving: the
    /// serving layer may plan on `reduced()` output while caching under
    /// the key of the original spelling.
    #[test]
    fn reduced_preserves_canonical_key(dfa in arb_dfa()) {
        let reduced = dfa.reduced();
        prop_assert_eq!(reduced.alphabet_len(), dfa.alphabet_len());
        prop_assert!(dfa.equivalent(&reduced));
        prop_assert_eq!(CanonicalQuery::new(&dfa), CanonicalQuery::new(&reduced));
    }

    /// Reversal also preserves the *key of the reversal*: planning on a
    /// reduced DFA and then reversing gives the same language as
    /// reversing the original — the plan cache can reverse either.
    #[test]
    fn reverse_commutes_with_reduced(dfa in arb_dfa()) {
        prop_assert!(dfa.reverse().equivalent(&dfa.reduced().reverse()));
    }

    /// `reduced()` output is a fixpoint: fully trimmed (every state
    /// reachable and coreachable) and already in BFS order, so running
    /// it again changes nothing — structurally, not just up to
    /// language. Engines can therefore preprocess unconditionally
    /// without re-planning churn.
    #[test]
    fn reduced_is_idempotent(dfa in arb_dfa()) {
        let once = dfa.reduced();
        prop_assert_eq!(once.clone(), once.reduced());
        // Trimmed: unless the language is empty (canonical 1-state
        // form), every state is live.
        if !once.language_is_empty() {
            let mut live = once.reachable();
            live.intersect_with(&once.coreachable());
            prop_assert_eq!(live.len(), once.num_states());
        } else {
            prop_assert_eq!(once.num_states(), 1);
        }
    }

    /// Pruning never grows the automaton.
    #[test]
    fn reduced_never_grows(dfa in arb_dfa()) {
        prop_assert!(dfa.reduced().num_states() <= dfa.num_states().max(1));
    }
}

/// Fixed shapes that exercised bugs elsewhere: ε-language, empty
/// language, a dead-state-heavy table, and a two-block chain.
#[test]
fn fixed_shapes() {
    // ε: reverse(ε-language) = ε-language.
    let eps = Dfa::epsilon_language(2);
    assert!(eps.reverse().equivalent(&eps));
    assert!(eps.reduced().equivalent(&eps));

    // Empty: stays empty under both transforms.
    let empty = Dfa::empty_language(2);
    assert!(empty.reverse().language_is_empty());
    assert!(empty.reduced().language_is_empty());
    assert_eq!(empty.reduced().num_states(), 1);

    // a·b over Σ={a,b}: reverse is b·a.
    let (a, b) = (Symbol::from_index(0), Symbol::from_index(1));
    let mut ab = Dfa::new(3, 2, 0);
    ab.set_transition(0, a, 1);
    ab.set_transition(1, b, 2);
    ab.set_final(2);
    let mut ba = Dfa::new(3, 2, 0);
    ba.set_transition(0, b, 1);
    ba.set_transition(1, a, 2);
    ba.set_final(2);
    assert!(ab.reverse().equivalent(&ba));

    // Dead-state-heavy: states 2..5 unreachable or non-coreachable;
    // the reduced form keeps exactly the two live states of `a`.
    let mut noisy = Dfa::new(6, 2, 0);
    noisy.set_transition(0, a, 1);
    noisy.set_transition(1, b, 3); // 3 is a dead end
    noisy.set_transition(4, a, 5); // unreachable island
    noisy.set_final(1);
    noisy.set_final(5);
    let reduced = noisy.reduced();
    assert_eq!(reduced.num_states(), 2);
    let mut just_a = Dfa::new(2, 2, 0);
    just_a.set_transition(0, a, 1);
    just_a.set_final(1);
    assert!(reduced.equivalent(&just_a));
    assert_eq!(CanonicalQuery::new(&noisy), CanonicalQuery::new(&just_a));

    // BFS reorder: a table spelled with states in reverse discovery
    // order canonicalizes to initial = 0 and monotone discovery ids.
    let mut shuffled = Dfa::new(3, 2, 2);
    shuffled.set_transition(2, a, 1);
    shuffled.set_transition(1, b, 0);
    shuffled.set_final(0);
    let r = shuffled.reduced();
    assert_eq!(r.initial(), 0);
    assert!(r.equivalent(&ab));
}
