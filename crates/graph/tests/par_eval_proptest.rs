//! Property-based equivalence of the parallel evaluation layer: on
//! random graphs and random regex queries, every `par_eval` batch
//! operation must be **bit-identical** to the sequential evaluators at
//! every thread count in {1, 2, 4} — slot by slot for batches, as one
//! OR-merged set for unions, and regardless of scratch reuse.

use pathlearn_automata::{Alphabet, BitSet, Regex, Symbol};
use pathlearn_graph::eval::{eval_binary_from, eval_monadic};
use pathlearn_graph::par_eval::EvalPool;
use pathlearn_graph::{GraphBuilder, GraphDb, NodeId};
use proptest::prelude::*;

const LABELS: [&str; 3] = ["a", "b", "c"];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Strategy: a random small graph over {a, b, c}, possibly disconnected,
/// with self-loops and parallel labels.
fn arb_graph() -> impl Strategy<Value = GraphDb> {
    (
        1usize..12,
        proptest::collection::vec((0u32..12, 0usize..3, 0u32..12), 0..36),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
            for i in 0..n {
                builder.add_node(&format!("n{i}"));
            }
            let n = n as u32;
            for (src, sym, dst) in edges {
                builder.add_edge_ids(src % n, Symbol::from_index(sym), dst % n);
            }
            builder.build()
        })
}

/// Strategy: a random regex AST over {a, b, c} including ε and stars.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        (0usize..3).prop_map(|i| Regex::Symbol(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
}

/// A deterministic source batch (with repeats) derived from a drawn seed,
/// so thread-count equivalence is exercised across many seeds.
fn sources_from_seed(graph: &GraphDb, seed: u64, len: usize) -> Vec<NodeId> {
    let n = graph.num_nodes() as u64;
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            // xorshift64* — any deterministic stream works here.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) % n) as NodeId
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `eval_binary_batch` and `eval_binary_union` agree with the
    /// sequential evaluator for every thread count and source batch.
    #[test]
    fn binary_batch_matches_sequential_across_threads(
        graph in arb_graph(),
        regex in arb_regex(),
        seed in any::<u64>(),
        batch_len in 0usize..40,
    ) {
        let query = regex.to_dfa(3);
        let sources = sources_from_seed(&graph, seed, batch_len);
        let expected: Vec<BitSet> = sources
            .iter()
            .map(|&s| eval_binary_from(&query, &graph, s))
            .collect();
        let mut expected_union = BitSet::new(graph.num_nodes());
        for ends in &expected {
            expected_union.union_with(ends);
        }
        for threads in THREAD_COUNTS {
            let pool = EvalPool::new(threads);
            prop_assert_eq!(
                &pool.eval_binary_batch(&query, &graph, &sources),
                &expected,
                "batch at {} threads, seed {}", threads, seed
            );
            prop_assert_eq!(
                &pool.eval_binary_union(&query, &graph, &sources),
                &expected_union,
                "union at {} threads, seed {}", threads, seed
            );
        }
    }

    /// `eval_monadic_batch` agrees with per-query `eval_monadic` for
    /// every thread count, including batches of heterogeneous queries.
    #[test]
    fn monadic_batch_matches_sequential_across_threads(
        graph in arb_graph(),
        regexes in proptest::collection::vec(arb_regex(), 0..8),
    ) {
        let queries: Vec<_> = regexes.iter().map(|r| r.to_dfa(3)).collect();
        let expected: Vec<BitSet> = queries
            .iter()
            .map(|q| eval_monadic(q, &graph))
            .collect();
        for threads in THREAD_COUNTS {
            let pool = EvalPool::new(threads);
            prop_assert_eq!(
                &pool.eval_monadic_batch(&queries, &graph),
                &expected,
                "{} threads", threads
            );
        }
    }

    /// A pool reused across many differently-shaped batches (the
    /// steady-state usage pattern) keeps producing sequential results.
    #[test]
    fn pool_reuse_across_batches_stays_equivalent(
        graph in arb_graph(),
        regex in arb_regex(),
        seeds in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        let query = regex.to_dfa(3);
        let pool = EvalPool::new(4);
        for (round, &seed) in seeds.iter().enumerate() {
            let sources = sources_from_seed(&graph, seed, 5 + 7 * round);
            let expected: Vec<BitSet> = sources
                .iter()
                .map(|&s| eval_binary_from(&query, &graph, s))
                .collect();
            prop_assert_eq!(
                &pool.eval_binary_batch(&query, &graph, &sources),
                &expected,
                "round {}", round
            );
        }
    }
}
