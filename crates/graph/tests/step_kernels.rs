//! Kernel-level tests for the frontier step kernels.
//!
//! Until this suite, `step_frontier_into` and its masked/ranged twins
//! were only exercised *through* the evaluators. Here the kernels are
//! driven directly against a per-node adjacency oracle on adversarial
//! frontiers — empty, full `|V|`, a single word, word-boundary
//! straddlers — over graph sizes chosen to hit every block-layout edge
//! (1, 63, 64, 65, 130 nodes), plus proptest-randomized graphs and
//! frontiers. The invariants:
//!
//! * masked ≡ plain ≡ oracle for full kernels, forward and backward;
//! * any word-aligned partition of the range reproduces the full
//!   kernel (ranged kernels accumulate — they must not clear);
//! * the sparse masked twin ≡ the sparse plain twin ≡ oracle;
//! * full kernels clear stale scratch, and out-of-alphabet symbols
//!   yield empty output at every kernel.

use pathlearn_automata::{Alphabet, BitSet, Symbol};
use pathlearn_graph::{GraphBuilder, GraphDb, NodeId};
use proptest::prelude::*;

const LABELS: [&str; 3] = ["a", "b", "c"];

/// Per-node adjacency oracle for one forward step.
fn oracle_forward(graph: &GraphDb, frontier: &BitSet, sym: Symbol) -> BitSet {
    let mut out = BitSet::new(graph.num_nodes());
    for node in frontier.iter() {
        for &(_, target) in graph.successors(node as NodeId, sym) {
            out.insert(target as usize);
        }
    }
    out
}

/// Per-node adjacency oracle for one backward step.
fn oracle_backward(graph: &GraphDb, frontier: &BitSet, sym: Symbol) -> BitSet {
    let mut out = BitSet::new(graph.num_nodes());
    for node in frontier.iter() {
        for &(_, source) in graph.predecessors(node as NodeId, sym) {
            out.insert(source as usize);
        }
    }
    out
}

/// A deterministic n-node graph with edges of all three labels laid out
/// to cross word boundaries: label `a` is a ring (every node active both
/// directions), label `b` connects every third node (mixed density),
/// label `c` has exactly one edge between the last and first node
/// (sparse extreme; for n == 1 it is a self-loop).
fn layout_graph(n: usize) -> GraphDb {
    let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
    let first = builder.add_nodes("n", n);
    let (a, b, c) = (
        Symbol::from_index(0),
        Symbol::from_index(1),
        Symbol::from_index(2),
    );
    let n = n as u32;
    for i in 0..n {
        builder.add_edge_ids(first + i, a, first + (i + 1) % n);
        if i % 3 == 0 {
            builder.add_edge_ids(first + i, b, first + (i / 2) % n);
        }
    }
    builder.add_edge_ids(first + n - 1, c, first);
    builder.build()
}

/// The adversarial frontier set for an n-node graph: empty, full,
/// single nodes at word boundaries (0, 62, 63, 64, 65, n-1), one full
/// word, a bit pattern straddling the first word boundary, and an
/// every-other-node comb.
fn adversarial_frontiers(n: usize) -> Vec<BitSet> {
    let mut frontiers = vec![
        BitSet::new(n),
        BitSet::full(n),
        BitSet::from_indices(n, (0..n).filter(|i| i % 2 == 0)),
        BitSet::from_indices(n, 0..n.min(64)),
    ];
    for boundary in [0usize, 62, 63, 64, 65, n - 1] {
        if boundary < n {
            frontiers.push(BitSet::from_indices(n, [boundary]));
        }
    }
    if n > 64 {
        // Straddle the first word boundary: bits 60..=67 (clamped).
        frontiers.push(BitSet::from_indices(n, (60..68).filter(|&i| i < n)));
    }
    frontiers
}

fn assert_kernels_match_oracle(graph: &GraphDb, frontier: &BitSet, sym: Symbol) {
    let n = graph.num_nodes();
    let words = graph.num_node_words();
    let expected_fwd = oracle_forward(graph, frontier, sym);
    let expected_bwd = oracle_backward(graph, frontier, sym);

    // Full kernels, plain and masked, clearing stale scratch.
    let mut out = BitSet::full(n);
    graph.step_frontier_into(frontier, sym, &mut out);
    assert_eq!(out, expected_fwd, "plain forward");
    let mut out = BitSet::full(n);
    graph.step_frontier_masked_into(frontier, sym, &mut out);
    assert_eq!(out, expected_fwd, "masked forward");
    let mut out = BitSet::full(n);
    graph.step_frontier_back_into(frontier, sym, &mut out);
    assert_eq!(out, expected_bwd, "plain backward");
    let mut out = BitSet::full(n);
    graph.step_frontier_back_masked_into(frontier, sym, &mut out);
    assert_eq!(out, expected_bwd, "masked backward");

    // Ranged kernels: every chunk width partitions back to the full
    // result, masked and plain, forward and backward.
    for chunk in [1usize, 2, 4, words] {
        let mut plain_fwd = BitSet::new(n);
        let mut masked_fwd = BitSet::new(n);
        let mut plain_bwd = BitSet::new(n);
        let mut masked_bwd = BitSet::new(n);
        let mut start = 0;
        while start < words {
            let range = start..(start + chunk).min(words);
            graph.step_frontier_range_into(frontier, sym, range.clone(), &mut plain_fwd);
            graph.step_frontier_masked_range_into(frontier, sym, range.clone(), &mut masked_fwd);
            graph.step_frontier_back_range_into(frontier, sym, range.clone(), &mut plain_bwd);
            graph.step_frontier_back_masked_range_into(frontier, sym, range, &mut masked_bwd);
            start += chunk;
        }
        assert_eq!(
            plain_fwd, expected_fwd,
            "ranged plain forward chunk {chunk}"
        );
        assert_eq!(
            masked_fwd, expected_fwd,
            "ranged masked forward chunk {chunk}"
        );
        assert_eq!(
            plain_bwd, expected_bwd,
            "ranged plain backward chunk {chunk}"
        );
        assert_eq!(
            masked_bwd, expected_bwd,
            "ranged masked backward chunk {chunk}"
        );
    }

    // Sparse twins on the frontier's index list.
    let sparse_set: Vec<NodeId> = frontier.iter().map(|i| i as NodeId).collect();
    let mut plain_sparse = vec![99 as NodeId]; // stale content
    let mut masked_sparse = vec![98 as NodeId];
    graph.step_sparse_into(&sparse_set, sym, &mut plain_sparse);
    graph.step_sparse_masked_into(&sparse_set, sym, &mut masked_sparse);
    assert_eq!(masked_sparse, plain_sparse, "sparse twin");
    assert_eq!(
        plain_sparse,
        expected_fwd.iter().map(|i| i as NodeId).collect::<Vec<_>>(),
        "sparse vs oracle"
    );
}

#[test]
fn adversarial_frontiers_on_layout_graphs() {
    for n in [1usize, 63, 64, 65, 130] {
        let graph = layout_graph(n);
        for frontier in adversarial_frontiers(n) {
            for sym in graph.alphabet().symbols() {
                assert_kernels_match_oracle(&graph, &frontier, sym);
            }
        }
    }
}

#[test]
fn out_of_alphabet_symbol_is_empty_at_every_kernel() {
    let graph = layout_graph(70);
    let foreign = Symbol::from_index(17);
    let frontier = BitSet::full(70);
    let mut out = BitSet::full(70);
    graph.step_frontier_into(&frontier, foreign, &mut out);
    assert!(out.is_empty());
    out.insert_all();
    graph.step_frontier_masked_into(&frontier, foreign, &mut out);
    assert!(out.is_empty());
    out.insert_all();
    graph.step_frontier_back_masked_into(&frontier, foreign, &mut out);
    assert!(out.is_empty());
    let mut sparse = vec![1];
    graph.step_sparse_masked_into(&[0, 1, 69], foreign, &mut sparse);
    assert!(sparse.is_empty());
}

#[test]
fn empty_range_is_a_no_op() {
    let graph = layout_graph(70);
    let a = Symbol::from_index(0);
    let frontier = BitSet::full(70);
    let mut out = BitSet::from_indices(70, [5]);
    graph.step_frontier_range_into(&frontier, a, 1..1, &mut out);
    graph.step_frontier_masked_range_into(&frontier, a, 2..2, &mut out);
    assert_eq!(out.iter().collect::<Vec<_>>(), [5]);
}

/// Strategy: a random graph over {a, b, c} with 1..=130 nodes (spanning
/// one to three frontier words) and arbitrary edges, including parallel
/// labels and self-loops.
fn arb_graph() -> impl Strategy<Value = GraphDb> {
    (
        1usize..130,
        proptest::collection::vec((0u32..130, 0usize..3, 0u32..130), 0..120),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
            builder.add_nodes("n", n);
            let n = n as u32;
            for (src, sym, dst) in edges {
                builder.add_edge_ids(src % n, Symbol::from_index(sym), dst % n);
            }
            builder.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random graph × random frontier × every symbol: all kernels agree
    /// with the per-node oracle (and with each other).
    #[test]
    fn kernels_match_oracle_on_random_graphs(
        graph in arb_graph(),
        frontier_bits in proptest::collection::vec(any::<bool>(), 130),
    ) {
        let n = graph.num_nodes();
        let frontier = BitSet::from_indices(
            n,
            frontier_bits.iter().take(n).enumerate().filter(|(_, &b)| b).map(|(i, _)| i),
        );
        for sym in graph.alphabet().symbols() {
            assert_kernels_match_oracle(&graph, &frontier, sym);
        }
    }
}
