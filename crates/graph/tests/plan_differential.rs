//! Strategy-matrix differential suite for the whole-query planner.
//!
//! The planner ([`pathlearn_graph::plan`]) chooses among three
//! evaluation directions — Forward (the original product-BFS engines),
//! Backward (the reversed-DFA monadic walk / the coreach-pruned binary
//! pass), and Bidirectional (binary meet-in-the-middle) — or resolves
//! the choice itself under Auto. The contract is absolute: **every
//! strategy is bit-identical to plain sequential forward evaluation**,
//! monadic and binary, sequential and on the pool at every thread count
//! in {1, 2, 4}, with and without a cancel token in play. This suite is
//! the matrix: random graph × random query (regex-derived and raw DFAs
//! with dead/unreachable states and padded alphabets) × all four forced
//! strategies × all thread counts, plus constructed asymmetric graphs
//! pinning that Auto actually picks the expected direction on the
//! shapes the estimate exists for (hub-fanout sources, rare-label
//! targets).

use pathlearn_automata::{Alphabet, CanonicalQuery, Dfa, Regex, Symbol};
use pathlearn_graph::eval::{eval_binary_from, eval_monadic};
use pathlearn_graph::plan::{
    eval_binary_planned, eval_binary_planned_interruptible, eval_monadic_planned,
    eval_monadic_planned_interruptible, plan_query, plan_query_forced, PlanScratch,
};
use pathlearn_graph::Strategy as EvalStrategy;
use pathlearn_graph::{
    CancelToken, EvalPool, GraphBuilder, GraphDb, Interrupt, IntraScratch, StepPolicy,
};
use proptest::prelude::*;

const LABELS: [&str; 3] = ["a", "b", "c"];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Strategy: a random small graph over {a, b, c}, possibly disconnected,
/// with self-loops and parallel labels (same shape space as the engine
/// differential suite).
fn arb_graph() -> impl Strategy<Value = GraphDb> {
    (
        1usize..12,
        proptest::collection::vec((0u32..12, 0usize..3, 0u32..12), 0..36),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
            for i in 0..n {
                builder.add_node(&format!("n{i}"));
            }
            let n = n as u32;
            for (src, sym, dst) in edges {
                builder.add_edge_ids(src % n, Symbol::from_index(sym), dst % n);
            }
            builder.build()
        })
}

/// Strategy: a random regex AST over {a, b, c}, determinized — the
/// query shape the learner produces.
fn arb_regex_dfa() -> impl Strategy<Value = Dfa> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        (0usize..3).prop_map(|i| Regex::Symbol(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
    .prop_map(|regex| regex.to_dfa(3))
}

/// Strategy: a **raw** random DFA — partial table, arbitrary finals,
/// dead and unreachable states, possibly a smaller alphabet than the
/// graph's. The planner's `reduced()`/`reverse()` preprocessing must
/// digest these without changing any answer.
fn arb_raw_dfa() -> impl Strategy<Value = Dfa> {
    (
        1usize..6,
        1usize..4,
        proptest::collection::vec((0usize..6, 0usize..4, 0usize..6), 0..24),
        proptest::collection::vec(0usize..6, 0..6),
    )
        .prop_map(|(states, sigma, transitions, finals)| {
            let mut dfa = Dfa::new(states, sigma, 0);
            for (p, sym, q) in transitions {
                dfa.set_transition(
                    (p % states) as u32,
                    Symbol::from_index(sym % sigma),
                    (q % states) as u32,
                );
            }
            for f in finals {
                dfa.set_final((f % states) as u32);
            }
            dfa
        })
}

/// Either query shape.
fn arb_query() -> impl Strategy<Value = Dfa> {
    prop_oneof![arb_regex_dfa(), arb_raw_dfa()]
}

/// The monadic strategy matrix on one (graph, query) pair: every forced
/// strategy, sequential and pooled at every thread count, against plain
/// forward evaluation.
fn assert_monadic_matrix(graph: &GraphDb, query: &Dfa) -> Result<(), TestCaseError> {
    let expected = eval_monadic(query, graph);
    let never = CancelToken::never();
    let mut scratch = PlanScratch::new();
    let mut intra = IntraScratch::new();
    let pools: Vec<EvalPool> = THREAD_COUNTS.iter().map(|&t| EvalPool::new(t)).collect();
    for forced in EvalStrategy::ALL {
        let plan = plan_query_forced(query, graph, forced);
        prop_assert_eq!(
            &eval_monadic_planned(&mut scratch, &plan, graph),
            &expected,
            "sequential monadic disagrees under forced {}",
            forced
        );
        prop_assert_eq!(
            &eval_monadic_planned_interruptible(
                &mut scratch,
                &plan,
                graph,
                StepPolicy::Auto,
                &never
            )
            .unwrap(),
            &expected,
            "interruptible monadic disagrees under forced {}",
            forced
        );
        for (pool, &threads) in pools.iter().zip(THREAD_COUNTS.iter()) {
            prop_assert_eq!(
                &pool
                    .eval_monadic_planned(&mut intra, &plan, graph, &never)
                    .unwrap(),
                &expected,
                "pool monadic disagrees under forced {} at {} threads",
                forced,
                threads
            );
        }
    }
    Ok(())
}

/// The binary strategy matrix from every source node. Plans and thread
/// pools are built once per (graph, query) pair — only the source loop
/// varies inside, keeping the whole-graph sweep affordable.
fn assert_binary_matrix(graph: &GraphDb, query: &Dfa) -> Result<(), TestCaseError> {
    let never = CancelToken::never();
    let mut scratch = PlanScratch::new();
    let mut intra = IntraScratch::new();
    let pools: Vec<EvalPool> = THREAD_COUNTS.iter().map(|&t| EvalPool::new(t)).collect();
    let plans: Vec<_> = EvalStrategy::ALL
        .into_iter()
        .map(|forced| (forced, plan_query_forced(query, graph, forced)))
        .collect();
    for source in graph.nodes() {
        let expected = eval_binary_from(query, graph, source);
        for (forced, plan) in &plans {
            prop_assert_eq!(
                &eval_binary_planned(&mut scratch, plan, graph, source),
                &expected,
                "sequential binary disagrees under forced {} from {}",
                forced,
                source
            );
            prop_assert_eq!(
                &eval_binary_planned_interruptible(
                    &mut scratch,
                    plan,
                    graph,
                    source,
                    StepPolicy::Auto,
                    &never
                )
                .unwrap(),
                &expected,
                "interruptible binary disagrees under forced {} from {}",
                forced,
                source
            );
            for (pool, &threads) in pools.iter().zip(THREAD_COUNTS.iter()) {
                prop_assert_eq!(
                    &pool
                        .eval_binary_planned(&mut intra, plan, graph, source, &never)
                        .unwrap(),
                    &expected,
                    "pool binary disagrees under forced {} from {} at {} threads",
                    forced,
                    source,
                    threads
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Monadic semantics: Forward ≡ Backward ≡ Bidirectional ≡ Auto ≡
    /// plain forward evaluation, sequential and pooled, on regex-derived
    /// and raw random DFAs alike.
    #[test]
    fn monadic_strategies_agree(graph in arb_graph(), query in arb_query()) {
        assert_monadic_matrix(&graph, &query)?;
    }

    /// Binary semantics from every source node: all four strategies ≡
    /// plain forward evaluation, sequential and pooled. This is where
    /// the coreach-pruned backward pass and the meet-in-the-middle
    /// engine actually diverge structurally from forward — and must not
    /// diverge observably.
    #[test]
    fn binary_strategies_agree(graph in arb_graph(), query in arb_query()) {
        assert_binary_matrix(&graph, &query)?;
    }

    /// Planning invariants on arbitrary inputs: preprocessing preserves
    /// the language (and hence the `CanonicalQuery` cache key), the
    /// reversed DFA's language is the mirror, resolved strategies are
    /// never `Auto`, and the direction estimates are finite and
    /// positive.
    #[test]
    fn plans_are_well_formed(graph in arb_graph(), query in arb_query()) {
        let plan = plan_query(&query, &graph);
        prop_assert!(query.equivalent(plan.query()));
        prop_assert_eq!(
            CanonicalQuery::new(&query),
            CanonicalQuery::new(plan.query())
        );
        prop_assert!(query.reverse().equivalent(plan.reversed()));
        prop_assert_ne!(plan.monadic_strategy(), EvalStrategy::Auto);
        prop_assert_ne!(plan.binary_strategy(), EvalStrategy::Auto);
        // Monadic has no distinguished source side; Bidirectional is a
        // binary-only resolution.
        prop_assert_ne!(plan.monadic_strategy(), EvalStrategy::Bidirectional);
        for est in [plan.monadic_estimate(), plan.binary_estimate()] {
            prop_assert!(est.forward.is_finite() && est.forward >= 0.0);
            prop_assert!(est.backward.is_finite() && est.backward >= 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cancellation across the matrix: a pre-tripped token never
    /// produces a *wrong* answer — every planned engine either reports
    /// the interrupt or completes before its first level check (ε
    /// shortcuts, empty frontiers) with the exact forward result.
    /// A never token is the plain path.
    #[test]
    fn tripped_tokens_never_corrupt_results(
        graph in arb_graph(),
        query in arb_query(),
    ) {
        let tripped = CancelToken::with_flag(std::sync::Arc::new(
            std::sync::atomic::AtomicBool::new(true),
        ));
        let expected = eval_monadic(&query, &graph);
        let expected_binary = eval_binary_from(&query, &graph, 0);
        let mut scratch = PlanScratch::new();
        let mut intra = IntraScratch::new();
        let pools: Vec<(usize, EvalPool)> =
            [1usize, 4].into_iter().map(|t| (t, EvalPool::new(t))).collect();
        for forced in EvalStrategy::ALL {
            let plan = plan_query_forced(&query, &graph, forced);
            match eval_monadic_planned_interruptible(
                &mut scratch, &plan, &graph, StepPolicy::Auto, &tripped,
            ) {
                Err(Interrupt::Cancelled) => {}
                Ok(result) => prop_assert_eq!(
                    &result, &expected,
                    "tripped monadic completed wrong under {}", forced
                ),
                Err(other) => prop_assert!(false, "unexpected verdict {:?}", other),
            }
            match eval_binary_planned_interruptible(
                &mut scratch, &plan, &graph, 0, StepPolicy::Auto, &tripped,
            ) {
                Err(Interrupt::Cancelled) => {}
                Ok(result) => prop_assert_eq!(
                    &result, &expected_binary,
                    "tripped binary completed wrong under {}", forced
                ),
                Err(other) => prop_assert!(false, "unexpected verdict {:?}", other),
            }
            for (threads, pool) in &pools {
                match pool.eval_monadic_planned(&mut intra, &plan, &graph, &tripped) {
                    Err(Interrupt::Cancelled) => {}
                    Ok(result) => prop_assert_eq!(
                        &result, &expected,
                        "tripped pool monadic completed wrong under {} at {} threads",
                        forced, threads
                    ),
                    Err(other) => prop_assert!(false, "unexpected verdict {:?}", other),
                }
                match pool.eval_binary_planned(&mut intra, &plan, &graph, 0, &tripped) {
                    Err(Interrupt::Cancelled) => {}
                    Ok(result) => prop_assert_eq!(
                        &result, &expected_binary,
                        "tripped pool binary completed wrong under {} at {} threads",
                        forced, threads
                    ),
                    Err(other) => prop_assert!(false, "unexpected verdict {:?}", other),
                }
            }
        }
    }
}

/// A hub graph with a **rare target label**: `a` is everywhere (every
/// node fans out to many others), `c` labels a single edge. Forward
/// evaluation of `(a+b)*·c` from a hub node floods the whole graph
/// level after level; backward evaluation seeds the coreach at the lone
/// `c`-edge and stays tiny. The estimate must see this.
fn hub_graph_with_rare_target(n: usize, fanout: usize) -> GraphDb {
    let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
    builder.add_nodes("n", n);
    let n = n as u32;
    for i in 0..n {
        for j in 1..=fanout as u32 {
            builder.add_edge_ids(i, Symbol::from_index(0), (i + j) % n);
        }
    }
    // One rare c-edge deep in the node range.
    builder.add_edge_ids(n - 2, Symbol::from_index(2), n - 1);
    builder.build()
}

/// Auto picks a non-forward direction for a rare-label-target binary
/// query on a hub graph, forward for a dense-label query — and both
/// resolutions are bit-identical to forward anyway.
#[test]
fn auto_picks_expected_binary_direction_on_asymmetric_graphs() {
    let graph = hub_graph_with_rare_target(256, 16);
    let rare_target = Regex::parse("(a+b)*·c", graph.alphabet())
        .unwrap()
        .to_dfa(3);
    let plan = plan_query(&rare_target, &graph);
    let est = plan.binary_estimate();
    assert!(
        est.backward < est.forward,
        "rare-target estimate must favor backward: fwd {} vs back {}",
        est.forward,
        est.backward
    );
    assert_ne!(
        plan.binary_strategy(),
        EvalStrategy::Forward,
        "rare-target hub query must not plan forward (estimates: fwd {} back {})",
        est.forward,
        est.backward
    );

    // A dense-label query: the backward coreach would seed every node
    // (a* accepts ε at the final state loop), the forward walk from one
    // source is the cheap side.
    let dense = Regex::parse("a·a", graph.alphabet()).unwrap().to_dfa(3);
    let dense_plan = plan_query(&dense, &graph);
    assert_eq!(
        dense_plan.binary_strategy(),
        EvalStrategy::Forward,
        "dense-label short query must plan forward (estimates: fwd {} back {})",
        dense_plan.binary_estimate().forward,
        dense_plan.binary_estimate().backward
    );

    // Whatever Auto resolved, the answers match plain forward from a
    // hub source and from the rare edge's tail.
    let mut scratch = PlanScratch::new();
    for source in [0u32, 254] {
        assert_eq!(
            eval_binary_planned(&mut scratch, &plan, &graph, source),
            eval_binary_from(&rare_target, &graph, source),
            "auto-planned rare-target from {source}"
        );
        assert_eq!(
            eval_binary_planned(&mut scratch, &dense_plan, &graph, source),
            eval_binary_from(&dense, &graph, source),
            "auto-planned dense from {source}"
        );
    }
}

/// Forced strategies always resolve as requested on the binary side
/// (and Backward stays available monadically even past Auto's
/// reversed-size guard), so the bench ablation can trust its labels.
#[test]
fn forced_strategies_pin_the_binary_engine() {
    let graph = hub_graph_with_rare_target(64, 8);
    let query = Regex::parse("(a+b)*·c", graph.alphabet())
        .unwrap()
        .to_dfa(3);
    for forced in [
        EvalStrategy::Forward,
        EvalStrategy::Backward,
        EvalStrategy::Bidirectional,
    ] {
        let plan = plan_query_forced(&query, &graph, forced);
        assert_eq!(plan.binary_strategy(), forced);
    }
}

/// Fixed regression shapes through every strategy: ε in the language,
/// empty language, a query alphabet smaller than the graph's, and an
/// out-of-range binary source.
#[test]
fn fixed_shapes_through_every_strategy() {
    let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
    builder.add_edge("x", "a", "x");
    builder.add_edge("x", "b", "y");
    builder.add_node("lonely");
    let graph = builder.build();
    let shapes = [
        Dfa::empty_language(3),
        Dfa::epsilon_language(3),
        Regex::parse("(a·b)*·c", graph.alphabet())
            .unwrap()
            .to_dfa(3),
        {
            let mut only_a = Dfa::new(2, 1, 0);
            only_a.set_transition(0, Symbol::from_index(0), 1);
            only_a.set_final(1);
            only_a
        },
    ];
    let mut scratch = PlanScratch::new();
    for query in &shapes {
        let expected = eval_monadic(query, &graph);
        for forced in EvalStrategy::ALL {
            let plan = plan_query_forced(query, &graph, forced);
            assert_eq!(
                eval_monadic_planned(&mut scratch, &plan, &graph),
                expected,
                "monadic fixed shape under {forced}"
            );
            for source in graph.nodes() {
                assert_eq!(
                    eval_binary_planned(&mut scratch, &plan, &graph, source),
                    eval_binary_from(query, &graph, source),
                    "binary fixed shape under {forced} from {source}"
                );
            }
            // Out-of-range source: empty, not a panic, in every engine.
            assert!(
                eval_binary_planned(&mut scratch, &plan, &graph, 1000).is_empty(),
                "out-of-range source under {forced}"
            );
        }
    }
}
