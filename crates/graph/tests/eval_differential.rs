//! Cross-engine differential suite for RPQ evaluation.
//!
//! Five evaluation engines coexist in this crate — the frontier-batched
//! [`eval_monadic`], the seed queue-based [`eval_monadic_queued`], the
//! per-node product-search [`eval_monadic_naive`], the intra-query
//! parallel [`EvalPool::eval_monadic`], and the sequential path under
//! every step-kernel policy ([`StepPolicy`]: plain / legacy-pruned /
//! masked / cost-model auto). On random graphs and random queries (both
//! regex-derived DFAs and *raw* random DFAs with partial transition
//! tables, dead states, and unreachable states) all engines must select
//! **exactly** the same node sets, and the parallel twins must stay
//! bit-identical at every thread count in {1, 2, 4} **and every
//! node-range chunk width in {1 word, 4 words, auto}** — including the
//! ≤ 1-task-per-level regime of 2-state single-label queries, where the
//! node-range fan-out is the only parallelism there is. Label-density
//! extremes (every label active on all nodes / on at most one node) are
//! generated explicitly so the masked kernels and the cost-model gate
//! see both of their boundary conditions. The per-label active-node
//! bitmaps feeding it all are checked against a from-scratch
//! recomputation on the same random graphs.

use pathlearn_automata::{Alphabet, BitSet, Dfa, Regex, Symbol};
use pathlearn_graph::eval::{
    eval_binary_from, eval_binary_from_policy, eval_binary_from_pruning, eval_monadic,
    eval_monadic_naive, eval_monadic_policy, eval_monadic_queued, EvalScratch,
};
use pathlearn_graph::par_eval::{EvalPool, IntraScratch};
use pathlearn_graph::{GraphBuilder, GraphDb, StepPolicy};
use proptest::prelude::*;

const LABELS: [&str; 3] = ["a", "b", "c"];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
/// Node-range chunk widths for the intra-query fan-out: 1 word, 4
/// words, and the auto sizing (`None`).
const CHUNK_WIDTHS: [Option<usize>; 3] = [Some(1), Some(4), None];

/// Strategy: a random small graph over {a, b, c}, possibly disconnected,
/// with self-loops and parallel labels.
fn arb_graph() -> impl Strategy<Value = GraphDb> {
    (
        1usize..12,
        proptest::collection::vec((0u32..12, 0usize..3, 0u32..12), 0..36),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
            for i in 0..n {
                builder.add_node(&format!("n{i}"));
            }
            let n = n as u32;
            for (src, sym, dst) in edges {
                builder.add_edge_ids(src % n, Symbol::from_index(sym), dst % n);
            }
            builder.build()
        })
}

/// Strategy: a random regex AST over {a, b, c} including ε and stars,
/// determinized — the query shape the learner actually produces.
fn arb_regex_dfa() -> impl Strategy<Value = Dfa> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        (0usize..3).prop_map(|i| Regex::Symbol(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
    .prop_map(|regex| regex.to_dfa(3))
}

/// Strategy: a **raw** random DFA — partial transition table, arbitrary
/// finals, possibly dead or unreachable states, possibly a smaller
/// alphabet than the graph's. Regex-derived DFAs are always trim; this
/// covers the shapes they cannot produce.
fn arb_raw_dfa() -> impl Strategy<Value = Dfa> {
    (
        1usize..6,
        1usize..4,
        proptest::collection::vec((0usize..6, 0usize..4, 0usize..6), 0..24),
        proptest::collection::vec(0usize..6, 0..6),
    )
        .prop_map(|(states, sigma, transitions, finals)| {
            let mut dfa = Dfa::new(states, sigma, 0);
            for (p, sym, q) in transitions {
                dfa.set_transition(
                    (p % states) as u32,
                    Symbol::from_index(sym % sigma),
                    (q % states) as u32,
                );
            }
            for f in finals {
                dfa.set_final((f % states) as u32);
            }
            dfa
        })
}

/// Either query shape: learner-realistic regex DFAs or raw random DFAs.
fn arb_query() -> impl Strategy<Value = Dfa> {
    prop_oneof![arb_regex_dfa(), arb_raw_dfa()]
}

/// All monadic engines against the frontier evaluator's result: the
/// seed queue engine, the naive product engine, the sequential engine
/// under every step policy, and the intra-query parallel twin at every
/// thread count × chunk width.
fn assert_monadic_engines_agree(graph: &GraphDb, query: &Dfa) -> Result<(), TestCaseError> {
    let expected = eval_monadic(query, graph);
    prop_assert_eq!(
        &eval_monadic_queued(query, graph),
        &expected,
        "queued (seed) engine disagrees"
    );
    prop_assert_eq!(
        &eval_monadic_naive(query, graph),
        &expected,
        "naive product engine disagrees"
    );
    let mut scratch = EvalScratch::new();
    for policy in StepPolicy::ALL {
        prop_assert_eq!(
            &eval_monadic_policy(&mut scratch, query, graph, policy),
            &expected,
            "sequential engine disagrees under {:?}",
            policy
        );
    }
    let mut intra = IntraScratch::new();
    for threads in THREAD_COUNTS {
        for chunk in CHUNK_WIDTHS {
            let pool = match chunk {
                Some(words) => EvalPool::new(threads).with_intra_chunk_words(words),
                None => EvalPool::new(threads),
            };
            prop_assert_eq!(
                &pool.eval_monadic(query, graph),
                &expected,
                "intra-query parallel engine disagrees at {} threads, chunk {:?}",
                threads,
                chunk
            );
            prop_assert_eq!(
                &pool.eval_monadic_with(&mut intra, query, graph),
                &expected,
                "intra-query parallel engine (reused scratch) disagrees at {} threads, chunk {:?}",
                threads,
                chunk
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Monadic semantics: frontier ≡ queued ≡ naive ≡ unpruned ≡
    /// intra-query parallel at threads {1, 2, 4}, for regex-derived and
    /// raw random DFAs alike.
    #[test]
    fn monadic_engines_agree(graph in arb_graph(), query in arb_query()) {
        assert_monadic_engines_agree(&graph, &query)?;
    }

    /// Binary semantics from every source node: the sequential engine ≡
    /// every step policy ≡ the intra-query parallel twin at threads
    /// {1, 2, 4}.
    #[test]
    fn binary_engines_agree(graph in arb_graph(), query in arb_query()) {
        let mut scratch = EvalScratch::new();
        let mut intra = IntraScratch::new();
        for source in graph.nodes() {
            let expected = eval_binary_from(&query, &graph, source);
            prop_assert_eq!(
                &eval_binary_from_pruning(&mut scratch, &query, &graph, source, false),
                &expected,
                "unpruned binary engine disagrees from {}", source
            );
            for policy in StepPolicy::ALL {
                prop_assert_eq!(
                    &eval_binary_from_policy(&mut scratch, &query, &graph, source, policy),
                    &expected,
                    "binary engine disagrees from {} under {:?}", source, policy
                );
            }
            for threads in THREAD_COUNTS {
                let pool = EvalPool::new(threads);
                prop_assert_eq!(
                    &pool.eval_binary_from(&query, &graph, source),
                    &expected,
                    "intra-query parallel binary engine disagrees from {} at {} threads",
                    source, threads
                );
                prop_assert_eq!(
                    &pool.eval_binary_from_with(&mut intra, &query, &graph, source),
                    &expected,
                    "intra-query parallel binary engine (reused scratch) disagrees from {} at {} threads",
                    source, threads
                );
            }
        }
    }

    /// One pool and one scratch driven through a mixed monadic/binary
    /// call sequence of differently-shaped queries — the learner's usage
    /// pattern — keeps matching the allocating sequential entry points.
    #[test]
    fn mixed_reuse_stays_equivalent(
        graph in arb_graph(),
        queries in proptest::collection::vec(arb_query(), 1..5),
    ) {
        let pool = EvalPool::new(4);
        let mut intra = IntraScratch::new();
        for query in &queries {
            prop_assert_eq!(
                &pool.eval_monadic_with(&mut intra, query, &graph),
                &eval_monadic(query, &graph),
                "monadic after mixed reuse"
            );
            let source = 0;
            prop_assert_eq!(
                &pool.eval_binary_from_with(&mut intra, query, &graph, source),
                &eval_binary_from(query, &graph, source),
                "binary after mixed reuse"
            );
        }
    }

    /// Per-label bitmap invariant on random graphs: membership in
    /// `label_sources(sym)` / `label_targets(sym)` is exactly "has ≥ 1
    /// out- / in-edge labeled sym", forward and reverse, for every node
    /// and symbol — i.e. the bitmaps the pruning relies on are precisely
    /// the recomputation from the adjacency.
    #[test]
    fn label_bitmaps_match_recomputation(graph in arb_graph()) {
        for sym in graph.alphabet().symbols() {
            let mut sources = BitSet::new(graph.num_nodes());
            let mut targets = BitSet::new(graph.num_nodes());
            for (src, edge_sym, dst) in graph.edges() {
                if edge_sym == sym {
                    sources.insert(src as usize);
                    targets.insert(dst as usize);
                }
            }
            prop_assert_eq!(
                graph.label_sources(sym),
                &sources,
                "label_sources({:?})", sym
            );
            prop_assert_eq!(
                graph.label_targets(sym),
                &targets,
                "label_targets({:?})", sym
            );
        }
    }
}

/// Strategy: a graph at a **label-density extreme**. All-dense: every
/// node carries an out- and in-edge of every label (ring per label), so
/// every `frontier ∩ label-active` intersection equals the frontier and
/// the cost model must fall back to plain kernels. All-sparse: each
/// label has exactly one edge, so almost every intersection is empty and
/// the masked path is where all pruning happens. Both extremes get a few
/// random extra edges on top so the two regimes are not purely regular.
fn arb_extreme_graph() -> impl Strategy<Value = GraphDb> {
    (
        2usize..90,
        any::<bool>(),
        proptest::collection::vec((0u32..90, 0usize..3, 0u32..90), 0..8),
    )
        .prop_map(|(n, dense, extra)| {
            let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
            builder.add_nodes("n", n);
            let n = n as u32;
            if dense {
                for i in 0..n {
                    for sym in 0..3 {
                        builder.add_edge_ids(i, Symbol::from_index(sym), (i + 1 + sym as u32) % n);
                    }
                }
            } else {
                for sym in 0..3 {
                    builder.add_edge_ids(
                        sym as u32 % n,
                        Symbol::from_index(sym),
                        (sym as u32 + 1) % n,
                    );
                }
            }
            for (src, sym, dst) in extra {
                builder.add_edge_ids(src % n, Symbol::from_index(sym), dst % n);
            }
            builder.build()
        })
}

/// Strategy: a 2-state DFA over a single symbol — the paper's common
/// query shape where an intra-query level carries **at most one**
/// `(state, symbol)` task, so only the node-range fan-out parallelizes
/// anything. Variants: `a·a*` (both states step) and `{a}` (one step
/// then done), with the symbol drawn from the 3-label alphabet.
fn arb_two_state_single_label_dfa() -> impl Strategy<Value = Dfa> {
    (0usize..3, any::<bool>()).prop_map(|(sym, looping)| {
        let mut dfa = Dfa::new(2, 3, 0);
        dfa.set_transition(0, Symbol::from_index(sym), 1);
        if looping {
            dfa.set_transition(1, Symbol::from_index(sym), 1);
        }
        dfa.set_final(1);
        dfa
    })
}

/// Strategy: a larger random graph (up to ~200 nodes, several frontier
/// words) so the word-aligned node-range splitting actually produces
/// multiple chunks per task.
fn arb_wide_graph() -> impl Strategy<Value = GraphDb> {
    (
        65usize..200,
        proptest::collection::vec((0u32..200, 0usize..3, 0u32..200), 40..240),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
            builder.add_nodes("n", n);
            let n = n as u32;
            for (src, sym, dst) in edges {
                builder.add_edge_ids(src % n, Symbol::from_index(sym), dst % n);
            }
            builder.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Label-density extremes: masked ≡ plain ≡ pruned ≡ auto ≡ naive ≡
    /// queued ≡ parallel, monadic and binary, on graphs where every
    /// label is everywhere-active or nearly nowhere-active — the two
    /// boundary conditions of the masked kernels and the popcount gate.
    #[test]
    fn engines_agree_at_density_extremes(
        graph in arb_extreme_graph(),
        query in arb_query(),
    ) {
        assert_monadic_engines_agree(&graph, &query)?;
        let mut scratch = EvalScratch::new();
        let source = 0;
        let expected = eval_binary_from(&query, &graph, source);
        for policy in StepPolicy::ALL {
            prop_assert_eq!(
                &eval_binary_from_policy(&mut scratch, &query, &graph, source, policy),
                &expected,
                "binary under {:?}", policy
            );
        }
    }

    /// Node-range splitting determinism in the ≤ 1-task-per-level
    /// regime: a 2-state single-label DFA on a multi-word graph, where
    /// each BFS level harvests at most one (state, symbol) task and the
    /// only available parallelism is the word-aligned chunk fan-out.
    /// Results at threads {1, 2, 4} × chunk widths {1 word, 4 words,
    /// auto} must all be bit-identical to sequential, monadic and
    /// binary, with scratch reuse across configurations.
    #[test]
    fn node_range_splitting_is_deterministic(
        graph in arb_wide_graph(),
        query in arb_two_state_single_label_dfa(),
    ) {
        let expected = eval_monadic(&query, &graph);
        let source = (graph.num_nodes() / 2) as u32;
        let expected_binary = eval_binary_from(&query, &graph, source);
        let mut intra = IntraScratch::new();
        for threads in THREAD_COUNTS {
            for chunk in CHUNK_WIDTHS {
                let pool = match chunk {
                    Some(words) => EvalPool::new(threads).with_intra_chunk_words(words),
                    None => EvalPool::new(threads),
                };
                prop_assert_eq!(
                    &pool.eval_monadic_with(&mut intra, &query, &graph),
                    &expected,
                    "monadic at {} threads, chunk {:?}", threads, chunk
                );
                prop_assert_eq!(
                    &pool.eval_binary_from_with(&mut intra, &query, &graph, source),
                    &expected_binary,
                    "binary at {} threads, chunk {:?}", threads, chunk
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The environment-configured pool (`PATHLEARN_THREADS`, the knob the
    /// CI thread matrix varies) agrees with sequential evaluation on both
    /// the batch and the intra-query paths. This is the test that makes
    /// `PATHLEARN_THREADS=N cargo test` a real determinism gate: under
    /// the 4-thread CI leg the pool here is genuinely parallel.
    #[test]
    fn env_configured_pool_matches_sequential(
        graph in arb_graph(),
        query in arb_query(),
    ) {
        let pool = EvalPool::from_env();
        let expected = eval_monadic(&query, &graph);
        prop_assert_eq!(
            &pool.eval_monadic(&query, &graph),
            &expected,
            "intra-query at {} env threads", pool.threads()
        );
        prop_assert_eq!(
            &pool.eval_monadic_batch(std::slice::from_ref(&query), &graph)[0],
            &expected,
            "batch at {} env threads", pool.threads()
        );
        for source in graph.nodes() {
            prop_assert_eq!(
                &pool.eval_binary_from(&query, &graph, source),
                &eval_binary_from(&query, &graph, source),
                "binary from {} at {} env threads", source, pool.threads()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The degree-weighted cost model is a pure execution strategy: for
    /// random graphs, frontiers and symbols, whatever `StepPlan` the
    /// weighted `Auto` gate picks, executing it is **bit-identical** to
    /// the exhaustive plain kernel in both directions — a Skip verdict
    /// really is an empty step, a Masked verdict really loses no node.
    /// (The engine-level matrices above assert the same through whole
    /// evaluations; this pins the verdict/kernels contract directly, on
    /// arbitrary frontiers no BFS needs to reach.)
    #[test]
    fn degree_weighted_plans_are_bit_identical_to_plain_steps(
        graph in arb_graph(),
        frontier_bits in proptest::collection::vec(any::<bool>(), 12),
    ) {
        use pathlearn_graph::StepPlan;
        let n = graph.num_nodes();
        let frontier = BitSet::from_indices(
            n,
            frontier_bits.iter().enumerate().filter(|(i, &b)| b && *i < n).map(|(i, _)| i),
        );
        let frontier_len = frontier.len();
        let mut plain = BitSet::new(n);
        let mut planned = BitSet::new(n);
        for sym in graph.alphabet().symbols() {
            // Forward.
            graph.step_frontier_into(&frontier, sym, &mut plain);
            match graph.plan_step(&frontier, sym, frontier_len, StepPolicy::Auto) {
                StepPlan::Skip => prop_assert!(
                    plain.is_empty(),
                    "Skip verdict on a productive forward step ({:?})", sym
                ),
                StepPlan::Masked => {
                    graph.step_frontier_masked_into(&frontier, sym, &mut planned);
                    prop_assert_eq!(&planned, &plain, "forward masked {:?}", sym);
                }
                StepPlan::Plain => {}
            }
            // Backward.
            graph.step_frontier_back_into(&frontier, sym, &mut plain);
            match graph.plan_step_back(&frontier, sym, frontier_len, StepPolicy::Auto) {
                StepPlan::Skip => prop_assert!(
                    plain.is_empty(),
                    "Skip verdict on a productive backward step ({:?})", sym
                ),
                StepPlan::Masked => {
                    graph.step_frontier_back_masked_into(&frontier, sym, &mut planned);
                    prop_assert_eq!(&planned, &plain, "backward masked {:?}", sym);
                }
                StepPlan::Plain => {}
            }
        }
    }
}

/// Regression shapes that once mattered for at least one engine: ε in
/// the language, empty language, dead labels, query alphabet smaller
/// than the graph's, single node with self-loops.
#[test]
fn fixed_regression_shapes() {
    let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
    builder.add_edge("x", "a", "x");
    builder.add_edge("x", "b", "y");
    builder.add_node("lonely");
    let graph = builder.build();
    let shapes = [
        Dfa::empty_language(3),
        Dfa::epsilon_language(3),
        Regex::parse("(a·b)*·c", graph.alphabet())
            .unwrap()
            .to_dfa(3),
        {
            let mut only_a = Dfa::new(2, 1, 0); // 1-symbol alphabet < graph's 3
            only_a.set_transition(0, Symbol::from_index(0), 1);
            only_a.set_final(1);
            only_a
        },
    ];
    for query in &shapes {
        let expected = eval_monadic(query, &graph);
        assert_eq!(eval_monadic_queued(query, &graph), expected);
        assert_eq!(eval_monadic_naive(query, &graph), expected);
        for threads in THREAD_COUNTS {
            let pool = EvalPool::new(threads);
            assert_eq!(pool.eval_monadic(query, &graph), expected);
            for source in graph.nodes() {
                assert_eq!(
                    pool.eval_binary_from(query, &graph, source),
                    eval_binary_from(query, &graph, source)
                );
            }
        }
    }
}
