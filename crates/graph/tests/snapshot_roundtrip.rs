//! Snapshot round-trip differential suite — a snapshot is either the
//! graph, bit for bit, or an error.
//!
//! For random graphs (with random stacked delta overlays), this suite
//! pins the durability contract the serving layer's restart path relies
//! on:
//!
//! * **encode∘decode is the identity on bytes** — decoding a snapshot
//!   and re-encoding the result reproduces the original byte string,
//!   so every stored *and* derived field (offset tables, bitmaps,
//!   degree statistics) survives the trip exactly;
//! * **decoded graphs answer queries identically** — monadic and
//!   binary evaluation on the decoded graph match the source graph on
//!   random queries;
//! * **corruption is never a wrong answer** — any single bit flip and
//!   any truncation decodes to a [`SnapshotError`], never to a graph.

use pathlearn_automata::{Alphabet, Dfa, Regex, Symbol};
use pathlearn_graph::eval::{eval_binary_from, eval_monadic};
use pathlearn_graph::{GraphBuilder, GraphDb, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

const LABELS: [&str; 3] = ["a", "b", "c"];

type Edge = (NodeId, Symbol, NodeId);

/// Strategy: a random small graph over {a, b, c} — possibly
/// disconnected, with self-loops, parallel labels, and duplicate edge
/// submissions (deduped by the builder).
fn arb_graph() -> impl Strategy<Value = GraphDb> {
    (
        1usize..12,
        proptest::collection::vec((0u32..12, 0usize..3, 0u32..12), 0..40),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
            for i in 0..n {
                builder.add_node(&format!("n{i}"));
            }
            let n = n as u32;
            for (src, sym, dst) in edges {
                builder.add_edge_ids(src % n, Symbol::from_index(sym), dst % n);
            }
            builder.build()
        })
}

/// A raw `(src, symbol index, dst)` edge before reduction mod the
/// graph size, and one delta batch of them: `(additions, removals)`.
type RawEdge = (u32, usize, u32);
type RawBatch = (Vec<RawEdge>, Vec<RawEdge>);

/// Strategy: 0..4 delta batches of raw additions/removals, applied mod
/// the graph size so they freely no-op and cancel.
fn arb_batches() -> impl Strategy<Value = Vec<RawBatch>> {
    let edge = (0u32..12, 0usize..3, 0u32..12);
    proptest::collection::vec(
        (
            proptest::collection::vec(edge.clone(), 0..6),
            proptest::collection::vec(edge, 0..6),
        ),
        0..4,
    )
}

/// Strategy: a random determinized regex over {a, b, c}.
fn arb_query() -> impl Strategy<Value = Dfa> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        (0usize..3).prop_map(|i| Regex::Symbol(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
    .prop_map(|regex| regex.to_dfa(3))
}

fn overlayed(base: &GraphDb, batches: &[RawBatch]) -> GraphDb {
    let n = base.num_nodes() as u32;
    let fix = |edges: &[RawEdge]| -> Vec<Edge> {
        edges
            .iter()
            .map(|&(s, sym, d)| (s % n, Symbol::from_index(sym), d % n))
            .collect()
    };
    let mut graph = base.clone();
    for (add, remove) in batches {
        graph = graph
            .with_delta(&fix(add), &fix(remove))
            .expect("in-range delta must apply");
    }
    graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode ∘ decode = identity on bytes, for overlay-free graphs and
    /// for graphs carrying a pending overlay (compacted on save).
    #[test]
    fn snapshot_roundtrips_bit_identically(
        graph in arb_graph(),
        batches in arb_batches(),
    ) {
        let graph = overlayed(&graph, &batches);
        let bytes = graph.snapshot_bytes();
        let decoded = GraphDb::from_snapshot_bytes(&bytes)
            .expect("a just-encoded snapshot must decode");
        prop_assert_eq!(decoded.snapshot_bytes(), bytes);

        // The decoded graph is the overlay's effective edge set.
        let decoded_edges: HashSet<Edge> = decoded.edges().collect();
        let source_edges: HashSet<Edge> = graph.edges().collect();
        prop_assert_eq!(decoded_edges, source_edges);
        prop_assert_eq!(decoded.num_nodes(), graph.num_nodes());
        for node in graph.nodes() {
            prop_assert_eq!(decoded.node_name(node), graph.node_name(node));
        }
    }

    /// Decoded graphs are observably the same database: monadic and
    /// binary answers match on random queries.
    #[test]
    fn decoded_graph_is_query_equivalent(
        graph in arb_graph(),
        batches in arb_batches(),
        query in arb_query(),
    ) {
        let graph = overlayed(&graph, &batches);
        let decoded = GraphDb::from_snapshot_bytes(&graph.snapshot_bytes())
            .expect("decode");
        prop_assert_eq!(&eval_monadic(&query, &decoded), &eval_monadic(&query, &graph));
        for source in graph.nodes() {
            prop_assert_eq!(
                &eval_binary_from(&query, &decoded, source),
                &eval_binary_from(&query, &graph, source)
            );
        }
    }

    /// Any single bit flip is rejected — the trailing digest covers the
    /// whole body, and flips inside the digest itself mismatch it.
    #[test]
    fn any_bit_flip_is_rejected(
        graph in arb_graph(),
        flip in 0usize..1_000_000,
    ) {
        let mut bytes = graph.snapshot_bytes();
        let pos = flip % (bytes.len() * 8);
        bytes[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(
            GraphDb::from_snapshot_bytes(&bytes).is_err(),
            "bit {} flipped: decode must fail, never return a graph",
            pos
        );
    }

    /// Any truncation is rejected (and never panics).
    #[test]
    fn any_truncation_is_rejected(
        graph in arb_graph(),
        cut in 0usize..1_000_000,
    ) {
        let bytes = graph.snapshot_bytes();
        let len = cut % bytes.len();
        prop_assert!(
            GraphDb::from_snapshot_bytes(&bytes[..len]).is_err(),
            "prefix of {} bytes must not decode",
            len
        );
    }
}

/// Deterministic sanity anchor alongside the random sweep: the paper's
/// Figure 3 graph survives a file round-trip via save/load.
#[test]
fn g0_file_roundtrip() {
    let graph = {
        let mut builder = GraphBuilder::with_alphabet(Alphabet::from_labels(LABELS));
        builder.add_edge("x", "a", "y");
        builder.add_node("extra");
        builder.build()
    };
    let path = std::env::temp_dir().join(format!(
        "pathlearn-snapshot-roundtrip-{}.snap",
        std::process::id()
    ));
    graph.save_snapshot(&path).expect("save");
    let loaded = GraphDb::load_snapshot(&path).expect("load");
    assert_eq!(loaded.snapshot_bytes(), graph.snapshot_bytes());
    std::fs::remove_file(&path).ok();
}
